//! The reproduction harness: regenerates every number in the paper's
//! evaluation section.
//!
//! ```text
//! repro [all|cpu|gpu|memory|ablation|accuracy|sweep|workload]
//!       [--scale small|medium|paper] [--seed N]
//! ```

use std::time::Instant;

use genasm_suite::experiments::{ablation, accuracy, cpu, gpu, memory, sweep};
use genasm_suite::report::Table;
use genasm_suite::{Scale, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: repro [all|cpu|gpu|memory|ablation|accuracy|sweep|workload] \
         [--scale small|medium|paper] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cmd = "all".to_string();
    let mut scale = Scale::Small;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    let mut cmd_set = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|e| {
                    eprintln!("repro: {e}");
                    usage()
                });
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "-h" | "--help" => usage(),
            other if !cmd_set => {
                cmd = other.to_string();
                cmd_set = true;
            }
            _ => usage(),
        }
    }

    println!("# GenASM reproduction harness");
    println!("# scale={scale:?} seed={seed}");
    println!();

    let t0 = Instant::now();
    let workload = Workload::build(scale, seed);
    print_workload(&workload, scale, t0.elapsed().as_secs_f64());

    let timed_vec = workload.timed_tasks(scale);
    let timed: &[align_core::AlignTask] = &timed_vec;
    let gpu_tasks = &timed[..timed.len().min(scale.gpu_task_cap())];
    let run_all = cmd == "all";

    match cmd.as_str() {
        "workload" => {}
        "cpu" | "gpu" | "memory" | "ablation" | "accuracy" | "sweep" | "all" => {
            if run_all || cmd == "cpu" {
                section("E1-E3 (CPU)", || cpu::report(&cpu::run(timed)));
            }
            if run_all || cmd == "gpu" {
                section("E4-E7 (GPU)", || gpu::report(&gpu::run(gpu_tasks)));
            }
            if run_all || cmd == "memory" {
                // True-locus tasks come from the full candidate set
                // (the timed subset is a stride sample and its indices
                // do not line up with `true_locus`).
                let true_tasks: Vec<_> = workload
                    .true_locus
                    .iter()
                    .take(200)
                    .map(|&i| workload.batch.tasks[i].clone())
                    .collect();
                section("E8-E9 (memory)", || {
                    memory::report(&memory::run(timed, &true_tasks))
                });
            }
            if run_all || cmd == "ablation" {
                let subset = &timed[..timed.len().min(200)];
                section("A1 (ablation)", || ablation::report(&ablation::run(subset)));
            }
            if run_all || cmd == "accuracy" {
                // Primary mappings (one per read) carry the quality
                // story; the stride sample shows behaviour on the full
                // -P candidate mix including off-target windows.
                let primary = workload.primary_tasks();
                let primary = &primary[..primary.len().min(50)];
                let subset = &timed[..timed.len().min(150)];
                section("A2 (accuracy)", || {
                    let mut s = String::from("(primary mappings, one per read)\n");
                    s.push_str(&accuracy::report(&accuracy::run(primary)));
                    s.push_str("\n(all -P candidates, stride sample)\n");
                    s.push_str(&accuracy::report(&accuracy::run(subset)));
                    s
                });
            }
            if run_all || cmd == "sweep" {
                section("A3 (sweeps)", || {
                    let rates = [0.01, 0.02, 0.05, 0.10, 0.15, 0.20];
                    let errors = sweep::error_sweep(&rates, 30, 2_000, seed);
                    let geoms = [(64, 8), (64, 16), (64, 24), (64, 32), (64, 48), (32, 12)];
                    let geometry = sweep::geometry_sweep(&geoms, 30, 2_000, seed);
                    sweep::report(&errors, &geometry)
                });
            }
        }
        _ => usage(),
    }
    println!("# total harness time: {:.1}s", t0.elapsed().as_secs_f64());
}

fn section(name: &str, f: impl FnOnce() -> String) {
    let t = Instant::now();
    println!("{}", f());
    println!("# [{name}] took {:.1}s", t.elapsed().as_secs_f64());
    println!();
}

fn print_workload(w: &Workload, scale: Scale, secs: f64) {
    let mut t = Table::new(
        "Workload (paper: 500 reads x 10 kbp, 138,929 candidates)",
        &["metric", "value"],
    );
    t.row(&["genome length".into(), w.genome.seq.len().to_string()]);
    t.row(&["reads".into(), w.reads.len().to_string()]);
    t.row(&[
        "read length".into(),
        format!("{}", w.reads.first().map(|r| r.seq.len()).unwrap_or(0)),
    ]);
    t.row(&["candidate pairs".into(), w.batch.len().to_string()]);
    t.row(&[
        "candidates/read".into(),
        format!("{:.1}", w.candidates_per_read()),
    ]);
    t.row(&[
        "true-locus candidates".into(),
        w.true_locus.len().to_string(),
    ]);
    t.row(&[
        "timed subset".into(),
        w.timed_tasks(scale).len().to_string(),
    ]);
    t.row(&["build time".into(), format!("{secs:.1}s")]);
    println!("{}", t.render());
}
