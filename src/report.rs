//! Plain-text table rendering for the experiment reports.

/// A simple aligned-column table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str("## ");
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..width[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with sensible precision for report cells.
pub fn f(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Format a ratio as `N.N×`.
pub fn x(ratio: f64) -> String {
    format!("{}x", f(ratio))
}

/// Format a byte count human-readably.
pub fn bytes(b: f64) -> String {
    if b >= 1048576.0 {
        format!("{:.1} MiB", b / 1048576.0)
    } else if b >= 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // header and rows align on the second column
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), col);
        assert_eq!(lines[4].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(3.15159), "3.15");
        assert_eq!(f(42.123), "42.1");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(x(2.0), "2.00x");
        assert_eq!(bytes(512.0), "512 B");
        assert_eq!(bytes(2048.0), "2.0 KiB");
        assert_eq!(bytes(3.0 * 1048576.0), "3.0 MiB");
    }
}
