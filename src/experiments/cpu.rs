//! Experiments E1–E3: CPU aligner throughput comparison.
//!
//! Paper (Section II): "Our CPU implementation achieves a 15.2×, 1.7×,
//! and 1.9× speedup over KSW2, Edlib, and a CPU implementation of
//! GenASM without our improvements, respectively."

use align_core::AlignTask;
use baselines::{Ksw2Aligner, MyersAligner};
use genasm_core::GenAsmConfig;
use genasm_cpu::{align_batch_genasm, align_batch_with, BatchTiming};

use crate::report::{f, x, Table};

/// Measured outcome of the CPU comparison.
#[derive(Debug, Clone)]
pub struct CpuResults {
    /// (aligner name, timing) for each contender.
    pub timings: Vec<(&'static str, BatchTiming)>,
    /// Speedup of improved GenASM over KSW2 (paper: 15.2×).
    pub vs_ksw2: f64,
    /// Speedup over Edlib (paper: 1.7×).
    pub vs_edlib: f64,
    /// Speedup over unimproved GenASM (paper: 1.9×).
    pub vs_baseline: f64,
}

/// Run all four CPU aligners over the same tasks.
pub fn run(tasks: &[AlignTask]) -> CpuResults {
    let ksw2 = align_batch_with(tasks, &Ksw2Aligner::new());
    let edlib = align_batch_with(tasks, &MyersAligner::new());
    let base = align_batch_genasm(tasks, &GenAsmConfig::baseline());
    let imp = align_batch_genasm(tasks, &GenAsmConfig::improved());
    assert_eq!(imp.failures, 0, "improved GenASM with k=W cannot fail");

    let vs_ksw2 = imp.timing.speedup_over(&ksw2.timing);
    let vs_edlib = imp.timing.speedup_over(&edlib.timing);
    let vs_baseline = imp.timing.speedup_over(&base.timing);
    CpuResults {
        timings: vec![
            ("ksw2", ksw2.timing),
            ("edlib", edlib.timing),
            ("genasm-unimproved", base.timing),
            ("genasm-improved", imp.timing),
        ],
        vs_ksw2,
        vs_edlib,
        vs_baseline,
    }
}

/// Render the E1–E3 tables.
pub fn report(res: &CpuResults) -> String {
    let mut t = Table::new(
        "CPU aligner throughput (same candidate set, all host cores)",
        &["aligner", "wall ms", "alignments/s", "Mbases/s"],
    );
    for (name, timing) in &res.timings {
        t.row(&[
            name.to_string(),
            f(timing.wall.as_secs_f64() * 1e3),
            f(timing.alignments_per_sec()),
            f(timing.bases_per_sec() / 1e6),
        ]);
    }
    let mut s = t.render();
    let mut t2 = Table::new(
        "E1-E3: improved GenASM CPU speedups (paper vs measured)",
        &["exp", "speedup over", "paper", "measured"],
    );
    t2.row(&["E1".into(), "ksw2".into(), "15.2x".into(), x(res.vs_ksw2)]);
    t2.row(&["E2".into(), "edlib".into(), "1.7x".into(), x(res.vs_edlib)]);
    t2.row(&[
        "E3".into(),
        "genasm-unimproved".into(),
        "1.9x".into(),
        x(res.vs_baseline),
    ]);
    s.push('\n');
    s.push_str(&t2.render());
    s
}
