//! Experiments E8–E9: memory footprint and access reductions.
//!
//! Paper (abstract / Section I): "Our algorithmic improvements reduce
//! the memory footprint by 24× and the number of memory accesses by
//! 12×."
//!
//! Both numbers are ratios of instrumented DP-table counters between
//! the unimproved and improved configurations over the same windows.
//! We report them for the full candidate set and for the
//! true-locus-only subset (whose error profile matches the sequencing
//! error rate; off-target candidates drive `d*` toward `k` and shrink
//! the early-termination saving — the mix is what the paper averaged
//! over, and the split makes that visible).

use align_core::AlignTask;
use genasm_core::{GenAsmConfig, MemStats};

use crate::report::{bytes, f, x, Table};

/// Counters for one configuration over one task set.
#[derive(Debug, Clone, Copy)]
pub struct MemRun {
    /// Aggregated counters.
    pub stats: MemStats,
}

/// Measured outcome of the memory experiment.
#[derive(Debug, Clone)]
pub struct MemoryResults {
    /// Unimproved / improved counters over all candidates.
    pub all: (MemRun, MemRun),
    /// Same over true-locus candidates only.
    pub true_locus: (MemRun, MemRun),
    /// E8 on the full set.
    pub footprint_reduction: f64,
    /// E9 on the full set.
    pub access_reduction: f64,
}

fn measure(tasks: &[AlignTask], cfg: &GenAsmConfig) -> MemRun {
    let mut stats = MemStats::new();
    for t in tasks {
        genasm_core::align_with_stats(&t.query, &t.target, cfg, &mut stats)
            .expect("k=W cannot fail");
    }
    MemRun { stats }
}

/// Run the instrumented comparison.
pub fn run(all_tasks: &[AlignTask], true_locus_tasks: &[AlignTask]) -> MemoryResults {
    let base_all = measure(all_tasks, &GenAsmConfig::baseline());
    let imp_all = measure(all_tasks, &GenAsmConfig::improved());
    let base_true = measure(true_locus_tasks, &GenAsmConfig::baseline());
    let imp_true = measure(true_locus_tasks, &GenAsmConfig::improved());
    let footprint_reduction = base_all.stats.footprint_reduction_vs(&imp_all.stats);
    let access_reduction = base_all.stats.access_reduction_vs(&imp_all.stats);
    MemoryResults {
        all: (base_all, imp_all),
        true_locus: (base_true, imp_true),
        footprint_reduction,
        access_reduction,
    }
}

fn subset_rows(t: &mut Table, label: &str, base: &MemRun, imp: &MemRun) {
    for (name, run) in [("unimproved", base), ("improved", imp)] {
        t.row(&[
            label.to_string(),
            name.to_string(),
            f(run.stats.mean_rows_per_window()),
            bytes(run.stats.mean_table_bytes_per_window()),
            f(run.stats.table_accesses() as f64 / run.stats.windows.max(1) as f64),
        ]);
    }
}

/// Render the E8–E9 tables.
pub fn report(res: &MemoryResults) -> String {
    let mut t = Table::new(
        "DP-table working set per 64x64 window",
        &[
            "subset",
            "config",
            "rows/window",
            "table bytes/window",
            "table accesses/window",
        ],
    );
    subset_rows(&mut t, "all candidates", &res.all.0, &res.all.1);
    subset_rows(&mut t, "true locus", &res.true_locus.0, &res.true_locus.1);
    let mut s = t.render();

    let tl_fp = res
        .true_locus
        .0
        .stats
        .footprint_reduction_vs(&res.true_locus.1.stats);
    let tl_ac = res
        .true_locus
        .0
        .stats
        .access_reduction_vs(&res.true_locus.1.stats);
    let mut t2 = Table::new(
        "E8-E9: memory reductions (paper vs measured)",
        &[
            "exp",
            "metric",
            "paper",
            "measured (all)",
            "measured (true locus)",
        ],
    );
    t2.row(&[
        "E8".into(),
        "footprint reduction".into(),
        "24x".into(),
        x(res.footprint_reduction),
        x(tl_fp),
    ]);
    t2.row(&[
        "E9".into(),
        "access reduction".into(),
        "12x".into(),
        x(res.access_reduction),
        x(tl_ac),
    ]);
    s.push('\n');
    s.push_str(&t2.render());
    s
}
