//! Experiment A3 (extension): parameter sweeps.
//!
//! Two sweeps characterize where the improvements' savings come from:
//!
//! * **error-rate sweep** — early termination's row saving is a direct
//!   function of the per-window edit count; sweeping the simulated
//!   error rate traces the footprint-reduction curve from ~64× (clean
//!   data) down toward the compression-only floor (4x/3-ish at very
//!   high error);
//! * **window-geometry sweep** — the W/O trade-off: larger overlap
//!   costs recomputation but improves quality near window borders.

use align_core::{Base, Seq};
use genasm_core::{GenAsmConfig, Improvements, MemStats};
use rand::prelude::*;

use crate::report::{f, x, Table};

/// One point of the error-rate sweep.
#[derive(Debug, Clone)]
pub struct ErrorPoint {
    /// Simulated per-base error rate.
    pub error_rate: f64,
    /// Mean rows per window (improved).
    pub rows_per_window: f64,
    /// Footprint reduction vs unimproved.
    pub footprint_reduction: f64,
    /// Access reduction vs unimproved.
    pub access_reduction: f64,
    /// Fraction of pairs aligned at optimal cost.
    pub optimal_rate: f64,
}

/// One point of the geometry sweep.
#[derive(Debug, Clone)]
pub struct GeometryPoint {
    /// Window size.
    pub w: usize,
    /// Overlap.
    pub o: usize,
    /// Windows needed per pair (re-anchoring frequency).
    pub windows_per_pair: f64,
    /// Fraction of pairs aligned at optimal cost.
    pub optimal_rate: f64,
}

fn mutated_pair(rng: &mut StdRng, len: usize, error_rate: f64) -> (Seq, Seq) {
    let q: Vec<Base> = (0..len)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let mut t = q.clone();
    // sub:ins:del at the CLR-ish 6:50:44 mix
    let mut i = 0;
    while i < t.len() {
        if rng.gen_bool(error_rate) {
            let r: f64 = rng.gen();
            if r < 0.06 {
                t[i] = Base::from_code(rng.gen_range(0..4));
                i += 1;
            } else if r < 0.56 {
                t.insert(i, Base::from_code(rng.gen_range(0..4)));
                i += 2;
            } else {
                t.remove(i);
            }
        } else {
            i += 1;
        }
    }
    if t.is_empty() {
        t.push(Base::A);
    }
    (q.into_iter().collect(), t.into_iter().collect())
}

/// Sweep the error rate at fixed geometry.
pub fn error_sweep(rates: &[f64], pairs: usize, pair_len: usize, seed: u64) -> Vec<ErrorPoint> {
    let mut out = Vec::new();
    for &rate in rates {
        let mut rng = StdRng::seed_from_u64(seed ^ (rate * 1e6) as u64);
        let mut imp = MemStats::new();
        let mut base = MemStats::new();
        let mut optimal = 0usize;
        for _ in 0..pairs {
            let (q, t) = mutated_pair(&mut rng, pair_len, rate);
            let a = genasm_core::align_with_stats(&q, &t, &GenAsmConfig::improved(), &mut imp)
                .expect("k=W");
            genasm_core::align_with_stats(&q, &t, &GenAsmConfig::baseline(), &mut base)
                .expect("k=W");
            if a.edit_distance == align_core::doubling_nw_distance(&q, &t) {
                optimal += 1;
            }
        }
        out.push(ErrorPoint {
            error_rate: rate,
            rows_per_window: imp.mean_rows_per_window(),
            footprint_reduction: base.footprint_reduction_vs(&imp),
            access_reduction: base.access_reduction_vs(&imp),
            optimal_rate: optimal as f64 / pairs as f64,
        });
    }
    out
}

/// Sweep window geometry at a fixed 10% error rate.
pub fn geometry_sweep(
    geometries: &[(usize, usize)],
    pairs: usize,
    pair_len: usize,
    seed: u64,
) -> Vec<GeometryPoint> {
    let mut out = Vec::new();
    for &(w, o) in geometries {
        let mut rng = StdRng::seed_from_u64(seed ^ ((w * 131 + o) as u64));
        let cfg = GenAsmConfig {
            w,
            o,
            k: w,
            improvements: Improvements::ALL,
        };
        let mut stats = MemStats::new();
        let mut optimal = 0usize;
        for _ in 0..pairs {
            let (q, t) = mutated_pair(&mut rng, pair_len, 0.10);
            let a = genasm_core::align_with_stats(&q, &t, &cfg, &mut stats).expect("k=W");
            if a.edit_distance == align_core::doubling_nw_distance(&q, &t) {
                optimal += 1;
            }
        }
        out.push(GeometryPoint {
            w,
            o,
            windows_per_pair: stats.windows as f64 / pairs as f64,
            optimal_rate: optimal as f64 / pairs as f64,
        });
    }
    out
}

/// Render both sweep tables.
pub fn report(errors: &[ErrorPoint], geoms: &[GeometryPoint]) -> String {
    let mut t = Table::new(
        "A3a: error-rate sweep (W=64, O=24, 2kb pairs)",
        &[
            "error rate",
            "rows/window",
            "footprint reduction",
            "access reduction",
            "optimal pairs",
        ],
    );
    for p in errors {
        t.row(&[
            format!("{}%", f(p.error_rate * 100.0)),
            f(p.rows_per_window),
            x(p.footprint_reduction),
            x(p.access_reduction),
            format!("{}%", f(p.optimal_rate * 100.0)),
        ]);
    }
    let mut s = t.render();
    let mut t2 = Table::new(
        "A3b: window-geometry sweep (10% error, 2kb pairs)",
        &["W", "O", "windows/pair", "optimal pairs"],
    );
    for p in geoms {
        t2.row(&[
            p.w.to_string(),
            p.o.to_string(),
            f(p.windows_per_pair),
            format!("{}%", f(p.optimal_rate * 100.0)),
        ]);
    }
    s.push('\n');
    s.push_str(&t2.render());
    s
}
