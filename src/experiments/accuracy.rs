//! Experiment A2 (extension): alignment quality of windowed GenASM.
//!
//! GenASM's windowed heuristic is approximate; the paper's claim is
//! that its output quality matches the exact aligners on realistic
//! data. We quantify that: for every candidate we compare GenASM's
//! edit cost against the optimal edit distance (our Myers baseline,
//! which property tests pin to the NW oracle), and validate every
//! CIGAR.

use align_core::{AlignTask, GlobalAligner};
use baselines::MyersAligner;
use genasm_core::GenAsmConfig;

use crate::report::{f, Table};

/// Quality statistics over one candidate tier.
#[derive(Debug, Clone, Default)]
pub struct AccuracyTier {
    /// Candidates evaluated.
    pub pairs: usize,
    /// Candidates where GenASM's cost equals the optimum.
    pub optimal: usize,
    /// Mean relative excess cost, `(genasm - opt) / max(opt, 1)`.
    pub mean_excess: f64,
    /// Largest relative excess observed.
    pub max_excess: f64,
    /// Mean optimal distance (tier difficulty indicator).
    pub mean_opt_distance: f64,
}

impl AccuracyTier {
    fn push(&mut self, genasm: usize, opt: usize, excess_sum: &mut f64, opt_sum: &mut usize) {
        let excess = (genasm - opt) as f64 / opt.max(1) as f64;
        if genasm == opt {
            self.optimal += 1;
        }
        *excess_sum += excess;
        self.max_excess = self.max_excess.max(excess);
        *opt_sum += opt;
        self.pairs += 1;
    }
}

/// Measured outcome of the accuracy experiment, split into the
/// true-locus-like tier (optimal distance proportional to the read
/// error rate) and the off-target tier (repeat hits and junk, where a
/// greedy heuristic is *expected* to over-pay — every aligner in the
/// paper's pipeline discards those by score anyway).
#[derive(Debug, Clone, Default)]
pub struct AccuracyResults {
    /// Plausible-locus candidates (optimal distance < 20% of query).
    pub good: AccuracyTier,
    /// Off-target candidates.
    pub junk: AccuracyTier,
}

/// Compare GenASM's cost against the exact edit distance.
pub fn run(tasks: &[AlignTask]) -> AccuracyResults {
    let genasm = GenAsmConfig::improved();
    let myers = MyersAligner::new();
    let mut res = AccuracyResults::default();
    let (mut gx, mut go) = (0.0, 0usize);
    let (mut jx, mut jo) = (0.0, 0usize);
    for t in tasks {
        let mut stats = genasm_core::MemStats::new();
        let g = genasm_core::align_with_stats(&t.query, &t.target, &genasm, &mut stats)
            .expect("k=W cannot fail");
        g.check(&t.query, &t.target).expect("invalid GenASM CIGAR");
        let opt = myers.align(&t.query, &t.target).expect("myers");
        opt.check(&t.query, &t.target).expect("invalid Myers CIGAR");
        assert!(
            g.edit_distance >= opt.edit_distance,
            "GenASM beat the optimum: impossible"
        );
        if opt.edit_distance * 5 < t.query.len() {
            res.good
                .push(g.edit_distance, opt.edit_distance, &mut gx, &mut go);
        } else {
            res.junk
                .push(g.edit_distance, opt.edit_distance, &mut jx, &mut jo);
        }
    }
    if res.good.pairs > 0 {
        res.good.mean_excess = gx / res.good.pairs as f64;
        res.good.mean_opt_distance = go as f64 / res.good.pairs as f64;
    }
    if res.junk.pairs > 0 {
        res.junk.mean_excess = jx / res.junk.pairs as f64;
        res.junk.mean_opt_distance = jo as f64 / res.junk.pairs as f64;
    }
    res
}

/// Render the A2 table.
pub fn report(res: &AccuracyResults) -> String {
    let mut t = Table::new(
        "A2: GenASM alignment quality vs exact edit distance",
        &[
            "tier",
            "pairs",
            "cost-optimal",
            "mean excess",
            "max excess",
            "mean opt distance",
        ],
    );
    for (name, tier) in [("true-locus-like", &res.good), ("off-target", &res.junk)] {
        t.row(&[
            name.to_string(),
            tier.pairs.to_string(),
            format!(
                "{} ({}%)",
                tier.optimal,
                f(100.0 * tier.optimal as f64 / tier.pairs.max(1) as f64)
            ),
            f(tier.mean_excess),
            f(tier.max_excess),
            f(tier.mean_opt_distance),
        ]);
    }
    t.render()
}
