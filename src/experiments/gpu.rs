//! Experiments E4–E7: GPU speedups.
//!
//! Paper (Section II): "Our GPU implementation achieves a 4.1×, 62×,
//! 7.2×, and 5.9× speedup over our CPU implementation, KSW2, Edlib,
//! and a GPU implementation of GenASM without our improvements,
//! respectively."
//!
//! The GPU here is the `gpu-sim` substrate configured as an RTX A6000;
//! its times are *model estimates* (DESIGN.md §2). The CPU numbers are
//! wall-clock on the host. Because the simulator executes kernels
//! functionally, the GPU batch is a capped prefix of the candidate set;
//! per-alignment throughput is what the ratios use.

use align_core::AlignTask;
use baselines::{Ksw2Aligner, MyersAligner};
use genasm_core::GenAsmConfig;
use genasm_cpu::{align_batch_genasm, align_batch_with};
use genasm_gpu::GpuAligner;
use gpu_sim::Device;

use crate::report::{f, x, Table};

/// Measured outcome of the GPU comparison.
#[derive(Debug, Clone)]
pub struct GpuResults {
    /// Tasks in the GPU batch.
    pub tasks: usize,
    /// Modeled improved-kernel time (ms).
    pub gpu_improved_ms: f64,
    /// Modeled unimproved-kernel time (ms).
    pub gpu_baseline_ms: f64,
    /// Host wall times on the same subset (ms): improved CPU, KSW2, Edlib.
    pub cpu_improved_ms: f64,
    pub ksw2_ms: f64,
    pub edlib_ms: f64,
    /// Global bytes moved by each kernel.
    pub improved_global_bytes: u64,
    pub baseline_global_bytes: u64,
    /// E4/E5/E6/E7 ratios.
    pub vs_cpu: f64,
    pub vs_ksw2: f64,
    pub vs_edlib: f64,
    pub vs_gpu_baseline: f64,
}

/// Run the GPU kernels and the CPU contenders on the same task subset.
pub fn run(tasks: &[AlignTask]) -> GpuResults {
    let device = Device::a6000();
    let gpu_imp = GpuAligner::improved(device.clone());
    let gpu_base = GpuAligner::baseline(device);

    let ri = gpu_imp.align_batch(tasks).expect("improved kernel");
    let rb = gpu_base.align_batch(tasks).expect("baseline kernel");
    // Cross-check: identical alignments.
    for (a, b) in ri.results.iter().zip(&rb.results) {
        assert_eq!(
            a.alignment.edit_distance, b.alignment.edit_distance,
            "GPU kernels disagree"
        );
    }

    let cpu = align_batch_genasm(tasks, &GenAsmConfig::improved());
    let ksw2 = align_batch_with(tasks, &Ksw2Aligner::new());
    let edlib = align_batch_with(tasks, &MyersAligner::new());

    let gpu_improved_ms = ri.timing.total_ms;
    let gpu_baseline_ms = rb.timing.total_ms;
    let cpu_improved_ms = cpu.timing.wall.as_secs_f64() * 1e3;
    let ksw2_ms = ksw2.timing.wall.as_secs_f64() * 1e3;
    let edlib_ms = edlib.timing.wall.as_secs_f64() * 1e3;

    GpuResults {
        tasks: tasks.len(),
        gpu_improved_ms,
        gpu_baseline_ms,
        cpu_improved_ms,
        ksw2_ms,
        edlib_ms,
        improved_global_bytes: ri.totals.global_bytes,
        baseline_global_bytes: rb.totals.global_bytes,
        vs_cpu: cpu_improved_ms / gpu_improved_ms,
        vs_ksw2: ksw2_ms / gpu_improved_ms,
        vs_edlib: edlib_ms / gpu_improved_ms,
        vs_gpu_baseline: gpu_baseline_ms / gpu_improved_ms,
    }
}

/// Render the E4–E7 tables.
pub fn report(res: &GpuResults) -> String {
    let mut t = Table::new(
        &format!(
            "GPU vs CPU on {} candidate pairs (GPU = A6000 model estimate)",
            res.tasks
        ),
        &["contender", "time ms", "global traffic"],
    );
    t.row(&[
        "gpu genasm-improved".into(),
        f(res.gpu_improved_ms),
        crate::report::bytes(res.improved_global_bytes as f64),
    ]);
    t.row(&[
        "gpu genasm-unimproved".into(),
        f(res.gpu_baseline_ms),
        crate::report::bytes(res.baseline_global_bytes as f64),
    ]);
    t.row(&[
        "cpu genasm-improved".into(),
        f(res.cpu_improved_ms),
        "-".into(),
    ]);
    t.row(&["cpu ksw2".into(), f(res.ksw2_ms), "-".into()]);
    t.row(&["cpu edlib".into(), f(res.edlib_ms), "-".into()]);
    let mut s = t.render();

    // The paper's CPU numbers come from a 48-thread dual-socket Xeon;
    // this host has `host_threads`. Speedups over CPU baselines are
    // therefore also shown normalized to a 48-thread CPU (assuming the
    // embarrassingly-parallel batch scales linearly, which it does in
    // the paper). E7 compares two modeled kernels and needs no
    // adjustment.
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;
    let norm = host_threads / 48.0;
    let mut t2 = Table::new(
        &format!(
            "E4-E7: improved GenASM GPU speedups (paper vs measured; host has {host_threads} thread(s), paper CPU had 48)"
        ),
        &["exp", "speedup over", "paper", "measured", "measured (48-thread-CPU adjusted)"],
    );
    t2.row(&[
        "E4".into(),
        "cpu genasm-improved".into(),
        "4.1x".into(),
        x(res.vs_cpu),
        x(res.vs_cpu * norm),
    ]);
    t2.row(&[
        "E5".into(),
        "cpu ksw2".into(),
        "62x".into(),
        x(res.vs_ksw2),
        x(res.vs_ksw2 * norm),
    ]);
    t2.row(&[
        "E6".into(),
        "cpu edlib".into(),
        "7.2x".into(),
        x(res.vs_edlib),
        x(res.vs_edlib * norm),
    ]);
    t2.row(&[
        "E7".into(),
        "gpu genasm-unimproved".into(),
        "5.9x".into(),
        x(res.vs_gpu_baseline),
        x(res.vs_gpu_baseline),
    ]);
    s.push('\n');
    s.push_str(&t2.render());
    s
}
