//! Experiment A1 (extension): per-improvement ablation.
//!
//! The paper reports the three improvements' *collective* effect; this
//! ablation attributes the footprint/traffic reductions to each of the
//! 8 on/off combinations, which is the evidence DESIGN.md's design
//! choices rest on.

use std::time::Instant;

use align_core::AlignTask;
use genasm_core::{GenAsmConfig, Improvements, MemStats};

use crate::report::{bytes, f, Table};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Combination label (`baseline`, `+et`, `+compress+et+dent`, ...).
    pub label: String,
    /// Aggregated counters.
    pub stats: MemStats,
    /// Wall time, ms (single-threaded, same tasks).
    pub wall_ms: f64,
}

/// Run every improvement combination over the tasks.
pub fn run(tasks: &[AlignTask]) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for improvements in Improvements::all_combinations() {
        let cfg = GenAsmConfig {
            improvements,
            ..GenAsmConfig::improved()
        };
        let mut stats = MemStats::new();
        let start = Instant::now();
        for t in tasks {
            genasm_core::align_with_stats(&t.query, &t.target, &cfg, &mut stats)
                .expect("k=W cannot fail");
        }
        rows.push(AblationRow {
            label: improvements.label(),
            stats,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
    }
    // Baseline first, then by decreasing footprint.
    rows.sort_by_key(|r| std::cmp::Reverse(r.stats.table_words));
    rows
}

/// Render the ablation table; reductions are relative to the row with
/// no improvements.
pub fn report(rows: &[AblationRow]) -> String {
    let baseline = rows
        .iter()
        .find(|r| r.label == "baseline")
        .expect("baseline combination present");
    let mut t = Table::new(
        "A1: improvement ablation (reductions vs unimproved)",
        &[
            "combination",
            "table bytes/window",
            "footprint reduction",
            "access reduction",
            "wall ms",
        ],
    );
    for r in rows {
        t.row(&[
            r.label.clone(),
            bytes(r.stats.mean_table_bytes_per_window()),
            format!("{}x", f(baseline.stats.footprint_reduction_vs(&r.stats))),
            format!("{}x", f(baseline.stats.access_reduction_vs(&r.stats))),
            f(r.wall_ms),
        ]);
    }
    t.render()
}
