//! Experiment drivers, one module per paper claim (plus extensions).
//!
//! | module | experiment | paper claim |
//! |---|---|---|
//! | [`cpu`] | E1–E3 | 15.2× / 1.7× / 1.9× CPU speedups |
//! | [`gpu`] | E4–E7 | 4.1× / 62× / 7.2× / 5.9× GPU speedups |
//! | [`memory`] | E8–E9 | 24× footprint, 12× access reductions |
//! | [`ablation`] | A1 | (extension) per-improvement attribution |
//! | [`accuracy`] | A2 | (extension) quality vs exact aligners |
//! | [`sweep`] | A3 | (extension) error-rate & geometry sweeps |

pub mod ablation;
pub mod accuracy;
pub mod cpu;
pub mod gpu;
pub mod memory;
pub mod sweep;
