//! # genasm-suite
//!
//! The reproduction suite for *Algorithmic Improvement and GPU
//! Acceleration of the GenASM Algorithm* (Lindegger, Senol Cali, Alser,
//! Gómez-Luna, Mutlu — IPDPSW 2022, arXiv:2203.15561).
//!
//! This root crate ties the subsystem crates together:
//!
//! * [`pipeline`] — the evaluation workload (synthetic genome → PacBio
//!   CLR-style reads → minimap2-style all-chain candidates);
//! * [`experiments`] — one driver per number in the paper's Section II
//!   (E1–E9) plus extension experiments (A1–A3);
//! * [`report`] — plain-text tables consumed by `EXPERIMENTS.md`.
//!
//! The individual systems live in their own crates and are re-exported
//! here for convenience: [`genasm_core`] (the paper's contribution),
//! [`genasm_cpu`] / [`genasm_gpu`] (parallel implementations),
//! [`gpu_sim`] (the SIMT substrate standing in for the A6000),
//! [`baselines`] (KSW2- and Edlib-style comparison aligners),
//! [`readsim`] and [`mapper`] (workload generation), and
//! [`align_core`] (shared types and DP oracles).
//!
//! Run everything with:
//!
//! ```text
//! cargo run --release --bin repro -- all --scale small
//! ```

pub mod experiments;
pub mod pipeline;
pub mod report;

pub use pipeline::{Scale, Workload};

pub use align_core;
pub use baselines;
pub use genasm_core;
pub use genasm_cpu;
pub use genasm_gpu;
pub use gpu_sim;
pub use mapper;
pub use readsim;
