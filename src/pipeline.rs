//! The end-to-end evaluation pipeline, mirroring the paper's Section II:
//! simulate a genome → simulate PacBio-like reads (PBSIM2's role) →
//! map them and collect **all** chains (minimap2 `-P`'s role) → hand
//! the candidate (read, reference-window) pairs to the aligners.

use align_core::{AlignTask, TaskBatch};
use mapper::{CandidateParams, MinimizerIndex};
use readsim::{simulate_reads, Genome, GenomeConfig, ReadConfig, SimRead};

/// Workload scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~1 Mbp genome, 50 reads — seconds on a laptop core.
    Small,
    /// ~2 Mbp genome, 150 reads.
    Medium,
    /// ~4 Mbp genome, 500 reads of 10 kbp — the paper's read count.
    Paper,
}

impl Scale {
    /// Every scale with its CLI name, in size order.
    pub const ALL: [(Scale, &'static str); 3] = [
        (Scale::Small, "small"),
        (Scale::Medium, "medium"),
        (Scale::Paper, "paper"),
    ];

    /// Genome length for this scale.
    pub fn genome_len(&self) -> usize {
        match self {
            Scale::Small => 1_000_000,
            Scale::Medium => 2_000_000,
            Scale::Paper => 4_000_000,
        }
    }

    /// Read count for this scale.
    pub fn read_count(&self) -> usize {
        match self {
            Scale::Small => 50,
            Scale::Medium => 150,
            Scale::Paper => 500,
        }
    }

    /// Cap on aligned candidate tasks for the *timed* experiments (the
    /// quadratic KSW2 baseline on one host core sets the budget; all
    /// throughput numbers are per-base, so the cap does not bias
    /// ratios). `None` = align everything.
    pub fn task_cap(&self) -> Option<usize> {
        match self {
            Scale::Small => Some(400),
            Scale::Medium => Some(1_200),
            Scale::Paper => Some(4_000),
        }
    }

    /// Cap on tasks run through the (functionally simulated, hence
    /// host-time-bound) GPU kernels.
    pub fn gpu_task_cap(&self) -> usize {
        match self {
            Scale::Small => 96,
            Scale::Medium => 256,
            Scale::Paper => 512,
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = ParseScaleError;

    fn from_str(s: &str) -> Result<Scale, ParseScaleError> {
        Scale::ALL
            .iter()
            .find(|(_, name)| *name == s)
            .map(|&(scale, _)| scale)
            .ok_or_else(|| ParseScaleError {
                given: s.to_string(),
            })
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (_, name) = Scale::ALL
            .iter()
            .find(|(scale, _)| scale == self)
            .expect("every scale is in Scale::ALL");
        f.write_str(name)
    }
}

/// Error for an unrecognized scale name; lists the valid ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScaleError {
    /// What the user typed.
    pub given: String,
}

impl std::fmt::Display for ParseScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown scale '{}'; valid scales are ", self.given)?;
        for (i, (_, name)) in Scale::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "'{name}'")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseScaleError {}

/// The generated workload: genome, reads, and candidate tasks.
pub struct Workload {
    /// The synthetic reference genome.
    pub genome: Genome,
    /// The simulated reads with provenance.
    pub reads: Vec<SimRead>,
    /// All candidate (read, window) alignment tasks (`-P` semantics).
    pub batch: TaskBatch,
    /// Candidates whose reference window overlaps the read's true
    /// origin (indices into `batch.tasks`).
    pub true_locus: Vec<usize>,
}

impl Workload {
    /// Build the full pipeline deterministically.
    pub fn build(scale: Scale, seed: u64) -> Workload {
        let genome = Genome::generate(&GenomeConfig::human_like(scale.genome_len(), seed));
        let read_cfg = ReadConfig::paper_like(scale.read_count(), seed ^ 0x5eed);
        let reads = simulate_reads(&genome, &read_cfg);
        let index = MinimizerIndex::build(&genome.seq);
        let params = CandidateParams {
            max_per_read: 600,
            ..CandidateParams::default()
        };

        let mut batch = TaskBatch::new();
        for r in &reads {
            for t in mapper::candidates_for_read(r.id, &r.seq, &genome.seq, &index, &params) {
                batch.push(t);
            }
        }
        let true_locus = classify_true_locus(&batch.tasks, &reads);
        Workload {
            genome,
            reads,
            batch,
            true_locus,
        }
    }

    /// The timed subset of tasks for this scale: an even stride sample
    /// across the whole candidate set, so the subset preserves the
    /// true-locus/off-target mix instead of over-representing the first
    /// few reads.
    pub fn timed_tasks(&self, scale: Scale) -> Vec<AlignTask> {
        let n = self.batch.tasks.len();
        let cap = scale.task_cap().unwrap_or(n).min(n);
        if cap == 0 || n == 0 {
            return Vec::new();
        }
        let stride = (n as f64 / cap as f64).max(1.0);
        (0..cap)
            .map(|i| self.batch.tasks[(i as f64 * stride) as usize % n].clone())
            .collect()
    }

    /// One candidate per read: the one whose reference window overlaps
    /// the read's true origin the most (the "primary" mapping, which is
    /// what downstream tools keep). These are the pairs on which the
    /// aligner-quality experiment compares GenASM against the optimum.
    pub fn primary_tasks(&self) -> Vec<AlignTask> {
        let mut best: Vec<Option<(usize, usize)>> = vec![None; self.reads.len()]; // (overlap, idx)
        for (i, t) in self.batch.tasks.iter().enumerate() {
            let Some(read) = self.reads.get(t.read_id as usize) else {
                continue;
            };
            let ov_start = t.ref_pos.max(read.true_start);
            let ov_end = (t.ref_pos + t.target.len()).min(read.true_end);
            let overlap = ov_end.saturating_sub(ov_start);
            let slot = &mut best[t.read_id as usize];
            if slot.is_none_or(|(o, _)| overlap > o) {
                *slot = Some((overlap, i));
            }
        }
        best.iter()
            .flatten()
            .filter(|(o, _)| *o > 0)
            .map(|&(_, i)| self.batch.tasks[i].clone())
            .collect()
    }

    /// Candidates per read, on average.
    pub fn candidates_per_read(&self) -> f64 {
        if self.reads.is_empty() {
            return 0.0;
        }
        self.batch.len() as f64 / self.reads.len() as f64
    }
}

/// Indices of tasks whose reference window overlaps at least half of
/// the read's true origin interval.
fn classify_true_locus(tasks: &[AlignTask], reads: &[SimRead]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let Some(read) = reads.get(t.read_id as usize) else {
            continue;
        };
        let win_start = t.ref_pos;
        let win_end = t.ref_pos + t.target.len();
        let ov_start = win_start.max(read.true_start);
        let ov_end = win_end.min(read.true_end);
        let overlap = ov_end.saturating_sub(ov_start);
        if overlap * 2 >= read.true_end - read.true_start {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!("small".parse(), Ok(Scale::Small));
        assert_eq!("paper".parse(), Ok(Scale::Paper));
        let err = "bogus".parse::<Scale>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("'bogus'"), "{msg}");
        for (_, name) in Scale::ALL {
            assert!(msg.contains(name), "error must list '{name}': {msg}");
        }
    }

    #[test]
    fn scale_display_roundtrips() {
        for (scale, name) in Scale::ALL {
            assert_eq!(scale.to_string(), name);
            assert_eq!(name.parse::<Scale>(), Ok(scale));
        }
    }

    #[test]
    fn tiny_pipeline_builds() {
        // A miniature custom pipeline to keep the test fast.
        let genome = Genome::generate(&GenomeConfig::human_like(120_000, 7));
        let read_cfg = readsim::ReadConfig {
            count: 5,
            length: 3_000,
            errors: readsim::ErrorModel::pacbio_clr(0.10),
            rc_fraction: 0.5,
            seed: 99,
        };
        let reads = simulate_reads(&genome, &read_cfg);
        let index = MinimizerIndex::build(&genome.seq);
        let params = CandidateParams::default();
        let mut n_candidates = 0;
        for r in &reads {
            let c = mapper::candidates_for_read(r.id, &r.seq, &genome.seq, &index, &params);
            n_candidates += c.len();
        }
        assert!(
            n_candidates >= reads.len(),
            "every read should map at least once, got {n_candidates}"
        );
    }

    #[test]
    fn true_locus_classification() {
        let genome = Genome::generate(&GenomeConfig::plain(60_000, 3));
        let read = readsim::SimRead {
            id: 0,
            seq: genome.seq.slice(10_000, 2_000),
            qual: vec![30; 2_000],
            true_start: 10_000,
            true_end: 12_000,
            reverse: false,
            errors_injected: 0,
        };
        let good = AlignTask::new(
            0,
            9_900,
            genome.seq.slice(9_900, 2_200),
            genome.seq.slice(9_900, 2_200),
        );
        let bad = AlignTask::new(
            0,
            40_000,
            genome.seq.slice(40_000, 2_200),
            genome.seq.slice(40_000, 2_200),
        );
        let idx = classify_true_locus(&[good, bad], &[read]);
        assert_eq!(idx, vec![0]);
    }
}
