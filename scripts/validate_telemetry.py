#!/usr/bin/env python3
"""Validate genasm telemetry output in CI (stdlib only).

Six modes, one per exposition surface:

* ``trace FILE`` — a ``--trace`` Chrome trace-event JSON file. Must be
  a well-formed JSON array of event objects: complete spans (``"ph":
  "X"``) with non-negative ``ts``/``dur`` and a numeric ``tid``,
  thread-name metadata (``"ph": "M"``), and at least one ``read`` and
  one ``execute`` span (the per-read end-to-end span and the backend
  execute span — if either is missing, the pipeline ran untraced).

* ``metrics FILE`` — the stderr of ``--metrics json``: the last
  non-empty line must be one ``genasm-pipeline-metrics/v1`` JSON
  object whose latency histograms are internally consistent (bucket
  counts sum to ``count``, quantiles ordered) and whose read-latency
  count matches ``reads_in``.

* ``stats-json FILE`` — the stdout of ``genasm ctl stats-json``: one
  ``genasm-stats/v1`` object embedding a server block, a session list,
  and a full pipeline metrics object (validated as above, except the
  read-count check — a live server may be mid-stream).

* ``explain FILE`` — a ``--explain`` JSONL stream: every line is one
  ``genasm-explain/v1`` object with the full funnel/task key set, a
  disposition from the closed taxonomy, and internally consistent
  rescue accounting (``rescued_tasks`` matches the per-task flags; a
  ``rescued`` disposition has at least one rescued task; unmapped
  reads carry zero candidates and no tasks).

* ``router FILE`` — the stderr of ``--metrics json`` from a
  ``--backend auto`` run: the metrics object (validated as in
  ``metrics``) must carry a ``router`` block whose per-backend batch
  counts are non-negative, cover at least one batch, name only
  backends present in the snapshot, and sum to exactly the number of
  batches the backends executed — every batch was routed, and every
  routed batch ran.

* ``stat-frames FILE`` — the stdout of ``genasm ctl top``: every line
  is one ``genasm-stat-frame/v1`` object whose funnel stages are
  monotone (``reads_in >= anchored >= chained >= candidates``) and
  account for no more reads than entered, with uptime and counters
  non-decreasing across frames.

Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import sys

EXPECTED_SPANS = {"read", "execute"}


def fail(msg):
    print(f"validate-telemetry: FAIL: {msg}")
    sys.exit(1)


def check_histogram(h, where):
    for key in ("count", "sum", "max", "p50", "p90", "p99", "buckets"):
        if key not in h:
            fail(f"{where}: histogram missing {key!r}")
    if h["max"] < 0:
        fail(f"{where}: negative max {h['max']}")
    if h["count"] == 0 and h["max"] != 0:
        fail(f"{where}: empty histogram reports max {h['max']}")
    bucket_total = sum(c for _, c in h["buckets"])
    if bucket_total != h["count"]:
        fail(
            f"{where}: bucket counts sum to {bucket_total}, "
            f"count says {h['count']}"
        )
    if not h["p50"] <= h["p90"] <= h["p99"]:
        fail(
            f"{where}: quantiles not ordered: "
            f"p50={h['p50']} p90={h['p90']} p99={h['p99']}"
        )


def check_funnel(f, where, at_rest):
    for key in ("reads_in", "anchored", "chained", "candidates", "aligned",
                "rescued", "failed", "unmapped"):
        if key not in f:
            fail(f"{where}: funnel missing {key!r}")
    for key in ("no_anchors", "no_chain", "no_candidates"):
        if key not in f["unmapped"]:
            fail(f"{where}: funnel.unmapped missing {key!r}")
    if not f["reads_in"] >= f["anchored"] >= f["chained"] >= f["candidates"]:
        fail(f"{where}: funnel stages not monotone: {f}")
    accounted = f["aligned"] + f["failed"] + sum(f["unmapped"].values())
    if at_rest and accounted != f["reads_in"]:
        fail(
            f"{where}: funnel does not partition reads_in: "
            f"{accounted} accounted of {f['reads_in']}"
        )
    if accounted > f["reads_in"]:
        fail(f"{where}: funnel accounts for more reads than entered: {f}")
    if f["rescued"] > f["aligned"]:
        fail(f"{where}: rescued {f['rescued']} exceeds aligned {f['aligned']}")


def check_pipeline_metrics(m, require_read_count=True):
    if m.get("schema") != "genasm-pipeline-metrics/v1":
        fail(f"unexpected metrics schema {m.get('schema')!r}")
    for key in ("reads_in", "records_out", "latency", "backends", "funnel",
                "slow_reads", "busy_ns"):
        if key not in m:
            fail(f"metrics object missing {key!r}")
    check_funnel(m["funnel"], "pipeline", at_rest=require_read_count)
    lat = m["latency"]
    for key in ("read", "task_queue_wait", "batch_build", "reorder_wait"):
        if key not in lat:
            fail(f"latency object missing {key!r}")
        check_histogram(lat[key], f"latency.{key}")
    if require_read_count and lat["read"]["count"] != m["reads_in"]:
        fail(
            f"read-latency count {lat['read']['count']} != "
            f"reads_in {m['reads_in']}"
        )
    for name, b in m["backends"].items():
        for key in ("batches", "tasks", "queue_wait", "execute"):
            if key not in b:
                fail(f"backend {name!r} missing {key!r}")
        check_histogram(b["execute"], f"backends.{name}.execute")


def mode_trace(path):
    with open(path, "r", encoding="utf-8") as fh:
        events = json.load(fh)
    if not isinstance(events, list) or not events:
        fail("trace is not a non-empty JSON array")
    span_names, meta = set(), 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"event {i} is not an object with 'ph'")
        ph = ev["ph"]
        if ph == "M":
            meta += 1
        elif ph == "X":
            if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
                fail(f"span {i} ({ev.get('name')!r}) has bad ts/dur")
            if not isinstance(ev.get("tid"), int):
                fail(f"span {i} ({ev.get('name')!r}) has no numeric tid")
            span_names.add(ev.get("name"))
        elif ph != "i":
            fail(f"event {i} has unknown phase {ph!r}")
    if meta == 0:
        fail("no thread-name metadata events")
    missing = EXPECTED_SPANS - span_names
    if missing:
        fail(f"missing expected span kinds: {sorted(missing)}")
    print(
        f"validate-telemetry: trace OK: {len(events)} events, "
        f"span kinds {sorted(span_names)}"
    )


def last_json_line(path):
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip()]
    if not lines:
        fail("file has no non-empty lines")
    return json.loads(lines[-1])


def mode_metrics(path):
    m = last_json_line(path)
    check_pipeline_metrics(m, require_read_count=True)
    print(
        f"validate-telemetry: metrics OK: {m['reads_in']} reads, "
        f"{m['records_out']} records, read p99 "
        f"{m['latency']['read']['p99']} ns"
    )


def mode_router(path):
    m = last_json_line(path)
    check_pipeline_metrics(m, require_read_count=True)
    r = m.get("router")
    if not isinstance(r, dict):
        fail("metrics object missing the 'router' block")
    for key in ("explored", "batches"):
        if key not in r:
            fail(f"router block missing {key!r}")
    batches = r["batches"]
    if not batches:
        fail("router block routed no batches (did this run use --backend auto?)")
    for name, n in batches.items():
        if not isinstance(n, int) or n < 0:
            fail(f"router batch count for {name!r} is not a non-negative int: {n}")
        if name not in m["backends"]:
            fail(f"router routed to {name!r}, absent from the backends snapshot")
    routed = sum(batches.values())
    executed = sum(b["batches"] for b in m["backends"].values())
    if routed != executed:
        fail(
            f"router assigned {routed} batches but backends executed {executed}"
        )
    if r["explored"] > routed:
        fail(f"explored {r['explored']} exceeds routed batches {routed}")
    split = ", ".join(f"{k}={v}" for k, v in sorted(batches.items()))
    print(
        f"validate-telemetry: router OK: {routed} batches [{split}], "
        f"{r['explored']} explored"
    )


def mode_stats_json(path):
    s = last_json_line(path)
    if s.get("schema") != "genasm-stats/v1":
        fail(f"unexpected stats schema {s.get('schema')!r}")
    for key in ("server", "sessions", "pipeline"):
        if key not in s:
            fail(f"stats object missing {key!r}")
    for key in ("sessions", "backend_errors", "uptime_ms", "ref"):
        if key not in s["server"]:
            fail(f"server block missing {key!r}")
    if not isinstance(s["sessions"], list):
        fail("'sessions' is not a list")
    check_pipeline_metrics(s["pipeline"], require_read_count=False)
    print(
        f"validate-telemetry: stats-json OK: "
        f"{s['server']['sessions']} active session(s), "
        f"{s['pipeline']['records_out']} records"
    )


DISPOSITIONS = {"aligned", "rescued", "failed:no_alignment",
                "unmapped:no_anchors", "unmapped:no_chain",
                "unmapped:no_candidates"}


def json_lines(path):
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip()]
    if not lines:
        fail("file has no non-empty lines")
    return [json.loads(ln) for ln in lines]


def mode_explain(path):
    recs = json_lines(path)
    for i, r in enumerate(recs):
        where = f"explain line {i}"
        if r.get("schema") != "genasm-explain/v1":
            fail(f"{where}: unexpected schema {r.get('schema')!r}")
        for key in ("read", "disposition", "anchors", "chains", "candidates",
                    "rescued_tasks", "map_ns", "align_ns", "tasks"):
            if key not in r:
                fail(f"{where}: missing {key!r}")
        disp = r["disposition"]
        if disp not in DISPOSITIONS:
            fail(f"{where}: disposition {disp!r} outside the closed taxonomy")
        rescued = sum(1 for t in r["tasks"] if t.get("rescued"))
        if rescued != r["rescued_tasks"]:
            fail(
                f"{where}: rescued_tasks {r['rescued_tasks']} but "
                f"{rescued} tasks carry the flag"
            )
        if disp == "rescued" and rescued == 0:
            fail(f"{where}: rescued disposition with no rescued task")
        if disp.startswith("unmapped:") and (r["candidates"] or r["tasks"]):
            fail(f"{where}: unmapped read carries candidates/tasks")
        for t in r["tasks"]:
            for key in ("hint", "edits", "rescued"):
                if key not in t:
                    fail(f"{where}: task missing {key!r}")
    by_disp = {}
    for r in recs:
        by_disp[r["disposition"]] = by_disp.get(r["disposition"], 0) + 1
    print(f"validate-telemetry: explain OK: {len(recs)} reads, {by_disp}")


def mode_stat_frames(path):
    frames = json_lines(path)
    prev_uptime, prev_reads = -1, -1
    for i, f in enumerate(frames):
        where = f"stat frame {i}"
        if f.get("schema") != "genasm-stat-frame/v1":
            fail(f"{where}: unexpected schema {f.get('schema')!r}")
        for key in ("uptime_ms", "interval_ms", "sessions", "records_out",
                    "funnel", "rates", "backends", "buffered_out_bytes",
                    "slowest"):
            if key not in f:
                fail(f"{where}: missing {key!r}")
        for key in ("reads_per_sec", "records_per_sec"):
            if key not in f["rates"]:
                fail(f"{where}: rates missing {key!r}")
        # A live frame may catch reads mid-flight, so the funnel need
        # not partition reads_in exactly — but it must stay monotone
        # and never over-account.
        check_funnel(f["funnel"], where, at_rest=False)
        if f["uptime_ms"] < prev_uptime:
            fail(f"{where}: uptime went backwards")
        if f["funnel"]["reads_in"] < prev_reads:
            fail(f"{where}: reads_in went backwards")
        prev_uptime, prev_reads = f["uptime_ms"], f["funnel"]["reads_in"]
    last = frames[-1]
    print(
        f"validate-telemetry: stat-frames OK: {len(frames)} frames, "
        f"{last['funnel']['reads_in']} reads in, "
        f"{last['records_out']} records out"
    )


MODES = {
    "trace": mode_trace,
    "metrics": mode_metrics,
    "router": mode_router,
    "stats-json": mode_stats_json,
    "explain": mode_explain,
    "stat-frames": mode_stat_frames,
}


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in MODES:
        print(__doc__)
        return 2
    mode, path = sys.argv[1], sys.argv[2]
    try:
        MODES[mode](path)
    except (OSError, ValueError) as e:
        fail(f"cannot read {path}: {e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
