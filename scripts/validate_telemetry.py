#!/usr/bin/env python3
"""Validate genasm telemetry output in CI (stdlib only).

Three modes, one per exposition surface:

* ``trace FILE`` — a ``--trace`` Chrome trace-event JSON file. Must be
  a well-formed JSON array of event objects: complete spans (``"ph":
  "X"``) with non-negative ``ts``/``dur`` and a numeric ``tid``,
  thread-name metadata (``"ph": "M"``), and at least one ``read`` and
  one ``execute`` span (the per-read end-to-end span and the backend
  execute span — if either is missing, the pipeline ran untraced).

* ``metrics FILE`` — the stderr of ``--metrics json``: the last
  non-empty line must be one ``genasm-pipeline-metrics/v1`` JSON
  object whose latency histograms are internally consistent (bucket
  counts sum to ``count``, quantiles ordered) and whose read-latency
  count matches ``reads_in``.

* ``stats-json FILE`` — the stdout of ``genasm ctl stats-json``: one
  ``genasm-stats/v1`` object embedding a server block, a session list,
  and a full pipeline metrics object (validated as above, except the
  read-count check — a live server may be mid-stream).

Exit codes: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import sys

EXPECTED_SPANS = {"read", "execute"}


def fail(msg):
    print(f"validate-telemetry: FAIL: {msg}")
    sys.exit(1)


def check_histogram(h, where):
    for key in ("count", "sum", "p50", "p90", "p99", "buckets"):
        if key not in h:
            fail(f"{where}: histogram missing {key!r}")
    bucket_total = sum(c for _, c in h["buckets"])
    if bucket_total != h["count"]:
        fail(
            f"{where}: bucket counts sum to {bucket_total}, "
            f"count says {h['count']}"
        )
    if not h["p50"] <= h["p90"] <= h["p99"]:
        fail(
            f"{where}: quantiles not ordered: "
            f"p50={h['p50']} p90={h['p90']} p99={h['p99']}"
        )


def check_pipeline_metrics(m, require_read_count=True):
    if m.get("schema") != "genasm-pipeline-metrics/v1":
        fail(f"unexpected metrics schema {m.get('schema')!r}")
    for key in ("reads_in", "records_out", "latency", "backends", "busy_ns"):
        if key not in m:
            fail(f"metrics object missing {key!r}")
    lat = m["latency"]
    for key in ("read", "task_queue_wait", "batch_build", "reorder_wait"):
        if key not in lat:
            fail(f"latency object missing {key!r}")
        check_histogram(lat[key], f"latency.{key}")
    if require_read_count and lat["read"]["count"] != m["reads_in"]:
        fail(
            f"read-latency count {lat['read']['count']} != "
            f"reads_in {m['reads_in']}"
        )
    for name, b in m["backends"].items():
        for key in ("batches", "tasks", "queue_wait", "execute"):
            if key not in b:
                fail(f"backend {name!r} missing {key!r}")
        check_histogram(b["execute"], f"backends.{name}.execute")


def mode_trace(path):
    with open(path, "r", encoding="utf-8") as fh:
        events = json.load(fh)
    if not isinstance(events, list) or not events:
        fail("trace is not a non-empty JSON array")
    span_names, meta = set(), 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"event {i} is not an object with 'ph'")
        ph = ev["ph"]
        if ph == "M":
            meta += 1
        elif ph == "X":
            if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
                fail(f"span {i} ({ev.get('name')!r}) has bad ts/dur")
            if not isinstance(ev.get("tid"), int):
                fail(f"span {i} ({ev.get('name')!r}) has no numeric tid")
            span_names.add(ev.get("name"))
        elif ph != "i":
            fail(f"event {i} has unknown phase {ph!r}")
    if meta == 0:
        fail("no thread-name metadata events")
    missing = EXPECTED_SPANS - span_names
    if missing:
        fail(f"missing expected span kinds: {sorted(missing)}")
    print(
        f"validate-telemetry: trace OK: {len(events)} events, "
        f"span kinds {sorted(span_names)}"
    )


def last_json_line(path):
    with open(path, "r", encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh if ln.strip()]
    if not lines:
        fail("file has no non-empty lines")
    return json.loads(lines[-1])


def mode_metrics(path):
    m = last_json_line(path)
    check_pipeline_metrics(m, require_read_count=True)
    print(
        f"validate-telemetry: metrics OK: {m['reads_in']} reads, "
        f"{m['records_out']} records, read p99 "
        f"{m['latency']['read']['p99']} ns"
    )


def mode_stats_json(path):
    s = last_json_line(path)
    if s.get("schema") != "genasm-stats/v1":
        fail(f"unexpected stats schema {s.get('schema')!r}")
    for key in ("server", "sessions", "pipeline"):
        if key not in s:
            fail(f"stats object missing {key!r}")
    for key in ("sessions", "backend_errors", "uptime_ms", "ref"):
        if key not in s["server"]:
            fail(f"server block missing {key!r}")
    if not isinstance(s["sessions"], list):
        fail("'sessions' is not a list")
    check_pipeline_metrics(s["pipeline"], require_read_count=False)
    print(
        f"validate-telemetry: stats-json OK: "
        f"{s['server']['sessions']} active session(s), "
        f"{s['pipeline']['records_out']} records"
    )


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("trace", "metrics", "stats-json"):
        print(__doc__)
        return 2
    mode, path = sys.argv[1], sys.argv[2]
    try:
        {"trace": mode_trace, "metrics": mode_metrics, "stats-json": mode_stats_json}[
            mode
        ](path)
    except (OSError, ValueError) as e:
        fail(f"cannot read {path}: {e}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
