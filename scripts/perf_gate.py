#!/usr/bin/env python3
"""Perf-trajectory regression gate.

Compares the current ``BENCH_pipeline.json`` against the previous
run's artifact and fails on a throughput cliff:

* per-backend ``reads_per_sec`` may not drop more than TOLERANCE
  (default 15%) below the baseline;
* per-backend ``peak_resident_task_bases`` may not grow more than
  TOLERANCE above the baseline;
* (schema v4) the adaptive router's ``auto_reads_per_sec`` may not
  drop more than TOLERANCE below the same run's
  ``best_static_reads_per_sec`` — adaptive routing must keep up with
  the best static backend it chooses from. This check compares within
  the current file, so it runs even without a baseline.

Backends present in only one file are reported but never fail the
gate (backends come and go as the repository grows), and a missing or
unreadable baseline skips the gate entirely — the first run on a new
branch has nothing to compare against. Throughput numbers on shared CI
runners are noisy; the tolerance is deliberately wide so the gate only
catches cliffs, not jitter.

Usage: perf_gate.py CURRENT.json BASELINE.json [--tolerance 0.15]
Exit codes: 0 pass/skipped, 1 regression, 2 bad current file.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", help="BENCH_pipeline.json from this run")
    ap.add_argument("baseline", help="BENCH_pipeline.json from the previous run")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression (default 0.15 = 15%%)",
    )
    args = ap.parse_args()

    try:
        current = load(args.current)
    except (OSError, ValueError) as e:
        print(f"perf-gate: cannot read current file {args.current}: {e}")
        return 2

    failures = []

    # Router check: within-run, so it needs no baseline and runs before
    # the baseline is even opened. Files from before schema v4 carry no
    # router block and skip the check.
    router = current.get("router")
    if router is None:
        print("perf-gate: no router block (schema < v4) — adaptive check skipped")
    else:
        auto_rps = float(router.get("auto_reads_per_sec", 0.0))
        static_rps = float(router.get("best_static_reads_per_sec", 0.0))
        floor = static_rps * (1.0 - args.tolerance)
        verdict = "ok"
        if static_rps > 0.0 and auto_rps < floor:
            verdict = "REGRESSION"
            failures.append(
                f"router: auto reads/s {auto_rps:.1f} < {floor:.1f} "
                f"(best static {router.get('best_static')!r} "
                f"{static_rps:.1f} - {args.tolerance:.0%})"
            )
        split = ", ".join(
            f"{name}={n}" for name, n in sorted(router.get("batches", {}).items())
        )
        print(
            f"perf-gate: router: auto reads/s {auto_rps:.1f} vs best static "
            f"{router.get('best_static')!r} {static_rps:.1f} "
            f"(floor {floor:.1f}) {verdict}"
        )
        print(
            f"perf-gate: router: batches [{split or 'none'}], "
            f"{router.get('explored', 0)} explored (informational)"
        )

    try:
        baseline = load(args.baseline)
    except (OSError, ValueError) as e:
        if failures:
            print("perf-gate: FAIL")
            for f in failures:
                print(f"perf-gate:   {f}")
            return 1
        print(f"perf-gate: no usable baseline ({e}); skipping backend gate")
        return 0

    cur_backends = current.get("backends", {})
    base_backends = baseline.get("backends", {})
    if not cur_backends:
        print("perf-gate: current file has no backends; refusing to pass silently")
        return 2

    for name in sorted(cur_backends):
        cur = cur_backends[name]
        base = base_backends.get(name)
        if base is None:
            print(f"perf-gate: {name}: new backend, no baseline — skipped")
            continue

        cur_rps = float(cur.get("reads_per_sec", 0.0))
        base_rps = float(base.get("reads_per_sec", 0.0))
        floor = base_rps * (1.0 - args.tolerance)
        verdict = "ok"
        if base_rps > 0.0 and cur_rps < floor:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: reads/s {cur_rps:.1f} < {floor:.1f} "
                f"(baseline {base_rps:.1f} - {args.tolerance:.0%})"
            )
        print(
            f"perf-gate: {name}: reads/s {base_rps:.1f} -> {cur_rps:.1f} "
            f"(floor {floor:.1f}) {verdict}"
        )

        cur_peak = int(cur.get("peak_resident_task_bases", 0))
        base_peak = int(base.get("peak_resident_task_bases", 0))
        ceiling = base_peak * (1.0 + args.tolerance)
        verdict = "ok"
        if base_peak > 0 and cur_peak > ceiling:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: peak resident task bases {cur_peak} > {ceiling:.0f} "
                f"(baseline {base_peak} + {args.tolerance:.0%})"
            )
        print(
            f"perf-gate: {name}: peak resident {base_peak} -> {cur_peak} "
            f"(ceiling {ceiling:.0f}) {verdict}"
        )

        # Schema v3 latency percentiles are informational only: the
        # histogram buckets are power-of-two upper bounds, so they are
        # too coarse to gate on, but worth printing in the job log.
        lat = cur.get("latency") or {}
        if lat:
            print(
                f"perf-gate: {name}: read latency p50/p90/p99 ns "
                f"{lat.get('read_p50_ns', 0)}/{lat.get('read_p90_ns', 0)}"
                f"/{lat.get('read_p99_ns', 0)}, "
                f"task-queue wait p99 ns {lat.get('task_queue_wait_p99_ns', 0)} "
                f"(informational)"
            )

    for name in sorted(set(base_backends) - set(cur_backends)):
        print(f"perf-gate: {name}: present in baseline only — skipped")

    if failures:
        print("perf-gate: FAIL")
        for f in failures:
            print(f"perf-gate:   {f}")
        return 1
    print("perf-gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
