//! Smoke tests of the experiment drivers: each must run on a small
//! task set and produce a report containing its paper row.

use genasm_suite::experiments::{ablation, accuracy, cpu, gpu, memory, sweep};

fn tasks(n: usize, len: usize) -> Vec<align_core::AlignTask> {
    // Reuse the bench workload builder through a local copy to avoid a
    // dev-dependency cycle: simple mutated pairs at 10% error.
    use align_core::{AlignTask, Base, Seq};
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(77);
    (0..n)
        .map(|i| {
            let q: Vec<Base> = (0..len)
                .map(|_| Base::from_code(rng.gen_range(0..4)))
                .collect();
            let mut t = q.clone();
            let mut j = 0;
            while j < t.len() {
                if rng.gen_bool(0.10) {
                    match rng.gen_range(0..3) {
                        0 => t[j] = Base::from_code(rng.gen_range(0..4)),
                        1 => t.insert(j, Base::from_code(rng.gen_range(0..4))),
                        _ => {
                            t.remove(j);
                        }
                    }
                }
                j += 1;
            }
            let q: Seq = q.into_iter().collect();
            let t: Seq = t.into_iter().collect();
            AlignTask::new(i as u32, 0, q, t)
        })
        .collect()
}

#[test]
fn cpu_experiment_reports_all_rows() {
    let res = cpu::run(&tasks(6, 800));
    assert!(res.vs_ksw2 > 0.0 && res.vs_edlib > 0.0 && res.vs_baseline > 0.0);
    let report = cpu::report(&res);
    for needle in [
        "E1",
        "E2",
        "E3",
        "ksw2",
        "edlib",
        "genasm-improved",
        "15.2x",
    ] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
}

#[test]
fn gpu_experiment_reports_all_rows() {
    let res = gpu::run(&tasks(4, 600));
    assert!(
        res.vs_gpu_baseline > 1.0,
        "improved kernel must beat baseline"
    );
    let report = gpu::report(&res);
    for needle in ["E4", "E5", "E6", "E7", "4.1x", "62x", "7.2x", "5.9x"] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
}

#[test]
fn memory_experiment_reports_reductions() {
    let all = tasks(6, 800);
    let res = memory::run(&all, &all[..3]);
    assert!(res.footprint_reduction > 8.0);
    assert!(res.access_reduction > 4.0);
    let report = memory::report(&res);
    for needle in ["E8", "E9", "24x", "12x", "true locus"] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
}

#[test]
fn ablation_covers_all_combinations() {
    let rows = ablation::run(&tasks(3, 500));
    assert_eq!(rows.len(), 8);
    let report = ablation::report(&rows);
    for needle in ["baseline", "+compress+et+dent", "+et"] {
        assert!(report.contains(needle), "missing {needle} in:\n{report}");
    }
    // The fully-improved row must have the smallest footprint.
    let improved = rows
        .iter()
        .find(|r| r.label == "+compress+et+dent")
        .unwrap();
    assert!(rows
        .iter()
        .all(|r| improved.stats.table_words <= r.stats.table_words));
}

#[test]
fn accuracy_experiment_bounds_hold() {
    let res = accuracy::run(&tasks(5, 700));
    assert_eq!(res.good.pairs + res.junk.pairs, 5);
    assert!(res.good.optimal <= res.good.pairs);
    assert!(res.good.mean_excess >= 0.0);
    let report = accuracy::report(&res);
    assert!(report.contains("true-locus-like"));
    assert!(report.contains("off-target"));
}

#[test]
fn sweeps_produce_monotone_rows_per_window() {
    let points = sweep::error_sweep(&[0.01, 0.10, 0.20], 6, 600, 3);
    assert_eq!(points.len(), 3);
    // More errors -> more rows computed per window (ET saves less).
    assert!(points[0].rows_per_window < points[2].rows_per_window);
    // More errors -> smaller footprint reduction.
    assert!(points[0].footprint_reduction > points[2].footprint_reduction);
    let geo = sweep::geometry_sweep(&[(64, 24), (32, 12)], 4, 600, 3);
    assert_eq!(geo.len(), 2);
    assert!(geo[1].windows_per_pair > geo[0].windows_per_pair);
    let report = sweep::report(&points, &geo);
    assert!(report.contains("A3a"));
    assert!(report.contains("A3b"));
}
