//! Cross-crate integration tests: the full pipeline from genome to
//! validated alignments, with every aligner in the suite.

use align_core::{AlignTask, GlobalAligner};
use baselines::{Ksw2Aligner, MyersAligner};
use genasm_core::{GenAsmConfig, MemStats};
use genasm_gpu::GpuAligner;
use gpu_sim::Device;
use mapper::{CandidateParams, MinimizerIndex};
use readsim::{simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

/// A small but complete workload: 150 kbp genome, 8 reads of 2 kbp.
fn tiny_workload() -> (Genome, Vec<AlignTask>) {
    let genome = Genome::generate(&GenomeConfig::human_like(150_000, 21));
    let reads = simulate_reads(
        &genome,
        &ReadConfig {
            count: 8,
            length: 2_000,
            errors: ErrorModel::pacbio_clr(0.10),
            rc_fraction: 0.5,
            seed: 22,
        },
    );
    let index = MinimizerIndex::build(&genome.seq);
    let mut tasks = Vec::new();
    for r in &reads {
        tasks.extend(mapper::candidates_for_read(
            r.id,
            &r.seq,
            &genome.seq,
            &index,
            &CandidateParams::default(),
        ));
    }
    assert!(
        tasks.len() >= reads.len(),
        "each read should produce at least one candidate"
    );
    (genome, tasks)
}

#[test]
fn every_aligner_validates_on_mapped_candidates() {
    let (_genome, tasks) = tiny_workload();
    let subset = &tasks[..tasks.len().min(12)];
    let genasm = genasm_cpu::CpuBatchAligner::improved();
    let genasm_base = genasm_cpu::CpuBatchAligner::baseline();
    let myers = MyersAligner::new();
    let ksw2 = Ksw2Aligner::new();
    for t in subset {
        for aligner in [&genasm as &dyn GlobalAligner, &genasm_base, &myers, &ksw2] {
            let aln = aligner
                .align(&t.query, &t.target)
                .unwrap_or_else(|e| panic!("{} failed: {e}", aligner.name()));
            aln.check(&t.query, &t.target)
                .unwrap_or_else(|e| panic!("{} invalid: {e}", aligner.name()));
        }
    }
}

#[test]
fn genasm_cost_bounded_by_exact_distance() {
    let (_genome, tasks) = tiny_workload();
    let subset = &tasks[..tasks.len().min(12)];
    let genasm = genasm_cpu::CpuBatchAligner::improved();
    let myers = MyersAligner::new();
    let mut good = 0;
    let mut near_optimal = 0;
    for t in subset {
        let g = genasm.align(&t.query, &t.target).unwrap();
        let opt = myers.align(&t.query, &t.target).unwrap();
        assert!(
            g.edit_distance >= opt.edit_distance,
            "GenASM beat the optimum"
        );
        // "Good" = plausibly the true locus (distance proportional to
        // the 10% error rate); off-target repeat hits are excluded —
        // there the greedy heuristic is expected to produce
        // valid-but-suboptimal alignments.
        if opt.edit_distance * 6 < t.query.len() {
            good += 1;
            let excess = g.edit_distance - opt.edit_distance;
            if excess * 20 <= opt.edit_distance {
                near_optimal += 1;
            }
        }
    }
    assert!(good >= 4, "workload produced too few true-locus candidates");
    // The windowed heuristic stays within a few percent of the optimum
    // on most realistic candidates, but it has a known tail: a dense
    // error cluster can make a greedy window commit a path the later
    // windows never re-synchronize from (the accuracy experiment A2
    // quantifies the distribution). Assert the bulk, tolerate the tail.
    assert!(
        near_optimal * 4 >= good * 3,
        "only {near_optimal}/{good} true-locus candidates within 5% of optimum"
    );
}

#[test]
fn gpu_and_cpu_agree_on_pipeline_candidates() {
    let (_genome, tasks) = tiny_workload();
    let subset: Vec<AlignTask> = tasks.into_iter().take(6).collect();
    let gpu = GpuAligner::improved(Device::a6000());
    let report = gpu.align_batch(&subset).unwrap();
    for (t, r) in subset.iter().zip(&report.results) {
        let mut stats = MemStats::new();
        let cpu = genasm_core::align_with_stats(
            &t.query,
            &t.target,
            &GenAsmConfig::improved(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(r.alignment.cigar, cpu.cigar, "GPU/CPU divergence");
    }
}

#[test]
fn memory_reductions_materialize_on_real_candidates() {
    let (_genome, tasks) = tiny_workload();
    let subset = &tasks[..tasks.len().min(10)];
    let mut base = MemStats::new();
    let mut imp = MemStats::new();
    for t in subset {
        genasm_core::align_with_stats(&t.query, &t.target, &GenAsmConfig::baseline(), &mut base)
            .unwrap();
        genasm_core::align_with_stats(&t.query, &t.target, &GenAsmConfig::improved(), &mut imp)
            .unwrap();
    }
    let footprint = base.footprint_reduction_vs(&imp);
    let accesses = base.access_reduction_vs(&imp);
    // The paper's figures are 24x and 12x; the exact value depends on
    // the candidate mix, but anything below these floors means an
    // improvement stopped working.
    assert!(
        footprint > 8.0,
        "footprint reduction collapsed: {footprint:.1}x"
    );
    assert!(accesses > 4.0, "access reduction collapsed: {accesses:.1}x");
    assert_eq!(base.windows, imp.windows);
}

#[test]
fn pipeline_is_deterministic() {
    let (ga, ta) = tiny_workload();
    let (gb, tb) = tiny_workload();
    assert_eq!(ga.seq, gb.seq);
    assert_eq!(ta.len(), tb.len());
    for (x, y) in ta.iter().zip(&tb) {
        assert_eq!(x.query, y.query);
        assert_eq!(x.ref_pos, y.ref_pos);
    }
}
