//! The full long-read pipeline on a miniature genome: simulate →
//! map → align, the paper's evaluation flow end to end.
//!
//! ```text
//! cargo run --release --example long_read_pipeline
//! ```

use align_core::GlobalAligner;
use genasm_core::GenAsmAligner;
use mapper::{CandidateParams, MinimizerIndex};
use readsim::{simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

fn main() {
    // 1. A 300 kbp genome with repeat structure.
    let genome = Genome::generate(&GenomeConfig::human_like(300_000, 7));
    println!(
        "genome: {} bp, GC {:.1}%, {} planted repeat copies",
        genome.seq.len(),
        genome.seq.gc_content() * 100.0,
        genome.planted.len()
    );

    // 2. Twenty 5 kbp PacBio CLR-style reads at 10% error.
    let reads = simulate_reads(
        &genome,
        &ReadConfig {
            count: 20,
            length: 5_000,
            errors: ErrorModel::pacbio_clr(0.10),
            rc_fraction: 0.5,
            seed: 99,
        },
    );
    println!("reads : {} x {} bp", reads.len(), reads[0].seq.len());

    // 3. Map with minimizer seeding + chaining, all chains kept (-P).
    let index = MinimizerIndex::build(&genome.seq);
    let params = CandidateParams::default();
    let aligner = GenAsmAligner::improved();
    let mut total_candidates = 0;
    let mut correct_best = 0;

    for read in &reads {
        let cands = mapper::candidates_for_read(read.id, &read.seq, &genome.seq, &index, &params);
        total_candidates += cands.len();

        // 4. Align every candidate; the best-scoring one should be the
        // true origin.
        let mut best: Option<(usize, usize)> = None; // (distance, ref_pos)
        for c in &cands {
            let aln = aligner.align(&c.query, &c.target).expect("alignment");
            aln.check(&c.query, &c.target).expect("valid CIGAR");
            if best.is_none_or(|(d, _)| aln.edit_distance < d) {
                best = Some((aln.edit_distance, c.ref_pos));
            }
        }
        if let Some((dist, pos)) = best {
            let hit = pos.abs_diff(read.true_start) < 2_000;
            if hit {
                correct_best += 1;
            }
            println!(
                "read {:>2}: {:>3} candidates, best distance {:>4} at {:>7} (truth {:>7}) {}",
                read.id,
                cands.len(),
                dist,
                pos,
                read.true_start,
                if hit { "✓" } else { "✗" }
            );
        } else {
            println!("read {:>2}: unmapped", read.id);
        }
    }
    println!(
        "\n{total_candidates} candidates total, best-candidate accuracy {}/{}",
        correct_best,
        reads.len()
    );
}
