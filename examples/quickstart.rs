//! Quickstart: align two sequences with the improved GenASM algorithm
//! and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use align_core::{alignment::format_alignment, GlobalAligner, Seq};
use genasm_core::{GenAsmAligner, MemStats};

/// Mutate every 4th base of `seq` (deterministic demo input).
fn perturb(seq: &Seq) -> Seq {
    (0..seq.len())
        .map(|i| {
            let c = seq.get_code(i);
            align_core::Base::from_code(if i % 4 == 0 { (c + 1) % 4 } else { c })
        })
        .collect()
}

fn main() {
    // A query with one substitution, one insertion and one deletion
    // relative to the target.
    let query = Seq::from_ascii(b"ACGTACGTTAGGCCATACGGTTACAGGATTACACGT").unwrap();
    let target = Seq::from_ascii(b"ACGTACCTTAGGCATACGGTTAACAGGATTACACGT").unwrap();

    let aligner = GenAsmAligner::improved();
    let alignment = aligner.align(&query, &target).expect("alignment");

    println!("query : {query}");
    println!("target: {target}");
    println!();
    println!("edit distance: {}", alignment.edit_distance);
    println!("CIGAR        : {}", alignment.cigar);
    println!();
    println!("{}", format_alignment(&query, &target, &alignment, 60));

    // The instrumentation behind the paper's memory claims is a method
    // call away.
    let mut stats = MemStats::new();
    aligner
        .align_with_stats(&query, &target, &mut stats)
        .unwrap();
    println!("windows processed : {}", stats.windows);
    println!("error rows/window : {:.1}", stats.mean_rows_per_window());
    println!(
        "DP table footprint: {} bytes ({} words)",
        stats.table_bytes(),
        stats.table_words
    );

    // Verify the alignment is valid against both sequences.
    alignment.check(&query, &target).expect("valid CIGAR");
    println!("\nalignment validated ✓");

    // The hot path for many alignments: hold one AlignWorkspace and
    // reuse it — scratch rows, the traceback arena and staging buffers
    // are allocated once and reused for every pair (zero heap
    // allocations per window in steady state).
    let mut ws = aligner.new_workspace();
    let pairs = [
        (query.clone(), target.clone()),
        (target.clone(), query.clone()),
        (query.clone(), perturb(&query)),
    ];
    for (q, t) in &pairs {
        let aln = aligner.align_reusing(&mut ws, q, t).expect("alignment");
        println!("reused workspace: d={} over {q}", aln.edit_distance);
    }
    println!(
        "workspace instrumentation: {} windows across {} alignments",
        ws.stats.windows,
        pairs.len()
    );
}
