//! Batch alignment on the simulated A6000: improved vs unimproved
//! GenASM kernels, with the traffic and timing breakdown that drives
//! the paper's GPU claims.
//!
//! ```text
//! cargo run --release --example gpu_batch
//! ```

use align_core::{AlignTask, Base, Seq};
use genasm_gpu::GpuAligner;
use gpu_sim::Device;
use rand::prelude::*;

fn mutated_pair(rng: &mut StdRng, len: usize, error_rate: f64) -> (Seq, Seq) {
    let q: Vec<Base> = (0..len)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let mut t = q.clone();
    let mut i = 0;
    while i < t.len() {
        if rng.gen_bool(error_rate) {
            match rng.gen_range(0..3) {
                0 => t[i] = Base::from_code(rng.gen_range(0..4)),
                1 => t.insert(i, Base::from_code(rng.gen_range(0..4))),
                _ => {
                    t.remove(i);
                }
            }
        }
        i += 1;
    }
    (q.into_iter().collect(), t.into_iter().collect())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);
    let tasks: Vec<AlignTask> = (0..64)
        .map(|i| {
            let (q, t) = mutated_pair(&mut rng, 2_000, 0.10);
            AlignTask::new(i, 0, q, t)
        })
        .collect();
    println!("batch: {} pairs of ~2 kbp at 10% error\n", tasks.len());

    let device = Device::a6000();
    println!("device: {}", device.desc.name);
    println!(
        "  SMs: {}, shared/block: {} KiB, DRAM: {} GB/s\n",
        device.desc.sm_count,
        device.desc.shared_mem_per_block / 1024,
        device.desc.dram_bandwidth_gbps
    );

    for (label, gpu) in [
        ("improved  ", GpuAligner::improved(device.clone())),
        ("unimproved", GpuAligner::baseline(device.clone())),
    ] {
        let report = gpu.align_batch(&tasks).expect("launch");
        let total_dist: usize = report
            .results
            .iter()
            .map(|r| r.alignment.edit_distance)
            .sum();
        println!("kernel {label}:");
        println!("  shared memory/block : {} KiB", report.shared_bytes / 1024);
        println!(
            "  occupancy           : {} blocks/SM",
            report.timing.blocks_per_sm
        );
        println!(
            "  global traffic      : {:.2} MiB",
            report.totals.global_bytes as f64 / 1048576.0
        );
        println!("  modeled time        : {:.3} ms", report.timing.total_ms);
        println!(
            "    compute {:.3} ms / bandwidth {:.3} ms / latency {:.3} ms",
            report.timing.compute_ms, report.timing.bandwidth_ms, report.timing.latency_ms
        );
        println!("  total edit distance : {total_dist}");
        println!();
    }

    // The two kernels must agree bit-for-bit on the alignments.
    let a = GpuAligner::improved(device.clone())
        .align_batch(&tasks)
        .unwrap();
    let b = GpuAligner::baseline(device).align_batch(&tasks).unwrap();
    assert!(a
        .results
        .iter()
        .zip(&b.results)
        .all(|(x, y)| x.alignment.cigar == y.alignment.cigar));
    println!("improved and unimproved kernels agree on all alignments ✓");
}
