//! Head-to-head of all aligners in the suite on the same pair set:
//! GenASM (improved / unimproved), the Edlib-style Myers baseline and
//! the KSW2-style affine-gap baseline.
//!
//! ```text
//! cargo run --release --example aligner_shootout
//! ```

use std::time::Instant;

use align_core::{AlignTask, Base, GlobalAligner, Seq};
use baselines::{Ksw2Aligner, MyersAligner};
use genasm_cpu::CpuBatchAligner;
use rand::prelude::*;

fn mutated_pair(rng: &mut StdRng, len: usize, error_rate: f64) -> (Seq, Seq) {
    let q: Vec<Base> = (0..len)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let mut t = q.clone();
    let mut i = 0;
    while i < t.len() {
        if rng.gen_bool(error_rate) {
            match rng.gen_range(0..3) {
                0 => t[i] = Base::from_code(rng.gen_range(0..4)),
                1 => t.insert(i, Base::from_code(rng.gen_range(0..4))),
                _ => {
                    t.remove(i);
                }
            }
        }
        i += 1;
    }
    (q.into_iter().collect(), t.into_iter().collect())
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let tasks: Vec<AlignTask> = (0..40)
        .map(|i| {
            let (q, t) = mutated_pair(&mut rng, 4_000, 0.10);
            AlignTask::new(i, 0, q, t)
        })
        .collect();
    let bases: usize = tasks.iter().map(|t| t.query.len()).sum();
    println!(
        "aligning {} pairs ({} kb of query) at ~10% error\n",
        tasks.len(),
        bases / 1000
    );
    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "aligner", "wall ms", "Mbases/s", "total distance"
    );

    let aligners: Vec<Box<dyn GlobalAligner>> = vec![
        Box::new(CpuBatchAligner::improved()),
        Box::new(CpuBatchAligner::baseline()),
        Box::new(MyersAligner::new()),
        Box::new(Ksw2Aligner::new()),
    ];
    for aligner in &aligners {
        let start = Instant::now();
        let mut total = 0usize;
        for t in &tasks {
            let aln = aligner.align(&t.query, &t.target).expect("alignment");
            aln.check(&t.query, &t.target).expect("valid CIGAR");
            total += aln.edit_distance;
        }
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<22} {:>10.1} {:>12.2} {:>14}",
            aligner.name(),
            secs * 1e3,
            bases as f64 / secs / 1e6,
            total
        );
    }
    println!(
        "\nnote: GenASM distances can exceed the exact aligners' — its windowed\n\
         heuristic trades a small amount of optimality for linear time; the\n\
         accuracy experiment (repro accuracy) quantifies exactly how much."
    );
}
