//! Synthetic genome generation.
//!
//! The paper maps simulated reads against the human genome. We cannot
//! ship GRCh38, so we synthesize genomes that preserve the two
//! properties the evaluation pipeline actually depends on
//! (DESIGN.md §2):
//!
//! 1. **local composition structure** — GC content drifts along the
//!    genome (first-order Markov base process with a slowly wandering
//!    GC target), so minimizer densities vary like in real genomes;
//! 2. **repeat structure** — planted repeat families (near-identical
//!    copies with a few percent divergence) make the mapper emit
//!    *multiple candidate locations per read*, which is what produced
//!    the paper's 138,929 candidates from 500 reads (~278 per read with
//!    `minimap2 -P`).

use align_core::{Base, Seq};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Specification of one planted repeat family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatFamily {
    /// Length of the repeat unit in bases.
    pub unit_len: usize,
    /// Number of copies scattered over the genome.
    pub copies: usize,
    /// Per-base divergence between copies (substitutions), `0.0..0.5`.
    pub divergence: f64,
}

/// Configuration for [`Genome::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenomeConfig {
    /// Total genome length in bases.
    pub length: usize,
    /// Mean GC content of the background process.
    pub gc_mean: f64,
    /// How strongly GC wanders (standard deviation of the drift step).
    pub gc_drift: f64,
    /// Planted repeat families.
    pub repeats: Vec<RepeatFamily>,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl GenomeConfig {
    /// A laptop-scale stand-in for a human-genome mapping target:
    /// 2 Mbp with two repeat families sized so that a 10 kbp read
    /// overlapping a repeat maps to many candidate locations.
    pub fn human_like(length: usize, seed: u64) -> GenomeConfig {
        GenomeConfig {
            length,
            gc_mean: 0.41, // human genome average
            gc_drift: 0.02,
            repeats: vec![
                RepeatFamily {
                    unit_len: 6_000,
                    copies: (length / 40_000).max(2),
                    divergence: 0.02,
                },
                RepeatFamily {
                    unit_len: 300, // SINE/Alu-like
                    copies: (length / 4_000).max(4),
                    divergence: 0.08,
                },
            ],
            seed,
        }
    }

    /// A plain repeat-free genome (unique mapping).
    pub fn plain(length: usize, seed: u64) -> GenomeConfig {
        GenomeConfig {
            length,
            gc_mean: 0.5,
            gc_drift: 0.0,
            repeats: Vec::new(),
            seed,
        }
    }
}

/// Split a total reference length into `contigs` deliberately
/// *unequal* parts (weights `1..=contigs`, remainder to the largest):
/// multi-contig workloads should never accidentally test only the
/// equal-sizes case — real assemblies are wildly skewed, and equal
/// contigs would mask coordinate bugs that cancel out by symmetry.
pub fn contig_lengths(total: usize, contigs: usize) -> Vec<usize> {
    let n = contigs.max(1);
    let weight_sum = n * (n + 1) / 2;
    let mut lens: Vec<usize> = (1..=n).map(|i| total * i / weight_sum).collect();
    let assigned: usize = lens.iter().sum();
    *lens.last_mut().expect("n >= 1") += total - assigned;
    lens
}

/// A generated genome plus provenance of the planted repeats.
#[derive(Debug, Clone)]
pub struct Genome {
    /// The sequence.
    pub seq: Seq,
    /// `(family index, start position)` of each planted repeat copy.
    pub planted: Vec<(usize, usize)>,
}

impl Genome {
    /// Generate a genome from `config`.
    pub fn generate(config: &GenomeConfig) -> Genome {
        assert!(config.length > 0, "genome length must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut bases: Vec<Base> = Vec::with_capacity(config.length);

        // Background: wandering-GC base process.
        let mut gc = config.gc_mean;
        for i in 0..config.length {
            if i % 1_000 == 0 && config.gc_drift > 0.0 {
                // Mean-reverting random walk of the local GC target.
                let step: f64 = rng.gen_range(-1.0..1.0) * config.gc_drift;
                gc += step + 0.1 * (config.gc_mean - gc);
                gc = gc.clamp(0.2, 0.8);
            }
            let base = if rng.gen_bool(gc) {
                if rng.gen_bool(0.5) {
                    Base::G
                } else {
                    Base::C
                }
            } else if rng.gen_bool(0.5) {
                Base::A
            } else {
                Base::T
            };
            bases.push(base);
        }

        // Plant repeat families.
        let mut planted = Vec::new();
        for (fi, fam) in config.repeats.iter().enumerate() {
            if fam.unit_len == 0 || fam.unit_len >= config.length {
                continue;
            }
            // Family consensus.
            let consensus: Vec<Base> = (0..fam.unit_len)
                .map(|_| Base::from_code(rng.gen_range(0..4)))
                .collect();
            for _ in 0..fam.copies {
                let start = rng.gen_range(0..config.length - fam.unit_len);
                for (off, &cb) in consensus.iter().enumerate() {
                    let b = if rng.gen_bool(fam.divergence) {
                        Base::from_code(rng.gen_range(0..4))
                    } else {
                        cb
                    };
                    bases[start + off] = b;
                }
                planted.push((fi, start));
            }
        }

        Genome {
            seq: bases.into_iter().collect(),
            planted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenomeConfig::human_like(50_000, 42);
        let a = Genome::generate(&cfg);
        let b = Genome::generate(&cfg);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Genome::generate(&GenomeConfig::plain(10_000, 1));
        let b = Genome::generate(&GenomeConfig::plain(10_000, 2));
        assert_ne!(a.seq, b.seq);
    }

    #[test]
    fn gc_content_tracks_target() {
        let cfg = GenomeConfig {
            length: 200_000,
            gc_mean: 0.41,
            gc_drift: 0.02,
            repeats: Vec::new(),
            seed: 7,
        };
        let g = Genome::generate(&cfg);
        let gc = g.seq.gc_content();
        assert!((gc - 0.41).abs() < 0.05, "gc = {gc}");
    }

    #[test]
    fn repeats_are_planted_and_similar() {
        let cfg = GenomeConfig {
            length: 100_000,
            gc_mean: 0.5,
            gc_drift: 0.0,
            repeats: vec![RepeatFamily {
                unit_len: 500,
                copies: 4,
                divergence: 0.02,
            }],
            seed: 3,
        };
        let g = Genome::generate(&cfg);
        assert_eq!(g.planted.len(), 4);
        // Any two copies should be much closer to each other than random
        // sequences (expected ~4% difference vs 75% for random).
        let (_, s1) = g.planted[0];
        let (_, s2) = g.planted[1];
        let a = g.seq.slice(s1, 500);
        let b = g.seq.slice(s2, 500);
        let ham = a.hamming(&b).unwrap();
        assert!(
            ham < 50,
            "planted copies differ in {ham}/500 positions (overlap or bug?)"
        );
    }

    #[test]
    fn contig_lengths_sum_and_are_unequal() {
        for (total, n) in [(120_000usize, 3usize), (90_001, 4), (10, 1), (7, 3)] {
            let lens = contig_lengths(total, n);
            assert_eq!(lens.len(), n);
            assert_eq!(lens.iter().sum::<usize>(), total);
        }
        let lens = contig_lengths(120_000, 3);
        assert!(lens[0] < lens[1] && lens[1] < lens[2], "{lens:?}");
    }

    #[test]
    fn genome_length_is_exact() {
        let g = Genome::generate(&GenomeConfig::human_like(12_345, 9));
        assert_eq!(g.seq.len(), 12_345);
    }
}
