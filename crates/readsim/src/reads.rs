//! PBSIM2-style long-read simulation.
//!
//! Reads are sampled from a reference genome with a PacBio CLR error
//! profile: a configurable total error rate split between
//! substitutions, insertions and deletions (PBSIM's CLR ratio is
//! roughly 6:50:44 in our default), and *bursty* errors driven by a
//! two-state hidden Markov model — a simplified stand-in for PBSIM2's
//! FIC-HMM quality model. Each read carries per-base Phred-like quality
//! scores derived from the HMM state, and its true origin interval for
//! mapper evaluation.

use align_core::{Base, Seq};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::genome::Genome;

/// Error-model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Mean total error rate (fraction of read bases that are errors).
    pub error_rate: f64,
    /// Relative weight of substitutions.
    pub sub_frac: f64,
    /// Relative weight of insertions (bases present in the read only).
    pub ins_frac: f64,
    /// Relative weight of deletions (reference bases skipped).
    pub del_frac: f64,
    /// Error-rate multiplier in the HMM's "good" state.
    pub good_mult: f64,
    /// Error-rate multiplier in the "bad" (bursty) state.
    pub bad_mult: f64,
    /// Probability of switching good -> bad per base.
    pub to_bad: f64,
    /// Probability of switching bad -> good per base.
    pub to_good: f64,
}

impl ErrorModel {
    /// PacBio CLR-like profile at a given total error rate.
    pub fn pacbio_clr(error_rate: f64) -> ErrorModel {
        ErrorModel {
            error_rate,
            sub_frac: 0.06,
            ins_frac: 0.50,
            del_frac: 0.44,
            good_mult: 0.6,
            bad_mult: 3.0,
            to_bad: 0.002,
            to_good: 0.012,
        }
    }

    /// Error-free reads (sanity baseline).
    pub fn perfect() -> ErrorModel {
        ErrorModel {
            error_rate: 0.0,
            sub_frac: 1.0,
            ins_frac: 0.0,
            del_frac: 0.0,
            good_mult: 1.0,
            bad_mult: 1.0,
            to_bad: 0.0,
            to_good: 1.0,
        }
    }

    fn normalized(&self) -> (f64, f64, f64) {
        let total = self.sub_frac + self.ins_frac + self.del_frac;
        assert!(
            total > 0.0 || self.error_rate == 0.0,
            "error fractions sum to 0"
        );
        if total == 0.0 {
            return (1.0, 0.0, 0.0);
        }
        (
            self.sub_frac / total,
            self.ins_frac / total,
            self.del_frac / total,
        )
    }
}

/// Read-set configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadConfig {
    /// Number of reads to simulate.
    pub count: usize,
    /// Read length (every read has this length, like the paper's fixed
    /// 10 kbp reads).
    pub length: usize,
    /// Error model.
    pub errors: ErrorModel,
    /// Fraction of reads sampled from the reverse strand.
    pub rc_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ReadConfig {
    /// The paper's workload shape: `count` reads of 10 kbp at ~10%
    /// CLR errors, both strands.
    pub fn paper_like(count: usize, seed: u64) -> ReadConfig {
        ReadConfig {
            count,
            length: 10_000,
            errors: ErrorModel::pacbio_clr(0.10),
            rc_fraction: 0.5,
            seed,
        }
    }
}

/// One simulated read with provenance.
#[derive(Debug, Clone)]
pub struct SimRead {
    /// Read identifier (index in the read set).
    pub id: u32,
    /// The read sequence (as sequenced, i.e. reverse-complemented for
    /// reverse-strand reads).
    pub seq: Seq,
    /// Phred-like quality per base (higher = better).
    pub qual: Vec<u8>,
    /// True origin: start on the forward reference.
    pub true_start: usize,
    /// True origin: end (exclusive) on the forward reference.
    pub true_end: usize,
    /// True strand: `false` = forward, `true` = reverse complement.
    pub reverse: bool,
    /// Number of error events injected.
    pub errors_injected: usize,
}

/// Simulate a read set from `genome`.
pub fn simulate_reads(genome: &Genome, cfg: &ReadConfig) -> Vec<SimRead> {
    assert!(cfg.length > 0, "read length must be positive");
    assert!(
        genome.seq.len() > cfg.length * 2,
        "genome ({}) too short for reads of length {}",
        genome.seq.len(),
        cfg.length
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let (sub_p, ins_p, _del_p) = cfg.errors.normalized();
    let mut reads = Vec::with_capacity(cfg.count);

    for id in 0..cfg.count {
        // Leave slack for deletions consuming extra reference.
        let max_ref_span = cfg.length * 2;
        let start = rng.gen_range(0..genome.seq.len() - max_ref_span);
        let mut bases: Vec<Base> = Vec::with_capacity(cfg.length);
        let mut qual: Vec<u8> = Vec::with_capacity(cfg.length);
        let mut rpos = start;
        let mut bad_state = false;
        let mut errors_injected = 0usize;

        while bases.len() < cfg.length && rpos < genome.seq.len() {
            // HMM state switch.
            let switch = if bad_state {
                cfg.errors.to_good
            } else {
                cfg.errors.to_bad
            };
            if switch > 0.0 && rng.gen_bool(switch.min(1.0)) {
                bad_state = !bad_state;
            }
            let mult = if bad_state {
                cfg.errors.bad_mult
            } else {
                cfg.errors.good_mult
            };
            let p_err = (cfg.errors.error_rate * mult).min(0.75);
            let q = phred_from_error(p_err);

            if p_err > 0.0 && rng.gen_bool(p_err) {
                errors_injected += 1;
                let r: f64 = rng.gen();
                if r < sub_p {
                    // Substitution: emit a different base.
                    let orig = genome.seq.get(rpos);
                    let sub = Base::from_code((orig.code() + rng.gen_range(1..4u8)) % 4);
                    bases.push(sub);
                    qual.push(q);
                    rpos += 1;
                } else if r < sub_p + ins_p {
                    // Insertion: emit a random base, reference stays.
                    bases.push(Base::from_code(rng.gen_range(0..4)));
                    qual.push(q);
                } else {
                    // Deletion: skip a reference base.
                    rpos += 1;
                }
            } else {
                bases.push(genome.seq.get(rpos));
                qual.push(q);
                rpos += 1;
            }
        }

        let true_start = start;
        let true_end = rpos;
        let reverse = rng.gen_bool(cfg.rc_fraction.clamp(0.0, 1.0));
        let mut seq: Seq = bases.into_iter().collect();
        if reverse {
            seq = seq.reverse_complement();
            qual.reverse();
        }
        reads.push(SimRead {
            id: id as u32,
            seq,
            qual,
            true_start,
            true_end,
            reverse,
            errors_injected,
        });
    }
    reads
}

/// Phred-like quality from an error probability.
fn phred_from_error(p: f64) -> u8 {
    if p <= 0.0 {
        return 60;
    }
    (-10.0 * p.log10()).clamp(0.0, 60.0).round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{Genome, GenomeConfig};

    fn genome(len: usize) -> Genome {
        Genome::generate(&GenomeConfig::plain(len, 11))
    }

    #[test]
    fn perfect_reads_match_reference_exactly() {
        let g = genome(100_000);
        let cfg = ReadConfig {
            count: 10,
            length: 1_000,
            errors: ErrorModel::perfect(),
            rc_fraction: 0.0,
            seed: 5,
        };
        for r in simulate_reads(&g, &cfg) {
            assert_eq!(r.seq.len(), 1_000);
            assert_eq!(r.errors_injected, 0);
            let origin = g.seq.slice(r.true_start, r.true_end - r.true_start);
            assert_eq!(r.seq, origin);
        }
    }

    #[test]
    fn rc_reads_match_reverse_complement() {
        let g = genome(50_000);
        let cfg = ReadConfig {
            count: 8,
            length: 500,
            errors: ErrorModel::perfect(),
            rc_fraction: 1.0,
            seed: 6,
        };
        for r in simulate_reads(&g, &cfg) {
            assert!(r.reverse);
            let origin = g.seq.slice(r.true_start, r.true_end - r.true_start);
            assert_eq!(r.seq, origin.reverse_complement());
        }
    }

    #[test]
    fn error_rate_is_calibrated() {
        let g = genome(400_000);
        let cfg = ReadConfig {
            count: 20,
            length: 5_000,
            errors: ErrorModel::pacbio_clr(0.10),
            rc_fraction: 0.0,
            seed: 7,
        };
        let reads = simulate_reads(&g, &cfg);
        let total_errors: usize = reads.iter().map(|r| r.errors_injected).sum();
        let total_bases: usize = reads.iter().map(|r| r.seq.len()).sum();
        let rate = total_errors as f64 / total_bases as f64;
        assert!(
            (rate - 0.10).abs() < 0.02,
            "injected error rate {rate} too far from 10%"
        );
    }

    #[test]
    fn edit_distance_to_origin_tracks_error_rate() {
        let g = genome(200_000);
        let cfg = ReadConfig {
            count: 5,
            length: 800,
            errors: ErrorModel::pacbio_clr(0.08),
            rc_fraction: 0.0,
            seed: 8,
        };
        for r in simulate_reads(&g, &cfg) {
            let origin = g.seq.slice(r.true_start, r.true_end - r.true_start);
            let d = align_core::nw_distance(&r.seq, &origin);
            assert!(d > 0, "8% errors should leave a trace");
            // NW distance can be below the injected count (events can
            // cancel) but never above.
            assert!(
                d <= r.errors_injected,
                "d={d} > injected {}",
                r.errors_injected
            );
        }
    }

    #[test]
    fn qualities_reflect_error_probability() {
        let g = genome(100_000);
        let cfg = ReadConfig {
            count: 3,
            length: 2_000,
            errors: ErrorModel::pacbio_clr(0.12),
            rc_fraction: 0.0,
            seed: 9,
        };
        for r in simulate_reads(&g, &cfg) {
            assert_eq!(r.qual.len(), r.seq.len());
            // Two distinct HMM states should produce at least two
            // distinct quality values over 2000 bases.
            let mut quals: Vec<u8> = r.qual.clone();
            quals.dedup();
            assert!(quals.len() > 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = genome(60_000);
        let cfg = ReadConfig::paper_like(3, 42);
        let cfg = ReadConfig {
            length: 2_000,
            ..cfg
        };
        let a = simulate_reads(&g, &cfg);
        let b = simulate_reads(&g, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.true_start, y.true_start);
        }
    }

    #[test]
    fn phred_mapping() {
        assert_eq!(phred_from_error(0.1), 10);
        assert_eq!(phred_from_error(0.01), 20);
        assert_eq!(phred_from_error(0.0), 60);
    }
}
