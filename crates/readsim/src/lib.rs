//! # readsim
//!
//! Workload generation for the GenASM reproduction: a synthetic genome
//! generator ([`genome`]) and a PBSIM2-style long-read simulator
//! ([`reads`]).
//!
//! The paper simulates 500 PacBio reads of 10 kbp from the human genome
//! with PBSIM2 (Ono et al. 2020). We reproduce the workload *shape* —
//! GC-structured repetitive reference, CLR-profile bursty errors, fixed
//! 10 kbp read length, both strands — with deterministic seeds so every
//! experiment is reproducible bit-for-bit (see DESIGN.md §2 for the
//! substitution argument).

pub mod fastx;
pub mod genome;
pub mod reads;

pub use fastx::{
    read_fastx, read_multi_fastx, read_single_fastx, reads_to_records, write_fasta, write_fastq,
    FastxError, FastxReader, FastxRecord,
};
pub use genome::{contig_lengths, Genome, GenomeConfig, RepeatFamily};
pub use reads::{simulate_reads, ErrorModel, ReadConfig, SimRead};
