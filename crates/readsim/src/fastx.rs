//! Minimal FASTA/FASTQ reading and writing.
//!
//! The real pipeline the paper builds on exchanges reads and references
//! as FASTA/FASTQ files (PBSIM2 writes FASTQ, minimap2 reads both). The
//! CLI tools in this suite do the same, so simulated workloads can be
//! round-tripped to disk and inspected with standard tools.
//!
//! Scope: DNA records over `ACGT` (what the aligners accept); `N` and
//! other IUPAC codes are rejected with a clear error rather than being
//! silently squashed. Line wrapping is accepted on input and written at
//! 80 columns on output.

use std::io::{self, BufRead, Write};

use align_core::{AlignError, Reference, Seq};

/// One FASTA/FASTQ record.
#[derive(Debug, Clone, PartialEq)]
pub struct FastxRecord {
    /// Record name (text after `>` / `@`, up to the first whitespace).
    pub name: String,
    /// The sequence.
    pub seq: Seq,
    /// Phred+33 qualities for FASTQ records, `None` for FASTA.
    pub qual: Option<Vec<u8>>,
}

impl FastxRecord {
    /// A FASTA record.
    pub fn fasta(name: &str, seq: Seq) -> FastxRecord {
        FastxRecord {
            name: name.to_string(),
            seq,
            qual: None,
        }
    }

    /// A FASTQ record; `qual` holds raw Phred scores (not +33 encoded).
    pub fn fastq(name: &str, seq: Seq, qual: Vec<u8>) -> FastxRecord {
        assert_eq!(seq.len(), qual.len(), "quality length mismatch");
        FastxRecord {
            name: name.to_string(),
            seq,
            qual: Some(qual),
        }
    }
}

/// Errors from FASTX parsing.
#[derive(Debug)]
pub enum FastxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed record structure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A sequence character the aligners cannot represent.
    BadBase(AlignError),
    /// [`read_single_fastx`] / [`read_multi_fastx`] found no records.
    NoRecords,
    /// [`read_single_fastx`] found more than one record.
    MultiRecord {
        /// Name of the first record (the one a silent loader would
        /// have kept).
        first: String,
        /// Names of every additional record.
        extra: Vec<String>,
    },
    /// [`read_multi_fastx`] found two records with the same name —
    /// contig names key the output records, so they must be unique.
    DuplicateContig {
        /// The repeated name.
        name: String,
    },
}

impl From<io::Error> for FastxError {
    fn from(e: io::Error) -> FastxError {
        FastxError::Io(e)
    }
}

impl core::fmt::Display for FastxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FastxError::Io(e) => write!(f, "I/O error: {e}"),
            FastxError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            FastxError::BadBase(e) => write!(f, "{e}"),
            FastxError::NoRecords => write!(f, "no records"),
            FastxError::MultiRecord { first, extra } => write!(
                f,
                "expected exactly one record but found {}: after {:?} also {}; \
                 this input must be a single sequence",
                extra.len() + 1,
                first,
                extra
                    .iter()
                    .map(|n| format!("{n:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            FastxError::DuplicateContig { name } => write!(
                f,
                "duplicate contig name {name:?}: contig names key the output \
                 records and must be unique within a reference"
            ),
        }
    }
}

impl std::error::Error for FastxError {}

/// A streaming FASTA/FASTQ parser: an iterator yielding one record at
/// a time without ever materializing the whole file.
///
/// This is what the alignment pipeline consumes — a 100 GB FASTQ
/// streams through in constant memory, with backpressure from the
/// pipeline's bounded queues deciding how fast the file is read.
/// [`read_fastx`] is a thin collect-everything wrapper for callers that
/// do want the whole file.
///
/// Formats are auto-detected per record from the first byte (`>` FASTA,
/// `@` FASTQ). CRLF line endings are accepted. Iteration ends at the
/// first error; continuing after an `Err` yields `None`.
pub struct FastxReader<R: BufRead> {
    reader: R,
    /// Reusable line buffer (one allocation for the whole stream).
    buf: String,
    /// 1-based number of the line currently in `buf`.
    lineno: usize,
    /// `buf` holds a header line the previous record looked ahead to.
    pending: bool,
    /// Stream exhausted or poisoned by an error.
    done: bool,
}

impl<R: BufRead> FastxReader<R> {
    /// Wrap a buffered reader.
    pub fn new(reader: R) -> FastxReader<R> {
        FastxReader {
            reader,
            buf: String::new(),
            lineno: 0,
            pending: false,
            done: false,
        }
    }

    /// Read the next line into `self.buf` with trailing whitespace
    /// stripped (covers `\n`, `\r\n`, and stray trailing spaces/tabs,
    /// like the pre-streaming parser's `trim_end`). Returns false at
    /// end of file.
    fn fill_line(&mut self) -> Result<bool, FastxError> {
        self.buf.clear();
        if self.reader.read_line(&mut self.buf)? == 0 {
            return Ok(false);
        }
        self.lineno += 1;
        self.buf.truncate(self.buf.trim_end().len());
        Ok(true)
    }

    /// Like [`Self::fill_line`] but a missing line is a parse error
    /// (used inside a FASTQ record, which must have all four lines).
    fn require_line(&mut self) -> Result<(), FastxError> {
        if self.fill_line()? {
            Ok(())
        } else {
            Err(FastxError::Parse {
                line: self.lineno + 1,
                reason: "unexpected end of file".to_string(),
            })
        }
    }

    fn parse_fasta(&mut self) -> Result<FastxRecord, FastxError> {
        let name = header_name(&self.buf[1..]);
        let mut seq = Seq::new();
        // Collect sequence lines until the next header or EOF.
        loop {
            if !self.fill_line()? {
                break;
            }
            if self.buf.starts_with('>') || self.buf.starts_with('@') {
                self.pending = true;
                break;
            }
            append_seq(&mut seq, &self.buf, self.lineno)?;
        }
        Ok(FastxRecord {
            name,
            seq,
            qual: None,
        })
    }

    fn parse_fastq(&mut self) -> Result<FastxRecord, FastxError> {
        let name = header_name(&self.buf[1..]);
        self.require_line()?;
        let mut seq = Seq::new();
        append_seq(&mut seq, &self.buf, self.lineno)?;
        self.require_line()?;
        if !self.buf.starts_with('+') {
            return Err(FastxError::Parse {
                line: self.lineno,
                reason: "expected '+' separator".to_string(),
            });
        }
        self.require_line()?;
        if self.buf.len() != seq.len() {
            return Err(FastxError::Parse {
                line: self.lineno,
                reason: format!(
                    "quality length {} != sequence length {}",
                    self.buf.len(),
                    seq.len()
                ),
            });
        }
        let qual = self.buf.bytes().map(|b| b.saturating_sub(33)).collect();
        Ok(FastxRecord {
            name,
            seq,
            qual: Some(qual),
        })
    }
}

impl<R: BufRead> Iterator for FastxReader<R> {
    type Item = Result<FastxRecord, FastxError>;

    fn next(&mut self) -> Option<Result<FastxRecord, FastxError>> {
        if self.done {
            return None;
        }
        let step = || -> Result<Option<FastxRecord>, FastxError> {
            // Find the next record header (skipping blank separators).
            loop {
                if self.pending {
                    self.pending = false;
                } else if !self.fill_line()? {
                    return Ok(None);
                }
                if !self.buf.is_empty() {
                    break;
                }
            }
            match self.buf.as_bytes()[0] {
                b'>' => self.parse_fasta().map(Some),
                b'@' => self.parse_fastq().map(Some),
                _ => Err(FastxError::Parse {
                    line: self.lineno,
                    reason: format!(
                        "unexpected record start {:?}",
                        &self.buf[..self.buf.len().min(8)]
                    ),
                }),
            }
        };
        // The closure borrows self; run it via an immediate call.
        let mut step = step;
        match step() {
            Ok(Some(rec)) => Some(Ok(rec)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// Parse FASTA or FASTQ (auto-detected from the first byte) into a
/// fully materialized record list. Streaming consumers should iterate
/// a [`FastxReader`] instead.
pub fn read_fastx<R: BufRead>(reader: R) -> Result<Vec<FastxRecord>, FastxError> {
    FastxReader::new(reader).collect()
}

/// Parse a file that must contain exactly one record (e.g. a
/// single-contig reference). Zero records or more than one is an
/// error; the multi-record error names every extra record so callers
/// can say precisely what to split instead of silently truncating to
/// the first contig.
pub fn read_single_fastx<R: BufRead>(reader: R) -> Result<FastxRecord, FastxError> {
    let mut it = FastxReader::new(reader);
    let first = it.next().transpose()?.ok_or(FastxError::NoRecords)?;
    let mut extra = Vec::new();
    for rec in it {
        extra.push(rec?.name);
    }
    if !extra.is_empty() {
        return Err(FastxError::MultiRecord {
            first: first.name,
            extra,
        });
    }
    Ok(first)
}

/// Parse a multi-record FASTA/FASTQ file into a multi-contig
/// [`Reference`]: every record becomes one named contig, in file
/// order. Zero records or a duplicate contig name is an error.
/// Qualities, if present, are dropped (references carry none).
pub fn read_multi_fastx<R: BufRead>(reader: R) -> Result<Reference, FastxError> {
    let mut reference = Reference::new();
    // Hashed name check: assemblies can have 100k+ scaffolds, so a
    // linear scan per record would make loading quadratic.
    let mut seen = std::collections::HashSet::new();
    for rec in FastxReader::new(reader) {
        let rec = rec?;
        if !seen.insert(rec.name.clone()) {
            return Err(FastxError::DuplicateContig { name: rec.name });
        }
        reference.push(&rec.name, rec.seq);
    }
    if reference.is_empty() {
        return Err(FastxError::NoRecords);
    }
    Ok(reference)
}

fn header_name(s: &str) -> String {
    s.split_whitespace().next().unwrap_or("").to_string()
}

fn append_seq(seq: &mut Seq, line: &str, lineno: usize) -> Result<(), FastxError> {
    for &b in line.as_bytes() {
        match align_core::Base::from_ascii(b) {
            Ok(base) => seq.push(base),
            Err(e) => {
                return Err(match e {
                    AlignError::BadBase(_) => FastxError::Parse {
                        line: lineno,
                        reason: format!("unsupported base {:?} (only ACGT)", b as char),
                    },
                    other => FastxError::BadBase(other),
                })
            }
        }
    }
    Ok(())
}

/// Write records as FASTA (qualities, if any, are dropped).
pub fn write_fasta<W: Write>(mut w: W, records: &[FastxRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, ">{}", r.name)?;
        let ascii = r.seq.to_ascii();
        for chunk in ascii.chunks(80) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Write records as FASTQ. Records without qualities get a constant
/// high quality.
pub fn write_fastq<W: Write>(mut w: W, records: &[FastxRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "@{}", r.name)?;
        w.write_all(&r.seq.to_ascii())?;
        writeln!(w)?;
        writeln!(w, "+")?;
        match &r.qual {
            Some(q) => {
                let encoded: Vec<u8> = q.iter().map(|&x| x.min(60) + 33).collect();
                w.write_all(&encoded)?;
            }
            None => {
                let encoded = vec![b'I'; r.seq.len()];
                w.write_all(&encoded)?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Convert simulated reads into FASTQ records (name encodes provenance
/// so downstream evaluation can recover the truth).
pub fn reads_to_records(reads: &[crate::SimRead]) -> Vec<FastxRecord> {
    reads
        .iter()
        .map(|r| {
            let name = format!(
                "read{}_pos{}_{}_{}",
                r.id,
                r.true_start,
                r.true_end,
                if r.reverse { "rev" } else { "fwd" }
            );
            FastxRecord::fastq(&name, r.seq.clone(), r.qual.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn fasta_roundtrip_with_wrapping() {
        let records = vec![
            FastxRecord::fasta("chr1", seq(&"ACGT".repeat(50))),
            FastxRecord::fasta("chr2", seq("GGCC")),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        // 200 bases wrap into 3 lines.
        assert!(String::from_utf8_lossy(&buf).lines().count() >= 5);
        let parsed = read_fastx(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn fastq_roundtrip() {
        let records = vec![FastxRecord::fastq(
            "r1",
            seq("ACGTAC"),
            vec![10, 20, 30, 40, 50, 60],
        )];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let parsed = read_fastx(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn header_names_stop_at_whitespace() {
        let input = b">read1 description here\nACGT\n";
        let parsed = read_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(parsed[0].name, "read1");
    }

    #[test]
    fn mixed_fasta_fastq_detected_per_record() {
        let input = b">ref\nACGT\n@read\nGGCC\n+\nIIII\n";
        let parsed = read_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].qual.is_none());
        assert!(parsed[1].qual.is_some());
    }

    #[test]
    fn n_bases_rejected_with_line_number() {
        let input = b">ref\nACGT\nACNT\n";
        let err = read_fastx(Cursor::new(&input[..])).unwrap_err();
        match err {
            FastxError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains('N'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_fastq_rejected() {
        let input = b"@read\nACGT\n+\n";
        assert!(read_fastx(Cursor::new(&input[..])).is_err());
        let input = b"@read\nACGT\nIIII\n";
        assert!(read_fastx(Cursor::new(&input[..])).is_err());
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let input = b"@read\nACGT\n+\nII\n";
        match read_fastx(Cursor::new(&input[..])).unwrap_err() {
            FastxError::Parse { reason, .. } => assert!(reason.contains("quality length")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sim_reads_export() {
        use crate::genome::{Genome, GenomeConfig};
        let g = Genome::generate(&GenomeConfig::plain(10_000, 1));
        let reads = crate::simulate_reads(
            &g,
            &crate::ReadConfig {
                count: 3,
                length: 500,
                errors: crate::ErrorModel::pacbio_clr(0.1),
                rc_fraction: 0.5,
                seed: 2,
            },
        );
        let records = reads_to_records(&reads);
        assert_eq!(records.len(), 3);
        assert!(records[0].name.starts_with("read0_pos"));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let parsed = read_fastx(Cursor::new(buf)).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].seq, reads[0].seq);
    }

    #[test]
    fn single_record_loader_accepts_exactly_one() {
        let rec = read_single_fastx(Cursor::new(b">chr1\nACGT\nGGCC\n".as_slice())).unwrap();
        assert_eq!(rec.name, "chr1");
        assert_eq!(rec.seq.len(), 8);

        match read_single_fastx(Cursor::new(b"".as_slice())).unwrap_err() {
            FastxError::NoRecords => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_record_input_is_rejected_naming_the_extras() {
        let input = b">chr1\nACGT\n>chr2\nGGCC\n>chr3\nTTTT\n";
        let err = read_single_fastx(Cursor::new(&input[..])).unwrap_err();
        match &err {
            FastxError::MultiRecord { first, extra } => {
                assert_eq!(first, "chr1");
                assert_eq!(extra, &["chr2".to_string(), "chr3".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("chr2") && msg.contains("chr3"), "{msg}");
        assert!(msg.contains("exactly one"), "{msg}");
    }

    #[test]
    fn multi_contig_reference_loads_in_file_order() {
        let input = b">chr1 primary\nACGTACGT\nACGT\n>chr2\nGGCC\n>chr3\nTT\n";
        let r = read_multi_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(r.num_contigs(), 3);
        assert_eq!(&*r.contig(0).name, "chr1");
        assert_eq!(r.contig(0).len(), 12);
        assert_eq!(&*r.contig(1).name, "chr2");
        assert_eq!(r.offset(1), 12);
        assert_eq!(&*r.contig(2).name, "chr3");
        assert_eq!(r.total_len(), 18);
    }

    #[test]
    fn multi_contig_loader_rejects_duplicates_and_empty_input() {
        let dup = b">chr1\nACGT\n>chr1\nGGCC\n";
        match read_multi_fastx(Cursor::new(&dup[..])).unwrap_err() {
            FastxError::DuplicateContig { name } => assert_eq!(name, "chr1"),
            other => panic!("unexpected {other:?}"),
        }
        match read_multi_fastx(Cursor::new(b"".as_slice())).unwrap_err() {
            FastxError::NoRecords => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multi_contig_loader_drops_fastq_qualities() {
        let input = b">chr1\nACGT\n@chr2\nGGCC\n+\nIIII\n";
        let r = read_multi_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(r.num_contigs(), 2);
        assert_eq!(r.contig(1).len(), 4);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_fastx(Cursor::new(b"".as_slice())).unwrap().is_empty());
        assert!(read_fastx(Cursor::new(b"\n\n".as_slice()))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn crlf_input_parses_like_lf() {
        let lf = b">ref desc\nACGT\nGGCC\n@r1\nACGTAC\n+\nIIIIII\n";
        let crlf = b">ref desc\r\nACGT\r\nGGCC\r\n@r1\r\nACGTAC\r\n+\r\nIIIIII\r\n";
        let a = read_fastx(Cursor::new(&lf[..])).unwrap();
        let b = read_fastx(Cursor::new(&crlf[..])).unwrap();
        assert_eq!(a, b);
        assert_eq!(b[0].name, "ref");
        assert_eq!(b[0].seq.len(), 8);
        assert_eq!(b[1].qual.as_ref().unwrap().len(), 6);
    }

    #[test]
    fn trailing_spaces_and_tabs_are_tolerated() {
        // The pre-streaming parser trim_end()ed every line; files with
        // stray trailing whitespace must keep parsing.
        let input = b">ref \nACGT  \n@r1\t\nGGCC \n+ \nIIII  \n";
        let parsed = read_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].seq.len(), 4);
        assert_eq!(parsed[1].qual.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn crlf_error_lines_are_still_accurate() {
        let input = b">ref\r\nACGT\r\nACNT\r\n";
        match read_fastx(Cursor::new(&input[..])).unwrap_err() {
            FastxError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn streaming_reader_yields_one_record_at_a_time() {
        let input = b">a\nACGT\n@b\nGGCC\n+\nIIII\n>c\nTTTT\n";
        let mut it = FastxReader::new(Cursor::new(&input[..]));
        assert_eq!(it.next().unwrap().unwrap().name, "a");
        assert_eq!(it.next().unwrap().unwrap().name, "b");
        assert_eq!(it.next().unwrap().unwrap().name, "c");
        assert!(it.next().is_none());
        assert!(it.next().is_none(), "fused after end");
    }

    #[test]
    fn streaming_reader_is_lazy_on_an_endless_source() {
        /// An infinite FASTQ stream: proof the reader never slurps the
        /// input (collecting it would hang forever).
        struct Endless {
            chunk: &'static [u8],
            at: usize,
        }
        impl std::io::Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(self.chunk.len() - self.at);
                buf[..n].copy_from_slice(&self.chunk[self.at..self.at + n]);
                self.at = (self.at + n) % self.chunk.len();
                Ok(n)
            }
        }
        let src = Endless {
            chunk: b"@r\nACGTACGT\n+\nIIIIIIII\n",
            at: 0,
        };
        let reader = FastxReader::new(std::io::BufReader::new(src));
        let first_five: Vec<FastxRecord> = reader.take(5).map(|r| r.unwrap()).collect();
        assert_eq!(first_five.len(), 5);
        for r in &first_five {
            assert_eq!(r.name, "r");
            assert_eq!(r.seq.len(), 8);
        }
    }

    #[test]
    fn truncated_records_error_through_the_iterator() {
        // FASTQ cut off after the '+' separator.
        let mut it = FastxReader::new(Cursor::new(b"@r\nACGT\n+\n".as_slice()));
        let err = it.next().unwrap().unwrap_err();
        match err {
            FastxError::Parse { line, reason } => {
                assert_eq!(line, 4);
                assert!(reason.contains("end of file"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(it.next().is_none(), "iterator is poisoned after an error");

        // FASTQ cut off right after the header.
        let mut it = FastxReader::new(Cursor::new(b"@r\n".as_slice()));
        assert!(it.next().unwrap().is_err());

        // A FASTA record truncated mid-sequence still yields what it
        // has (headers delimit FASTA records, so EOF ends the record).
        let mut it = FastxReader::new(Cursor::new(b">a\nACGT".as_slice()));
        assert_eq!(it.next().unwrap().unwrap().seq.len(), 4);
        assert!(it.next().is_none());
    }

    #[test]
    fn read_fastx_matches_streaming_collect() {
        let input = b">ref\nACGT\nACGT\n@read\nGGCC\n+\nIIII\n";
        let collected = read_fastx(Cursor::new(&input[..])).unwrap();
        let streamed: Vec<FastxRecord> = FastxReader::new(Cursor::new(&input[..]))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(collected, streamed);
    }
}
