//! Minimal FASTA/FASTQ reading and writing.
//!
//! The real pipeline the paper builds on exchanges reads and references
//! as FASTA/FASTQ files (PBSIM2 writes FASTQ, minimap2 reads both). The
//! CLI tools in this suite do the same, so simulated workloads can be
//! round-tripped to disk and inspected with standard tools.
//!
//! Scope: DNA records over `ACGT` (what the aligners accept); `N` and
//! other IUPAC codes are rejected with a clear error rather than being
//! silently squashed. Line wrapping is accepted on input and written at
//! 80 columns on output.

use std::io::{self, BufRead, Write};

use align_core::{AlignError, Seq};

/// One FASTA/FASTQ record.
#[derive(Debug, Clone, PartialEq)]
pub struct FastxRecord {
    /// Record name (text after `>` / `@`, up to the first whitespace).
    pub name: String,
    /// The sequence.
    pub seq: Seq,
    /// Phred+33 qualities for FASTQ records, `None` for FASTA.
    pub qual: Option<Vec<u8>>,
}

impl FastxRecord {
    /// A FASTA record.
    pub fn fasta(name: &str, seq: Seq) -> FastxRecord {
        FastxRecord {
            name: name.to_string(),
            seq,
            qual: None,
        }
    }

    /// A FASTQ record; `qual` holds raw Phred scores (not +33 encoded).
    pub fn fastq(name: &str, seq: Seq, qual: Vec<u8>) -> FastxRecord {
        assert_eq!(seq.len(), qual.len(), "quality length mismatch");
        FastxRecord {
            name: name.to_string(),
            seq,
            qual: Some(qual),
        }
    }
}

/// Errors from FASTX parsing.
#[derive(Debug)]
pub enum FastxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed record structure.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A sequence character the aligners cannot represent.
    BadBase(AlignError),
}

impl From<io::Error> for FastxError {
    fn from(e: io::Error) -> FastxError {
        FastxError::Io(e)
    }
}

impl core::fmt::Display for FastxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FastxError::Io(e) => write!(f, "I/O error: {e}"),
            FastxError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
            FastxError::BadBase(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FastxError {}

/// Parse FASTA or FASTQ (auto-detected from the first byte).
pub fn read_fastx<R: BufRead>(reader: R) -> Result<Vec<FastxRecord>, FastxError> {
    let mut lines = reader.lines().enumerate();
    let mut records = Vec::new();
    let mut pending: Option<(usize, String)> = None;

    loop {
        let (lineno, line) = match pending.take() {
            Some(x) => x,
            None => match lines.next() {
                Some((i, l)) => (i, l?),
                None => break,
            },
        };
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        match line.as_bytes()[0] {
            b'>' => {
                let name = header_name(&line[1..]);
                let mut seq = Seq::new();
                // Collect sequence lines until the next header.
                for (i, l) in lines.by_ref() {
                    let l = l?;
                    let t = l.trim_end();
                    if t.starts_with('>') || t.starts_with('@') {
                        pending = Some((i, l));
                        break;
                    }
                    append_seq(&mut seq, t, i + 1)?;
                }
                records.push(FastxRecord {
                    name,
                    seq,
                    qual: None,
                });
            }
            b'@' => {
                let name = header_name(&line[1..]);
                let (si, seq_line) = next_line(&mut lines, lineno)?;
                let mut seq = Seq::new();
                append_seq(&mut seq, seq_line.trim_end(), si + 1)?;
                let (pi, plus) = next_line(&mut lines, si)?;
                if !plus.trim_end().starts_with('+') {
                    return Err(FastxError::Parse {
                        line: pi + 1,
                        reason: "expected '+' separator".to_string(),
                    });
                }
                let (qi, qual_line) = next_line(&mut lines, pi)?;
                let qual_line = qual_line.trim_end();
                if qual_line.len() != seq.len() {
                    return Err(FastxError::Parse {
                        line: qi + 1,
                        reason: format!(
                            "quality length {} != sequence length {}",
                            qual_line.len(),
                            seq.len()
                        ),
                    });
                }
                let qual = qual_line.bytes().map(|b| b.saturating_sub(33)).collect();
                records.push(FastxRecord {
                    name,
                    seq,
                    qual: Some(qual),
                });
            }
            _ => {
                return Err(FastxError::Parse {
                    line: lineno + 1,
                    reason: format!("unexpected record start {:?}", &line[..line.len().min(8)]),
                })
            }
        }
    }
    Ok(records)
}

fn header_name(s: &str) -> String {
    s.split_whitespace().next().unwrap_or("").to_string()
}

fn next_line(
    lines: &mut impl Iterator<Item = (usize, io::Result<String>)>,
    after: usize,
) -> Result<(usize, String), FastxError> {
    match lines.next() {
        Some((i, l)) => Ok((i, l?)),
        None => Err(FastxError::Parse {
            line: after + 2,
            reason: "unexpected end of file".to_string(),
        }),
    }
}

fn append_seq(seq: &mut Seq, line: &str, lineno: usize) -> Result<(), FastxError> {
    for &b in line.as_bytes() {
        match align_core::Base::from_ascii(b) {
            Ok(base) => seq.push(base),
            Err(e) => {
                return Err(match e {
                    AlignError::BadBase(_) => FastxError::Parse {
                        line: lineno,
                        reason: format!("unsupported base {:?} (only ACGT)", b as char),
                    },
                    other => FastxError::BadBase(other),
                })
            }
        }
    }
    Ok(())
}

/// Write records as FASTA (qualities, if any, are dropped).
pub fn write_fasta<W: Write>(mut w: W, records: &[FastxRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, ">{}", r.name)?;
        let ascii = r.seq.to_ascii();
        for chunk in ascii.chunks(80) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

/// Write records as FASTQ. Records without qualities get a constant
/// high quality.
pub fn write_fastq<W: Write>(mut w: W, records: &[FastxRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "@{}", r.name)?;
        w.write_all(&r.seq.to_ascii())?;
        writeln!(w)?;
        writeln!(w, "+")?;
        match &r.qual {
            Some(q) => {
                let encoded: Vec<u8> = q.iter().map(|&x| x.min(60) + 33).collect();
                w.write_all(&encoded)?;
            }
            None => {
                let encoded = vec![b'I'; r.seq.len()];
                w.write_all(&encoded)?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Convert simulated reads into FASTQ records (name encodes provenance
/// so downstream evaluation can recover the truth).
pub fn reads_to_records(reads: &[crate::SimRead]) -> Vec<FastxRecord> {
    reads
        .iter()
        .map(|r| {
            let name = format!(
                "read{}_pos{}_{}_{}",
                r.id,
                r.true_start,
                r.true_end,
                if r.reverse { "rev" } else { "fwd" }
            );
            FastxRecord::fastq(&name, r.seq.clone(), r.qual.clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn fasta_roundtrip_with_wrapping() {
        let records = vec![
            FastxRecord::fasta("chr1", seq(&"ACGT".repeat(50))),
            FastxRecord::fasta("chr2", seq("GGCC")),
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records).unwrap();
        // 200 bases wrap into 3 lines.
        assert!(String::from_utf8_lossy(&buf).lines().count() >= 5);
        let parsed = read_fastx(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn fastq_roundtrip() {
        let records = vec![FastxRecord::fastq(
            "r1",
            seq("ACGTAC"),
            vec![10, 20, 30, 40, 50, 60],
        )];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let parsed = read_fastx(Cursor::new(buf)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn header_names_stop_at_whitespace() {
        let input = b">read1 description here\nACGT\n";
        let parsed = read_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(parsed[0].name, "read1");
    }

    #[test]
    fn mixed_fasta_fastq_detected_per_record() {
        let input = b">ref\nACGT\n@read\nGGCC\n+\nIIII\n";
        let parsed = read_fastx(Cursor::new(&input[..])).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(parsed[0].qual.is_none());
        assert!(parsed[1].qual.is_some());
    }

    #[test]
    fn n_bases_rejected_with_line_number() {
        let input = b">ref\nACGT\nACNT\n";
        let err = read_fastx(Cursor::new(&input[..])).unwrap_err();
        match err {
            FastxError::Parse { line, reason } => {
                assert_eq!(line, 3);
                assert!(reason.contains('N'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_fastq_rejected() {
        let input = b"@read\nACGT\n+\n";
        assert!(read_fastx(Cursor::new(&input[..])).is_err());
        let input = b"@read\nACGT\nIIII\n";
        assert!(read_fastx(Cursor::new(&input[..])).is_err());
    }

    #[test]
    fn quality_length_mismatch_rejected() {
        let input = b"@read\nACGT\n+\nII\n";
        match read_fastx(Cursor::new(&input[..])).unwrap_err() {
            FastxError::Parse { reason, .. } => assert!(reason.contains("quality length")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sim_reads_export() {
        use crate::genome::{Genome, GenomeConfig};
        let g = Genome::generate(&GenomeConfig::plain(10_000, 1));
        let reads = crate::simulate_reads(
            &g,
            &crate::ReadConfig {
                count: 3,
                length: 500,
                errors: crate::ErrorModel::pacbio_clr(0.1),
                rc_fraction: 0.5,
                seed: 2,
            },
        );
        let records = reads_to_records(&reads);
        assert_eq!(records.len(), 3);
        assert!(records[0].name.starts_with("read0_pos"));
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let parsed = read_fastx(Cursor::new(buf)).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].seq, reads[0].seq);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(read_fastx(Cursor::new(b"".as_slice())).unwrap().is_empty());
        assert!(read_fastx(Cursor::new(b"\n\n".as_slice()))
            .unwrap()
            .is_empty());
    }
}
