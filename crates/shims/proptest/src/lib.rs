//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset of proptest the suite's tests use: the [`Strategy`] trait
//! with ranges, tuples, [`collection::vec`] and [`Strategy::prop_map`];
//! `any::<T>()`; and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   in the panic message (via the assert macros) but is not minimized;
//! * **fixed deterministic seeding** — each test derives its RNG seed
//!   from the test name, so failures reproduce exactly; set
//!   `PROPTEST_CASES` to change the case count without recompiling.

use rand::prelude::*;

pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Just, Strategy};

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Case count, honouring the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-test RNG (seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::StdRng,
    }

    impl TestRng {
        /// RNG for the named test: same name, same stream, every run.
        pub fn for_test(name: &str) -> TestRng {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            use rand::SeedableRng;
            TestRng {
                inner: rand::StdRng::seed_from_u64(h),
            }
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Full-range strategy for a type, proptest's `any::<T>()`.
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The [`any`] strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    /// The [`vec`] strategy.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Assert inside a proptest case (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
///
/// Expands to an early `return` from the case closure, so the case
/// counts as passed (real proptest retries; for the suite's generators
/// the discard rate is low enough that this doesn't matter).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `config.cases` random
/// instantiations of its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.resolved_cases() {
                    $( let $pat = $crate::Strategy::generate(&($strat), &mut rng); )+
                    (move || $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (0u8..4).generate(&mut rng);
            assert!(v < 4);
            let (a, b) = ((1usize..=5), (0.25f64..0.75)).generate(&mut rng);
            assert!((1..=5).contains(&a));
            assert!((0.25..0.75).contains(&b));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let mut rng = crate::test_runner::TestRng::for_test("compose");
        let strat = prop::collection::vec(0u8..4, 3..=7).prop_map(|v| v.len());
        for _ in 0..200 {
            let n = strat.generate(&mut rng);
            assert!((3..=7).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_runs_cases(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 10);
            prop_assume!(x > 0); // exercises the early-return path
            prop_assert_eq!(x, x, "x must equal itself, got {}", x);
        }

        #[test]
        fn macro_with_tuple_pattern((a, b) in (0u8..4, 0u16..9)) {
            prop_assert!(a < 4 && b < 9);
        }
    }
}
