//! Offline stand-in for the `rand_chacha` crate: a genuine ChaCha8
//! stream used as a deterministic RNG.
//!
//! The block function is the real ChaCha quarter-round construction
//! (Bernstein 2008) at 8 rounds; only the seeding convention differs
//! from upstream `rand_chacha` (we expand a 64-bit seed with SplitMix64
//! instead of taking a 256-bit seed array), so streams are deterministic
//! within this workspace but not bit-compatible with crates.io builds.

use rand::{RngCore, SeedableRng};

/// Deterministic ChaCha8-based generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input state.
    state: [u32; 16],
    /// Buffered keystream of the current block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal mixing.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (b, (wv, sv)) in self.block.iter_mut().zip(w.iter().zip(&self.state)) {
            *b = wv.wrapping_add(*sv);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        // Expand the seed into the 256-bit key with SplitMix64 (the same
        // convention rand 0.8 uses for seed_from_u64), reusing the rand
        // shim's implementation so the two streams cannot drift.
        let mut sm = rand::StdRng::seed_from_u64(seed);
        let mut next = || sm.next_u64();
        let mut state = [0u32; 16];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter (12, 13) starts at 0; nonce (14, 15) stays 0.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha_block_matches_rfc8439_structure() {
        // Sanity of the quarter round against the RFC 7539 §2.1.1 test
        // vector.
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn blocks_advance() {
        // More than 16 words forces a counter increment; the stream must
        // not repeat the first block.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
