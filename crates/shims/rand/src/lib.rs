//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! ships a minimal, API-compatible subset of `rand` 0.8 covering exactly
//! what the suite uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and [`StdRng`].
//! All generators here are deterministic; none read OS entropy.
//!
//! The numeric streams do **not** match upstream `rand` bit-for-bit
//! (nothing in the suite depends on that — seeds only pin determinism
//! within this codebase), but the statistical behaviour is sound:
//! `StdRng` is SplitMix64, and `rand_chacha`'s `ChaCha8Rng` (a sibling
//! shim) is a faithful ChaCha8 implementation.

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, `rand`-style.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly; supported output types are the
    /// integer primitives and `f64`/`f32` in `[0, 1)`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `[0, 1)` double from a random 64-bit word (53-bit mantissa).
#[inline]
fn f64_from_bits(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] from the full uniform distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24-bit mantissa construction: every value k/2^24 is exactly
        // representable, so the result stays strictly below 1.0 (a
        // 53-bit f64 cast to f32 can round up to exactly 1.0).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire-style
/// widening multiply is overkill here; rejection keeps it obviously
/// correct).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start);
        // start + frac*(end-start) can round up to exactly `end`; the
        // contract is half-open.
        v.min(self.end.next_down())
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let frac = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        let v = self.start + frac * (self.end - self.start);
        v.min(self.end.next_down())
    }
}

/// The default generator: SplitMix64 — tiny state, passes BigCrush for
/// the purposes this suite has (workload synthesis, not cryptography).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..4u8);
            assert!(v < 4);
            let w = rng.gen_range(1..4u8);
            assert!((1..4).contains(&w));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((8_500..11_500).contains(&hits), "p=0.1 gave {hits}/100000");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
