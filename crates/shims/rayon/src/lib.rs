//! Offline stand-in for `rayon`'s parallel slice iterators.
//!
//! The build environment has no crates.io access, so this shim provides
//! the subset the suite uses — `par_iter().map(..).collect()` and
//! `par_iter().map_init(..).collect()` — on real OS threads via
//! `std::thread::scope`. Work is distributed by chunked atomic index
//! claiming, which gives the same key property as rayon's thread pools:
//! with `map_init`, each worker thread creates its per-worker state
//! **once** and reuses it for every item that worker claims. That is
//! the contract the batch aligners rely on for workspace reuse.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Items claimed per atomic fetch: large enough to amortize contention,
/// small enough to balance skewed workloads (alignment tasks vary in
/// length).
const CHUNK: usize = 8;

/// Global worker-count override installed by [`ThreadPoolBuilder::
/// build_global`]; 0 means "use all available cores".
static CONFIGURED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used for parallel iteration.
pub fn current_num_threads() -> usize {
    effective_threads(CONFIGURED_THREADS.load(Ordering::Relaxed))
}

/// Resolve a configured thread count: 0 falls back to the machine's
/// available parallelism.
fn effective_threads(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error from [`ThreadPoolBuilder::build_global`]. The shim's global
/// configuration can never actually fail; the type exists so callers
/// written against real rayon compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("could not configure the global thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Offline stand-in for rayon's `ThreadPoolBuilder`, supporting the
/// one configuration the suite needs: sizing the global pool.
///
/// Divergence from real rayon: `build_global` here simply (re)sets the
/// worker count used by subsequent parallel iterations — calling it
/// twice reconfigures instead of erroring, because the shim spawns
/// scoped workers per batch rather than keeping a resident pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (all cores).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Use `n` worker threads; 0 means all available cores.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        CONFIGURED_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// `.par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// The per-item reference type.
    type Item: Sync + 'a;

    /// A parallel iterator borrowing the items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Map with per-worker mutable state: `init` runs once per worker
    /// thread, and that worker passes its state to `f` for every item
    /// it processes (rayon's `map_init`).
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'a, T, INIT, F>
    where
        S: Send,
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// The `map` adapter.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Execute and collect results in item order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        let f = self.f;
        C::from_vec(run_parallel(self.items, || (), move |_, item| f(item)))
    }
}

/// The `map_init` adapter.
pub struct ParMapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
}

impl<'a, T, S, R, INIT, F> ParMapInit<'a, T, INIT, F>
where
    T: Sync,
    S: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    /// Execute and collect results in item order.
    pub fn collect<C: FromParallel<R>>(self) -> C {
        C::from_vec(run_parallel(self.items, self.init, self.f))
    }
}

/// Containers a parallel map can collect into.
pub trait FromParallel<R> {
    /// Build from the in-order result vector.
    fn from_vec(v: Vec<R>) -> Self;
}

impl<R> FromParallel<R> for Vec<R> {
    fn from_vec(v: Vec<R>) -> Vec<R> {
        v
    }
}

/// Raw base pointer into the results vector, captured once on the main
/// thread so workers never materialize a `&mut Vec` (overlapping unique
/// references across threads would be undefined behavior even with
/// disjoint element writes).
struct ResultsPtr<R> {
    base: *mut Option<R>,
    len: usize,
}
unsafe impl<R: Send> Sync for ResultsPtr<R> {}

impl<R> ResultsPtr<R> {
    /// Write slot `idx`.
    ///
    /// # Safety
    /// Each index must be written by at most one thread, the backing
    /// vector must outlive all writers, and the owner must not touch
    /// the vector until the writers have joined.
    unsafe fn write(&self, idx: usize, val: R) {
        assert!(idx < self.len);
        self.base.add(idx).write(Some(val));
    }
}

fn run_parallel<'a, T, S, R, INIT, F>(items: &'a [T], init: INIT, f: F) -> Vec<R>
where
    T: Sync,
    S: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(n.div_ceil(CHUNK)).max(1);
    if workers == 1 {
        let mut state = init();
        return items.iter().map(|t| f(&mut state, t)).collect();
    }

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let results_ptr = ResultsPtr {
        base: results.as_mut_ptr(),
        len: results.len(),
    };
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (results_ptr, next, init, f) = (&results_ptr, &next, &init, &f);
        for _ in 0..workers {
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + CHUNK).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        let out = f(&mut state, item);
                        // SAFETY: each index is claimed by exactly one
                        // worker via the atomic counter, so writes are
                        // disjoint; `results` outlives the scope and is
                        // not touched until the scope joins.
                        unsafe {
                            results_ptr.write(start + i, out);
                        }
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("worker missed an index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..10_000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn map_init_reuses_state_per_worker() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let v: Vec<usize> = (0..50_000).collect();
        let out: Vec<usize> = v
            .par_iter()
            .map_init(
                || {
                    INITS.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |state, &x| {
                    *state += 1;
                    x + 1
                },
            )
            .collect();
        assert_eq!(out[17], 18);
        // init ran once per worker, not once per item.
        let inits = INITS.load(Ordering::Relaxed);
        assert!(inits <= current_num_threads(), "{inits} inits");
        assert!(inits >= 1);
    }

    #[test]
    fn effective_threads_resolves_zero_to_all_cores() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(1), 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn build_global_with_default_is_a_no_op() {
        // Asserting a *changed* global count here would race with the
        // other tests in this binary (they compare against
        // current_num_threads); the CLI integration tests exercise a
        // real override in their own process instead.
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn really_parallel_when_cores_allow() {
        // All workers must observe distinct states (no sharing).
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<(usize, usize)> = v
            .par_iter()
            .map_init(Vec::<usize>::new, |seen, &x| {
                seen.push(x);
                (x, seen.len())
            })
            .collect();
        // Per-worker counts are monotone within that worker's items, and
        // every item appears exactly once overall.
        let mut xs: Vec<usize> = out.iter().map(|p| p.0).collect();
        xs.sort_unstable();
        assert_eq!(xs, (0..1000).collect::<Vec<_>>());
    }
}
