//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the suite's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!` — backed by a simple but
//! honest harness: per benchmark it warms up for the configured time,
//! then runs the configured number of samples, each sized to the
//! measurement budget, and reports min/median/mean per-iteration times
//! on stdout.
//!
//! It is not statistically fancy (no outlier classification, no HTML
//! reports), but timings are real wall-clock medians and comparable
//! across runs on the same machine, which is all the bench trajectory
//! needs.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    /// Default sample count for groups that don't override it.
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_one(
            &id.into().name,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut f,
        );
    }

    /// Benchmark a closure over an explicit input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut |b| f(b, input),
        );
    }

    /// Close the group (printing is immediate; nothing buffered).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records the timed routine.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured elapsed time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    label: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // measuring the per-iteration cost to size the samples.
    let warm_start = Instant::now();
    let mut iter_estimate = Duration::ZERO;
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < warm_up || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        iter_estimate += b.elapsed;
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = iter_estimate
        .checked_div(warm_iters as u32)
        .unwrap_or_default();
    // Size each sample so all samples together fit the measurement
    // budget, at least one iteration per sample.
    let per_sample = measurement.checked_div(samples as u32).unwrap_or_default();
    let iters_per_sample = if per_iter.is_zero() {
        1_000
    } else {
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
    };

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "bench: {label:<50} min {:>12} median {:>12} mean {:>12} ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples,
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Build the benchmark entry function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Build `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench -- <filter>` arguments are accepted and
            // ignored (the shim always runs everything).
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs > 0, "benchmark closure never ran");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest2");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }
}
