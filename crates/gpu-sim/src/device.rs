//! Device descriptors: the hardware parameters of the simulated GPU.
//!
//! The paper evaluates on an NVIDIA RTX A6000. No GPU exists in this
//! reproduction environment, so the `gpu-sim` substrate executes kernel
//! code on CPU worker threads while *modeling* the GPU's resource
//! limits (shared-memory capacity, occupancy) and estimating execution
//! time from instrumented counters (see [`crate::timing`]). The
//! algorithmic claims the paper makes about the GPU (what fits in
//! on-chip memory, how much DRAM traffic each variant generates) are
//! exactly the quantities this model measures.

/// Static description of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDescriptor {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Warp instructions issued per SM per cycle (scheduler count).
    pub issue_width: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Shared memory available per SM, bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory a single block may allocate, bytes.
    pub shared_mem_per_block: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Average DRAM access latency in cycles.
    pub dram_latency_cycles: f64,
    /// Assumed memory-level parallelism for latency hiding (how many
    /// outstanding global accesses overlap per block).
    pub memory_level_parallelism: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Shared-memory accesses served per SM per cycle.
    pub shared_ports: usize,
}

impl DeviceDescriptor {
    /// NVIDIA RTX A6000 (GA102): 84 SMs, 128 cores/SM, 1.8 GHz boost,
    /// 768 GB/s GDDR6, 100 KB shared memory per SM.
    pub fn a6000() -> DeviceDescriptor {
        DeviceDescriptor {
            name: "RTX A6000 (simulated)".to_string(),
            sm_count: 84,
            warp_size: 32,
            issue_width: 4,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 16,
            shared_mem_per_sm: 100 * 1024,
            shared_mem_per_block: 99 * 1024,
            clock_ghz: 1.8,
            dram_bandwidth_gbps: 768.0,
            dram_latency_cycles: 400.0,
            memory_level_parallelism: 8.0,
            launch_overhead_us: 5.0,
            shared_ports: 32,
        }
    }

    /// A deliberately small device for tests (2 SMs, tiny shared mem).
    pub fn tiny() -> DeviceDescriptor {
        DeviceDescriptor {
            name: "tiny-test-gpu".to_string(),
            sm_count: 2,
            warp_size: 4,
            issue_width: 1,
            max_threads_per_sm: 64,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 4096,
            shared_mem_per_block: 2048,
            clock_ghz: 1.0,
            dram_bandwidth_gbps: 10.0,
            dram_latency_cycles: 100.0,
            memory_level_parallelism: 4.0,
            launch_overhead_us: 1.0,
            shared_ports: 4,
        }
    }

    /// Resident blocks per SM for a kernel using `block_threads` threads
    /// and `shared_bytes` of shared memory per block (its *occupancy*).
    pub fn blocks_per_sm(&self, block_threads: usize, shared_bytes: usize) -> usize {
        let by_threads = self.max_threads_per_sm / block_threads.max(1);
        let by_shared = self
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(self.max_blocks_per_sm);
        by_threads.min(by_shared).min(self.max_blocks_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_parameters_sane() {
        let d = DeviceDescriptor::a6000();
        assert_eq!(d.sm_count, 84);
        assert!(d.dram_bandwidth_gbps > 500.0);
        assert!(d.shared_mem_per_block <= d.shared_mem_per_sm);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let d = DeviceDescriptor::a6000();
        assert_eq!(d.blocks_per_sm(1536, 0), 1);
        assert_eq!(d.blocks_per_sm(768, 0), 2);
        assert_eq!(d.blocks_per_sm(64, 0), 16); // capped by max_blocks
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let d = DeviceDescriptor::a6000();
        // 50 KB blocks: two fit in 100 KB.
        assert_eq!(d.blocks_per_sm(128, 50 * 1024), 2);
        // 99 KB blocks: only one.
        assert_eq!(d.blocks_per_sm(128, 99 * 1024), 1);
    }

    #[test]
    fn zero_thread_block_does_not_divide_by_zero() {
        let d = DeviceDescriptor::tiny();
        assert!(d.blocks_per_sm(0, 0) >= 1);
    }
}
