//! Kernel launch: distributing blocks over CPU workers and assembling
//! the launch report.

use std::sync::Mutex;
use std::thread;

use crate::ctx::{BlockCounters, BlockCtx};
use crate::device::DeviceDescriptor;
use crate::error::SimError;
use crate::timing::{estimate, TimingEstimate};

/// A GPU kernel: stateless block program plus its launch geometry
/// requirements.
pub trait Kernel: Sync {
    /// Immutable input shared by all blocks.
    type Args: Sync + ?Sized;
    /// Per-block output.
    type Output: Send;
    /// Reusable host-side staging state. Each simulation worker creates
    /// one workspace and reuses it across every block it executes, so
    /// kernels can keep scratch buffers (reversed-text staging, op
    /// buffers) allocation-free in steady state. Kernels without scratch
    /// use `()`.
    type Workspace: Default + Send;

    /// Execute one block. `ws` is this worker's reusable workspace; its
    /// contents at entry are whatever the previous block left behind, so
    /// kernels must clear what they read.
    fn block(
        &self,
        ctx: &mut BlockCtx,
        args: &Self::Args,
        ws: &mut Self::Workspace,
    ) -> Result<Self::Output, SimError>;
}

/// Result of a kernel launch.
#[derive(Debug)]
pub struct LaunchReport<O> {
    /// Per-block outputs, in block order.
    pub outputs: Vec<O>,
    /// Aggregated counters over all blocks.
    pub totals: BlockCounters,
    /// Modeled execution time on the simulated device.
    pub timing: TimingEstimate,
    /// Wall-clock time the simulation itself took (for reference only;
    /// this is host time, not device time).
    pub host_ms: f64,
}

/// The simulated device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Hardware description used for capacity checks and timing.
    pub desc: DeviceDescriptor,
    /// Number of host worker threads used to simulate blocks.
    pub host_workers: usize,
}

impl Device {
    /// An RTX A6000-like device using all host cores.
    pub fn a6000() -> Device {
        Device::new(DeviceDescriptor::a6000())
    }

    /// Wrap a descriptor, using all available host cores.
    pub fn new(desc: DeviceDescriptor) -> Device {
        let host_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Device { desc, host_workers }
    }

    /// Launch `grid_dim` blocks of `block_dim` threads, each allowed
    /// `shared_bytes` of shared memory.
    ///
    /// Blocks execute on a host thread pool in any order (like real
    /// blocks); outputs are returned in block order and counters are
    /// deterministic regardless of scheduling.
    pub fn launch<K: Kernel>(
        &self,
        grid_dim: usize,
        block_dim: usize,
        shared_bytes: usize,
        kernel: &K,
        args: &K::Args,
    ) -> Result<LaunchReport<K::Output>, SimError> {
        if block_dim == 0 {
            return Err(SimError::InvalidLaunch {
                reason: "block_dim must be positive".into(),
            });
        }
        if shared_bytes > self.desc.shared_mem_per_block {
            return Err(SimError::InvalidLaunch {
                reason: format!(
                    "requested {shared_bytes} B of shared memory per block, device allows {}",
                    self.desc.shared_mem_per_block
                ),
            });
        }
        let start = std::time::Instant::now();
        let n_workers = self.host_workers.max(1).min(grid_dim.max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        type BlockSlot<O> = Option<(BlockCounters, O)>;
        let results: Mutex<Vec<BlockSlot<K::Output>>> =
            Mutex::new((0..grid_dim).map(|_| None).collect());
        let failure: Mutex<Option<SimError>> = Mutex::new(None);

        thread::scope(|s| {
            for _ in 0..n_workers {
                s.spawn(|| {
                    let mut ws = K::Workspace::default();
                    loop {
                        let b = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if b >= grid_dim || failure.lock().unwrap().is_some() {
                            break;
                        }
                        let mut ctx = BlockCtx::new(
                            b,
                            grid_dim,
                            block_dim,
                            self.desc.warp_size,
                            shared_bytes,
                        );
                        match kernel.block(&mut ctx, args, &mut ws) {
                            Ok(out) => {
                                results.lock().unwrap()[b] = Some((ctx.into_counters(), out));
                            }
                            Err(e) => {
                                let mut f = failure.lock().unwrap();
                                if f.is_none() {
                                    *f = Some(e);
                                }
                                break;
                            }
                        }
                    }
                });
            }
        });

        if let Some(e) = failure.into_inner().unwrap() {
            return Err(e);
        }
        let mut totals = BlockCounters::default();
        let mut per_block = Vec::with_capacity(grid_dim);
        let mut outputs = Vec::with_capacity(grid_dim);
        for slot in results.into_inner().unwrap() {
            let (c, o) = slot.expect("every block completed");
            totals.merge(&c);
            per_block.push(c);
            outputs.push(o);
        }
        let timing = estimate(&self.desc, &per_block, block_dim, shared_bytes);
        Ok(LaunchReport {
            outputs,
            totals,
            timing,
            host_ms: start.elapsed().as_secs_f64() * 1e3,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy kernel: block-wide tree reduction of `block_dim` values
    /// staged through shared memory.
    struct ReduceKernel;

    impl Kernel for ReduceKernel {
        type Args = Vec<u64>;
        type Output = u64;
        type Workspace = ();

        fn block(
            &self,
            ctx: &mut BlockCtx,
            args: &Vec<u64>,
            _ws: &mut (),
        ) -> Result<u64, SimError> {
            let n = ctx.block_dim;
            let mut sh = ctx.shared_alloc(n)?;
            let base = ctx.block_idx * n;
            ctx.charge_global_stream((n * 8) as u64);
            ctx.phase(0..n, |tid, c| {
                let v = args.get(base + tid).copied().unwrap_or(0);
                c.sh_store(&mut sh, tid, v);
            });
            let mut stride = n / 2;
            while stride > 0 {
                ctx.phase(0..stride, |tid, c| {
                    let a = c.sh_load(&sh, tid);
                    let b = c.sh_load(&sh, tid + stride);
                    c.sh_store(&mut sh, tid, a + b);
                });
                stride /= 2;
            }
            Ok(ctx.sh_load(&sh, 0))
        }
    }

    #[test]
    fn reduction_kernel_is_correct_and_counted() {
        let dev = Device::new(DeviceDescriptor::tiny());
        let data: Vec<u64> = (0..64).collect();
        let report = dev.launch(4, 16, 2048, &ReduceKernel, &data).unwrap();
        // Block b sums 16 consecutive integers.
        let expect: Vec<u64> = (0..4)
            .map(|b| (16 * b..16 * (b + 1)).sum::<u64>())
            .collect();
        assert_eq!(report.outputs, expect);
        assert!(report.totals.shared_accesses() > 0);
        assert!(report.totals.global_bytes >= 4 * 16 * 8);
        assert!(report.timing.total_ms > 0.0);
    }

    #[test]
    fn launch_is_deterministic_across_runs() {
        let dev = Device::new(DeviceDescriptor::tiny());
        let data: Vec<u64> = (0..256).map(|i| i * 7).collect();
        let a = dev.launch(16, 16, 2048, &ReduceKernel, &data).unwrap();
        let b = dev.launch(16, 16, 2048, &ReduceKernel, &data).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.timing.total_ms, b.timing.total_ms);
    }

    #[test]
    fn shared_overflow_fails_launch() {
        struct Hog;
        impl Kernel for Hog {
            type Args = ();
            type Output = ();
            type Workspace = ();
            fn block(&self, ctx: &mut BlockCtx, _: &(), _ws: &mut ()) -> Result<(), SimError> {
                ctx.shared_alloc(10_000)?; // 80 KB > tiny's 2 KB
                Ok(())
            }
        }
        let dev = Device::new(DeviceDescriptor::tiny());
        let err = dev.launch(1, 4, 2048, &Hog, &()).unwrap_err();
        assert!(matches!(err, SimError::SharedMemoryExceeded { .. }));
    }

    #[test]
    fn oversized_shared_request_rejected_at_launch() {
        let dev = Device::new(DeviceDescriptor::tiny());
        let err = dev
            .launch(1, 4, 1 << 20, &ReduceKernel, &vec![0; 4])
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch { .. }));
    }

    #[test]
    fn zero_block_dim_rejected() {
        let dev = Device::new(DeviceDescriptor::tiny());
        let err = dev.launch(1, 0, 0, &ReduceKernel, &vec![]).unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch { .. }));
    }

    #[test]
    fn empty_grid_is_fine() {
        let dev = Device::new(DeviceDescriptor::tiny());
        let r = dev.launch(0, 4, 0, &ReduceKernel, &vec![]).unwrap();
        assert!(r.outputs.is_empty());
    }
}
