//! # gpu-sim
//!
//! A software SIMT execution substrate standing in for the paper's
//! NVIDIA A6000 (see DESIGN.md §2 for the substitution argument).
//!
//! Kernels ([`Kernel`]) are barrier-phase block programs executed on a
//! host thread pool ([`Device::launch`]). The substrate enforces the
//! GPU's *capacity* constraints (per-block shared memory, occupancy)
//! and measures the *traffic* every block generates (warp issue slots,
//! shared accesses, global accesses and bytes). An analytic
//! roofline+latency model ([`timing`]) turns those counters into a
//! device-time estimate.
//!
//! What is faithful: capacity limits, traffic accounting, occupancy,
//! relative timing between kernels on the same device. What is not:
//! cycle-accurate microarchitecture — absolute times are estimates, and
//! the experiments report them as such.
//!
//! ```
//! use gpu_sim::{Device, DeviceDescriptor, Kernel, BlockCtx, SimError};
//!
//! struct Doubler;
//! impl Kernel for Doubler {
//!     type Args = Vec<u64>;
//!     type Output = u64;
//!     // Per-worker reusable staging; this kernel needs none.
//!     type Workspace = ();
//!     fn block(&self, ctx: &mut BlockCtx, args: &Vec<u64>, _ws: &mut ()) -> Result<u64, SimError> {
//!         Ok(args[ctx.block_idx] * 2)
//!     }
//! }
//!
//! let dev = Device::new(DeviceDescriptor::tiny());
//! let out = dev.launch(3, 1, 0, &Doubler, &vec![1, 2, 3]).unwrap();
//! assert_eq!(out.outputs, vec![2, 4, 6]);
//! ```

pub mod ctx;
pub mod device;
pub mod error;
pub mod launch;
pub mod timing;

pub use ctx::{BlockCounters, BlockCtx, GlobalBuf, SharedBuf};
pub use device::DeviceDescriptor;
pub use error::SimError;
pub use launch::{Device, Kernel, LaunchReport};
pub use timing::{estimate, TimingEstimate};
