//! Per-block execution context: SIMT phases, shared memory, global
//! scratch, and instrumentation counters.
//!
//! Kernels are written in *barrier-phase style*: a block's work is a
//! sequence of [`BlockCtx::phase`] calls; within a phase every active
//! thread runs the same closure (our sequential stand-in for lockstep
//! SIMT execution), and consecutive phases are separated by an implicit
//! `__syncthreads()`. This keeps kernels deterministic while the
//! counters capture exactly the quantities the timing model needs:
//! warp-steps of compute, shared-memory traffic, and global traffic.

use crate::error::SimError;

/// Instrumentation accumulated by one block (and merged across blocks
/// by the launcher).
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct BlockCounters {
    /// Number of barrier-separated phases executed.
    pub phases: u64,
    /// Total thread activations (Σ active threads over phases).
    pub thread_steps: u64,
    /// Total warp activations (Σ ⌈active/warp_size⌉ per phase step).
    pub warp_steps: u64,
    /// Explicitly charged extra compute, in warp-cycles.
    pub extra_warp_cycles: u64,
    /// Shared-memory word loads.
    pub shared_loads: u64,
    /// Shared-memory word stores.
    pub shared_stores: u64,
    /// Global-memory word loads.
    pub global_loads: u64,
    /// Global-memory word stores.
    pub global_stores: u64,
    /// Global-memory bytes moved (both directions).
    pub global_bytes: u64,
}

impl BlockCounters {
    /// Merge another block's counters into this one.
    pub fn merge(&mut self, o: &BlockCounters) {
        self.phases += o.phases;
        self.thread_steps += o.thread_steps;
        self.warp_steps += o.warp_steps;
        self.extra_warp_cycles += o.extra_warp_cycles;
        self.shared_loads += o.shared_loads;
        self.shared_stores += o.shared_stores;
        self.global_loads += o.global_loads;
        self.global_stores += o.global_stores;
        self.global_bytes += o.global_bytes;
    }

    /// Total shared accesses.
    pub fn shared_accesses(&self) -> u64 {
        self.shared_loads + self.shared_stores
    }

    /// Total global accesses.
    pub fn global_accesses(&self) -> u64 {
        self.global_loads + self.global_stores
    }
}

/// A capacity-checked shared-memory buffer of 64-bit words.
///
/// Created through [`BlockCtx::shared_alloc`]; all accesses go through
/// the context so they are counted.
#[derive(Debug)]
pub struct SharedBuf {
    data: Vec<u64>,
}

impl SharedBuf {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A global-memory scratch buffer of 64-bit words (the unimproved
/// GenASM kernel spills its DP table here). Accesses are counted as
/// DRAM traffic.
#[derive(Debug)]
pub struct GlobalBuf {
    data: Vec<u64>,
}

impl GlobalBuf {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Execution context of one thread block.
#[derive(Debug)]
pub struct BlockCtx {
    /// Index of this block in the grid.
    pub block_idx: usize,
    /// Number of blocks in the grid.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    warp_size: usize,
    shared_budget: usize,
    shared_used: usize,
    counters: BlockCounters,
}

impl BlockCtx {
    pub(crate) fn new(
        block_idx: usize,
        grid_dim: usize,
        block_dim: usize,
        warp_size: usize,
        shared_budget: usize,
    ) -> BlockCtx {
        BlockCtx {
            block_idx,
            grid_dim,
            block_dim,
            warp_size,
            shared_budget,
            shared_used: 0,
            counters: BlockCounters::default(),
        }
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> BlockCounters {
        self.counters
    }

    pub(crate) fn into_counters(self) -> BlockCounters {
        self.counters
    }

    /// Shared memory still available, bytes.
    pub fn shared_remaining(&self) -> usize {
        self.shared_budget - self.shared_used
    }

    /// Allocate `words` 64-bit words of shared memory.
    ///
    /// Fails with [`SimError::SharedMemoryExceeded`] when the block's
    /// budget is exhausted — this is the capacity constraint that forces
    /// the unimproved GenASM kernel into global memory.
    pub fn shared_alloc(&mut self, words: usize) -> Result<SharedBuf, SimError> {
        let bytes = words * 8;
        if self.shared_used + bytes > self.shared_budget {
            return Err(SimError::SharedMemoryExceeded {
                requested: bytes,
                used: self.shared_used,
                budget: self.shared_budget,
            });
        }
        self.shared_used += bytes;
        Ok(SharedBuf {
            data: vec![0; words],
        })
    }

    /// Allocate a global-memory scratch buffer (no capacity limit; DRAM
    /// is big — it is just slow, which the counters capture).
    pub fn global_alloc(&mut self, words: usize) -> GlobalBuf {
        // Allocation itself is free; traffic is charged per access.
        GlobalBuf {
            data: vec![0; words],
        }
    }

    /// Load one word from shared memory.
    #[inline]
    pub fn sh_load(&mut self, buf: &SharedBuf, idx: usize) -> u64 {
        self.counters.shared_loads += 1;
        buf.data[idx]
    }

    /// Store one word to shared memory.
    #[inline]
    pub fn sh_store(&mut self, buf: &mut SharedBuf, idx: usize, val: u64) {
        self.counters.shared_stores += 1;
        buf.data[idx] = val;
    }

    /// Load one word from global memory.
    #[inline]
    pub fn gl_load(&mut self, buf: &GlobalBuf, idx: usize) -> u64 {
        self.counters.global_loads += 1;
        self.counters.global_bytes += 8;
        buf.data[idx]
    }

    /// Store one word to global memory.
    #[inline]
    pub fn gl_store(&mut self, buf: &mut GlobalBuf, idx: usize, val: u64) {
        self.counters.global_stores += 1;
        self.counters.global_bytes += 8;
        buf.data[idx] = val;
    }

    /// Charge a streaming global transfer (e.g. loading the sequence
    /// windows at kernel start, writing results at the end).
    pub fn charge_global_stream(&mut self, bytes: u64) {
        self.counters.global_bytes += bytes;
        // Streamed transfers are coalesced: count one access per 32B.
        self.counters.global_loads += bytes.div_ceil(32);
    }

    /// Charge extra compute work, in warp-cycles (for modeled
    /// instructions that have no memory side effect).
    pub fn charge_warp_cycles(&mut self, cycles: u64) {
        self.counters.extra_warp_cycles += cycles;
    }

    /// Run one SIMT phase: every thread in `active` executes `f(tid,
    /// ctx)`. Consecutive phases are separated by an implicit barrier.
    ///
    /// # Panics
    /// Panics if `active` exceeds the block's thread count — that is a
    /// kernel bug, not a data condition.
    pub fn phase<F: FnMut(usize, &mut BlockCtx)>(
        &mut self,
        active: std::ops::Range<usize>,
        mut f: F,
    ) {
        assert!(
            active.end <= self.block_dim,
            "phase activates thread {} but block has {} threads",
            active.end,
            self.block_dim
        );
        self.counters.phases += 1;
        let n = active.len() as u64;
        self.counters.thread_steps += n;
        self.counters.warp_steps += n.div_ceil(self.warp_size as u64);
        for tid in active {
            f(tid, self);
        }
    }

    /// A single-thread phase (e.g. the traceback walk).
    pub fn serial_phase<F: FnOnce(&mut BlockCtx)>(&mut self, f: F) {
        self.counters.phases += 1;
        self.counters.thread_steps += 1;
        self.counters.warp_steps += 1;
        f(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(shared: usize) -> BlockCtx {
        BlockCtx::new(0, 1, 64, 32, shared)
    }

    #[test]
    fn shared_alloc_respects_budget() {
        let mut c = ctx(1024);
        let a = c.shared_alloc(100).unwrap(); // 800 bytes
        assert_eq!(a.len(), 100);
        assert_eq!(c.shared_remaining(), 224);
        let err = c.shared_alloc(100).unwrap_err();
        match err {
            SimError::SharedMemoryExceeded {
                requested,
                used,
                budget,
            } => {
                assert_eq!(requested, 800);
                assert_eq!(used, 800);
                assert_eq!(budget, 1024);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // A smaller allocation still fits.
        assert!(c.shared_alloc(28).is_ok());
    }

    #[test]
    fn memory_accesses_are_counted() {
        let mut c = ctx(4096);
        let mut sh = c.shared_alloc(8).unwrap();
        c.sh_store(&mut sh, 3, 42);
        assert_eq!(c.sh_load(&sh, 3), 42);
        let mut gl = c.global_alloc(8);
        c.gl_store(&mut gl, 0, 7);
        assert_eq!(c.gl_load(&gl, 0), 7);
        let k = c.counters();
        assert_eq!(k.shared_stores, 1);
        assert_eq!(k.shared_loads, 1);
        assert_eq!(k.global_stores, 1);
        assert_eq!(k.global_loads, 1);
        assert_eq!(k.global_bytes, 16);
    }

    #[test]
    fn phase_counts_warps() {
        let mut c = ctx(0);
        c.phase(0..64, |_tid, _c| {});
        let k = c.counters();
        assert_eq!(k.phases, 1);
        assert_eq!(k.thread_steps, 64);
        assert_eq!(k.warp_steps, 2); // 64 threads / 32-wide warps

        c.phase(0..33, |_tid, _c| {});
        assert_eq!(c.counters().warp_steps, 4); // +2 (33 -> 2 warps)
    }

    #[test]
    fn phase_threads_run_in_order() {
        let mut c = ctx(0);
        let mut seen = Vec::new();
        c.phase(2..6, |tid, _| seen.push(tid));
        assert_eq!(seen, vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "phase activates thread")]
    fn oversized_phase_panics() {
        let mut c = ctx(0);
        c.phase(0..65, |_, _| {});
    }

    #[test]
    fn stream_charge_is_coalesced() {
        let mut c = ctx(0);
        c.charge_global_stream(100);
        let k = c.counters();
        assert_eq!(k.global_bytes, 100);
        assert_eq!(k.global_loads, 4); // ceil(100/32)
    }

    #[test]
    fn counters_merge() {
        let mut a = BlockCounters {
            phases: 1,
            warp_steps: 2,
            ..Default::default()
        };
        let b = BlockCounters {
            phases: 3,
            warp_steps: 5,
            global_bytes: 64,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.phases, 4);
        assert_eq!(a.warp_steps, 7);
        assert_eq!(a.global_bytes, 64);
    }
}
