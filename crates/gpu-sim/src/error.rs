//! Simulator errors.

/// Errors from the GPU simulation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A block exceeded its shared-memory budget.
    SharedMemoryExceeded {
        /// Bytes the failing allocation asked for.
        requested: usize,
        /// Bytes already allocated by the block.
        used: usize,
        /// The block's budget.
        budget: usize,
    },
    /// The launch configuration itself is invalid for the device.
    InvalidLaunch {
        /// Human-readable reason.
        reason: String,
    },
    /// A kernel reported a data-dependent failure.
    KernelFailed {
        /// Human-readable reason.
        reason: String,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::SharedMemoryExceeded {
                requested,
                used,
                budget,
            } => write!(
                f,
                "shared memory exceeded: requested {requested} B with {used}/{budget} B used"
            ),
            SimError::InvalidLaunch { reason } => write!(f, "invalid launch: {reason}"),
            SimError::KernelFailed { reason } => write!(f, "kernel failed: {reason}"),
        }
    }
}

impl std::error::Error for SimError {}
