//! Analytic timing model.
//!
//! The estimate combines three classical components, all fed by the
//! instrumented counters:
//!
//! 1. **compute / issue throughput** — every phase-step of every warp
//!    costs one issue slot; an SM retires `issue_width` warp
//!    instructions per cycle, and shared-memory accesses share the
//!    SM's `shared_ports` pipes;
//! 2. **DRAM bandwidth** — total global bytes over the device
//!    bandwidth (the roofline's memory side);
//! 3. **DRAM latency** — per-block global accesses pay the average
//!    latency divided by the assumed memory-level parallelism; this is
//!    what punishes a working set that does not fit on chip even when
//!    bandwidth is plentiful (the unimproved GenASM's problem).
//!
//! Blocks are spread over the SMs in round-robin launch order with the
//! occupancy the kernel's shared-memory usage permits; the kernel time
//! is `max(compute makespan, bandwidth time) + launch overhead`.
//! Absolute numbers are estimates; the *ratios* between two kernels on
//! the same device are the experimentally meaningful output
//! (DESIGN.md §2).

use crate::ctx::BlockCounters;
use crate::device::DeviceDescriptor;

/// Timing estimate of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingEstimate {
    /// Estimated kernel time in milliseconds.
    pub total_ms: f64,
    /// Compute-side makespan (ms).
    pub compute_ms: f64,
    /// DRAM-bandwidth time (ms).
    pub bandwidth_ms: f64,
    /// Share of per-block cycles spent waiting on DRAM latency (ms,
    /// already folded into `compute_ms`).
    pub latency_ms: f64,
    /// Blocks resident per SM (occupancy actually used).
    pub blocks_per_sm: usize,
}

/// Estimate a launch from per-block counters.
pub fn estimate(
    device: &DeviceDescriptor,
    per_block: &[BlockCounters],
    block_dim: usize,
    shared_bytes_per_block: usize,
) -> TimingEstimate {
    let occupancy = device
        .blocks_per_sm(block_dim, shared_bytes_per_block)
        .max(1);
    let lanes = device.sm_count * occupancy;

    // DRAM latency is hidden both by per-thread memory-level
    // parallelism and by the other blocks resident on the SM (more
    // occupancy = more warps to switch to while a load is in flight).
    let hiding = device.memory_level_parallelism * occupancy as f64;
    // Per-block cycle cost.
    let block_cycles: Vec<f64> = per_block
        .iter()
        .map(|c| {
            let issue = (c.warp_steps + c.extra_warp_cycles) as f64 / device.issue_width as f64;
            let shared = c.shared_accesses() as f64 / device.shared_ports as f64;
            let latency = c.global_accesses() as f64 * device.dram_latency_cycles / hiding;
            issue + shared + latency
        })
        .collect();
    let latency_only: f64 = per_block
        .iter()
        .map(|c| c.global_accesses() as f64 * device.dram_latency_cycles / hiding)
        .sum();

    // Round-robin makespan over SM-resident lanes.
    let mut lane_load = vec![0f64; lanes.max(1)];
    for (i, cyc) in block_cycles.iter().enumerate() {
        lane_load[i % lanes] += cyc;
    }
    let makespan_cycles = lane_load.iter().cloned().fold(0.0, f64::max);
    let hz = device.clock_ghz * 1e9;
    let compute_ms = makespan_cycles / hz * 1e3;
    let latency_ms = (latency_only / lanes as f64) / hz * 1e3;

    let total_bytes: u64 = per_block.iter().map(|c| c.global_bytes).sum();
    let bandwidth_ms = total_bytes as f64 / (device.dram_bandwidth_gbps * 1e9) * 1e3;

    let total_ms = compute_ms.max(bandwidth_ms) + device.launch_overhead_us / 1e3;
    TimingEstimate {
        total_ms,
        compute_ms,
        bandwidth_ms,
        latency_ms,
        blocks_per_sm: occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(warp_steps: u64, global_bytes: u64, global_accesses: u64) -> BlockCounters {
        BlockCounters {
            warp_steps,
            global_bytes,
            global_loads: global_accesses,
            ..Default::default()
        }
    }

    #[test]
    fn more_work_takes_longer() {
        let d = DeviceDescriptor::a6000();
        let small = vec![counters(1_000, 0, 0); 100];
        let large = vec![counters(100_000, 0, 0); 100];
        let ts = estimate(&d, &small, 64, 0);
        let tl = estimate(&d, &large, 64, 0);
        assert!(tl.total_ms > ts.total_ms);
    }

    #[test]
    fn bandwidth_bound_kernel() {
        let d = DeviceDescriptor::a6000();
        // Tiny compute, huge traffic: 768 MB at 768 GB/s = 1 ms.
        let blocks = vec![counters(1, 768_000_000 / 84, 0); 84];
        let t = estimate(&d, &blocks, 64, 0);
        assert!((t.bandwidth_ms - 1.0).abs() < 0.05, "{t:?}");
        assert!(t.total_ms >= t.bandwidth_ms);
    }

    #[test]
    fn latency_punishes_global_working_set() {
        let d = DeviceDescriptor::a6000();
        let on_chip = vec![counters(10_000, 0, 0); 840];
        let mut off_chip = on_chip.clone();
        for c in &mut off_chip {
            c.global_loads = 10_000;
            c.global_bytes = 80_000;
        }
        let t_on = estimate(&d, &on_chip, 64, 0);
        let t_off = estimate(&d, &off_chip, 64, 0);
        assert!(
            t_off.total_ms > 5.0 * t_on.total_ms,
            "off-chip {:.4} ms vs on-chip {:.4} ms",
            t_off.total_ms,
            t_on.total_ms
        );
    }

    #[test]
    fn occupancy_reported() {
        let d = DeviceDescriptor::a6000();
        let blocks = vec![counters(100, 0, 0); 10];
        let t = estimate(&d, &blocks, 128, 50 * 1024);
        assert_eq!(t.blocks_per_sm, 2);
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let d = DeviceDescriptor::a6000();
        let t = estimate(&d, &[], 64, 0);
        assert!((t.total_ms - 0.005).abs() < 1e-9);
    }

    #[test]
    fn more_lanes_shorter_makespan() {
        let d_small = DeviceDescriptor::tiny();
        let mut d_big = DeviceDescriptor::tiny();
        d_big.sm_count = 16;
        let blocks = vec![counters(10_000, 0, 0); 64];
        let t1 = estimate(&d_small, &blocks, 4, 0);
        let t2 = estimate(&d_big, &blocks, 4, 0);
        assert!(t2.compute_ms < t1.compute_ms);
    }
}
