//! Pinned perf-trajectory benchmark for CI.
//!
//! Runs one short, fully pinned `pipeline_throughput`-style
//! configuration (deterministic multi-contig workload, fixed pipeline
//! geometry) through every backend and writes `BENCH_pipeline.json`:
//! reads/s, aligned query bases/s, record counts, and the peak
//! resident task bases per backend, plus the shard-local reference
//! residency. A final adaptive pass (`--backend auto`'s router over
//! cpu + gpu-sim) rides along as a top-level `router` block — reads/s
//! for the routed run next to the best static backend it chooses
//! from, plus the per-backend batch split — which
//! `scripts/perf_gate.py` uses to fail the job when adaptive routing
//! falls off a cliff relative to the best static choice. CI uploads
//! the file as an artifact on every push, so the numbers accumulate
//! into a throughput trajectory over the repository's history.
//! Absolute numbers vary with runner hardware and are archived, not
//! asserted; only the within-run auto-vs-static ratio is gated.
//!
//! Usage: `perf-trajectory [OUTPUT_PATH]` (default
//! `BENCH_pipeline.json`).

use std::fmt::Write as _;
use std::time::Instant;

use align_core::Reference;
use genasm_pipeline::{
    run_pipeline, run_pipeline_auto, BackendKind, PipelineConfig, ReadInput, RouterConfig,
};
use mapper::CandidateParams;
use readsim::{contig_lengths, simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

/// Everything about the workload and geometry is pinned: two runs of
/// this binary on the same machine measure the same work.
const GENOME_LEN: usize = 150_000;
const CONTIGS: usize = 3;
const READS: usize = 24;
const READ_LEN: usize = 1_000;
const SEED: u64 = 99;
const BATCH_BASES: usize = 64 * 1024;
const QUEUE_DEPTH: usize = 8;
const SHARDS: usize = 4;

fn workload() -> (Reference, Vec<(String, align_core::Seq)>) {
    let lens = contig_lengths(GENOME_LEN, CONTIGS);
    let mut reference = Reference::new();
    let mut reads = Vec::new();
    for (ci, &len) in lens.iter().enumerate() {
        let genome = Genome::generate(&GenomeConfig::human_like(len, SEED + ci as u64));
        reference.push(&format!("chr{}", ci + 1), genome.seq.clone());
        for (i, r) in simulate_reads(
            &genome,
            &ReadConfig {
                count: READS / CONTIGS,
                length: READ_LEN,
                errors: ErrorModel::pacbio_clr(0.08),
                rc_fraction: 0.5,
                seed: SEED ^ (ci as u64) << 8,
            },
        )
        .into_iter()
        .enumerate()
        {
            reads.push((format!("c{ci}r{i}"), r.seq));
        }
    }
    (reference, reads)
}

struct BackendRow {
    name: &'static str,
    wall_s: f64,
    reads_per_sec: f64,
    query_bases_per_sec: f64,
    records: u64,
    peak_resident_task_bases: u64,
    resident_reference_bytes: usize,
    /// Window-engine counters (band sweep, early termination, rescues)
    /// for backends that expose them; baselines report `None`.
    engine: Option<genasm_core::MemStats>,
    /// Per-read end-to-end latency percentiles (ns), from the
    /// telemetry registry's log-bucketed histogram (quantiles are
    /// bucket upper bounds, ≤2× error).
    read_latency: genasm_pipeline::HistogramSnapshot,
    /// Task-queue wait percentiles (ns): time tasks sat in the shared
    /// bounded queue before a batch builder picked them up.
    task_queue_wait: genasm_pipeline::HistogramSnapshot,
}

fn pinned_cfg() -> PipelineConfig {
    PipelineConfig {
        batch_bases: BATCH_BASES,
        queue_depth: QUEUE_DEPTH,
        dispatchers: 1,
        shards: SHARDS,
        shard_overlap: 256,
        params: CandidateParams::default(),
        trace: None,
        explain: None,
    }
}

fn run_backend(
    kind: BackendKind,
    name: &'static str,
    reference: &Reference,
    reads: &[(String, align_core::Seq)],
) -> Result<BackendRow, String> {
    let cfg = pinned_cfg();
    // A fresh backend per pass keeps the cumulative window-engine
    // counters scoped to exactly one workload traversal.
    let run = |backend: &dyn genasm_pipeline::Backend| {
        let stream = reads.iter().map(|(n, s)| {
            Ok::<_, std::convert::Infallible>(ReadInput {
                name: n.clone(),
                seq: s.clone(),
            })
        });
        run_pipeline(stream, reference.clone(), backend, &cfg, |_| Ok(()))
            .map_err(|e| format!("backend {name}: {e}"))
    };
    run(kind.create().as_ref())?; // warm-up: allocators, thread pools, branch caches
    let backend = kind.create();
    let t0 = Instant::now();
    let metrics = run(backend.as_ref())?;
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(BackendRow {
        name,
        wall_s: wall,
        reads_per_sec: metrics.reads_in as f64 / wall,
        query_bases_per_sec: metrics.query_bases as f64 / wall,
        records: metrics.records_out,
        peak_resident_task_bases: metrics.max_inflight_bases,
        resident_reference_bytes: metrics.shard_index.reference_bytes,
        engine: metrics.engine,
        read_latency: metrics.read_latency.clone(),
        task_queue_wait: metrics.task_queue_wait.clone(),
    })
}

struct AutoRow {
    wall_s: f64,
    reads_per_sec: f64,
    records: u64,
    explored: u64,
    /// Batches the router assigned per backend, in registration order.
    batches: Vec<(String, u64)>,
}

/// One adaptive pass: the same pinned workload through `--backend
/// auto`'s router (cpu + gpu-sim residents). Routing feeds on live
/// latency, so the batch split is not pinned — only the output is —
/// which is exactly what the archived block documents.
fn run_auto(reference: &Reference, reads: &[(String, align_core::Seq)]) -> Result<AutoRow, String> {
    let cfg = pinned_cfg();
    let run = || {
        let stream = reads.iter().map(|(n, s)| {
            Ok::<_, std::convert::Infallible>(ReadInput {
                name: n.clone(),
                seq: s.clone(),
            })
        });
        run_pipeline_auto(
            stream,
            reference.clone(),
            &cfg,
            RouterConfig::default(),
            |_| Ok(()),
        )
        .map_err(|e| format!("backend auto: {e}"))
    };
    run()?; // warm-up, matching the static rows
    let t0 = Instant::now();
    let metrics = run()?;
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    Ok(AutoRow {
        wall_s: wall,
        reads_per_sec: metrics.reads_in as f64 / wall,
        records: metrics.records_out,
        explored: metrics.router_explored,
        batches: metrics.router_batches,
    })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let (reference, reads) = workload();
    let total_len = reference.total_len();

    let mut rows = Vec::new();
    for (kind, name) in BackendKind::ALL {
        match run_backend(kind, name, &reference, &reads) {
            Ok(row) => {
                eprintln!(
                    "perf-trajectory: {name}: {:.0} reads/s, {:.0} query bases/s, \
                     peak {} resident task bases",
                    row.reads_per_sec, row.query_bases_per_sec, row.peak_resident_task_bases
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("perf-trajectory: FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    let auto = match run_auto(&reference, &reads) {
        Ok(row) => {
            eprintln!(
                "perf-trajectory: auto: {:.0} reads/s, {} batches routed, {} explored",
                row.reads_per_sec,
                row.batches.iter().map(|(_, n)| n).sum::<u64>(),
                row.explored
            );
            row
        }
        Err(e) => {
            eprintln!("perf-trajectory: FAILED: {e}");
            std::process::exit(1);
        }
    };
    // The router only chooses among the byte-identical GenASM engines,
    // so "best static" is the faster of those residents, not the best
    // backend overall.
    let best_static = rows
        .iter()
        .filter(|r| r.name == "cpu" || r.name == "gpu-sim")
        .max_by(|a, b| a.reads_per_sec.total_cmp(&b.reads_per_sec))
        .expect("cpu and gpu-sim rows always run");
    if auto.records != best_static.records {
        eprintln!(
            "perf-trajectory: FAILED: auto emitted {} records but {} emitted {}",
            auto.records, best_static.name, best_static.records
        );
        std::process::exit(1);
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"genasm-bench-pipeline/v4\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"genome_len\": {GENOME_LEN}, \"contigs\": {CONTIGS}, \
         \"total_len\": {total_len}, \"reads\": {}, \"read_len\": {READ_LEN}, \
         \"seed\": {SEED}}},",
        reads.len()
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"batch_bases\": {BATCH_BASES}, \"queue_depth\": {QUEUE_DEPTH}, \
         \"shards\": {SHARDS}, \"dispatchers\": 1}},"
    );
    let _ = writeln!(json, "  \"backends\": {{");
    for (i, r) in rows.iter().enumerate() {
        // Window-engine counters ride along per backend so the band
        // sweep's effect (rows swept, cells skipped, rescues) is part
        // of the archived trajectory, not just wall-clock.
        let engine = match &r.engine {
            Some(e) => format!(
                "{{\"windows\": {}, \"rows_computed\": {}, \
                 \"windows_early_terminated\": {}, \"windows_rescued\": {}, \
                 \"band_cells_skipped\": {}, \"peak_band_rows\": {}}}",
                e.windows,
                e.rows_computed,
                e.windows_early_terminated,
                e.windows_rescued,
                e.band_cells_skipped,
                e.peak_band_rows
            ),
            None => "null".to_string(),
        };
        // v3: latency percentiles from the telemetry histograms.
        // Quantiles are power-of-two bucket upper bounds, so they are
        // stable run-to-run on the same hardware class even though
        // exact nanosecond values jitter.
        let latency = format!(
            "{{\"read_p50_ns\": {}, \"read_p90_ns\": {}, \"read_p99_ns\": {}, \
             \"task_queue_wait_p99_ns\": {}}}",
            r.read_latency.p50(),
            r.read_latency.p90(),
            r.read_latency.p99(),
            r.task_queue_wait.p99()
        );
        let _ = writeln!(
            json,
            "    \"{}\": {{\"wall_s\": {:.6}, \"reads_per_sec\": {:.2}, \
             \"query_bases_per_sec\": {:.2}, \"records\": {}, \
             \"peak_resident_task_bases\": {}, \"resident_reference_bytes\": {}, \
             \"window_engine\": {}, \"latency\": {}}}{}",
            r.name,
            r.wall_s,
            r.reads_per_sec,
            r.query_bases_per_sec,
            r.records,
            r.peak_resident_task_bases,
            r.resident_reference_bytes,
            engine,
            latency,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    // v4: the adaptive-routing block. `scripts/perf_gate.py` fails the
    // job when `auto_reads_per_sec` regresses more than the tolerance
    // below `best_static_reads_per_sec` from the same run.
    let mut batches = String::new();
    for (i, (name, n)) in auto.batches.iter().enumerate() {
        let _ = write!(batches, "{}\"{name}\": {n}", if i > 0 { ", " } else { "" });
    }
    let _ = writeln!(
        json,
        "  \"router\": {{\"auto_wall_s\": {:.6}, \"auto_reads_per_sec\": {:.2}, \
         \"auto_records\": {}, \"best_static\": \"{}\", \
         \"best_static_reads_per_sec\": {:.2}, \"explored\": {}, \
         \"batches\": {{{}}}}}",
        auto.wall_s,
        auto.reads_per_sec,
        auto.records,
        best_static.name,
        best_static.reads_per_sec,
        auto.explored,
        batches
    );
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perf-trajectory: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("perf-trajectory: wrote {out_path}");
}
