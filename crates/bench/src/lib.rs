//! Shared workload builders for the Criterion benches.
//!
//! Every bench regenerates one row/family of the paper's evaluation;
//! the mapping to experiment ids lives in DESIGN.md §4 and the results
//! in EXPERIMENTS.md. The builders here are deterministic so bench
//! numbers are comparable across runs.

use align_core::{AlignTask, Base, Seq};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// A (query, target) pair where the target is a CLR-style mutated copy
/// of the query (sub:ins:del ≈ 6:50:44).
pub fn mutated_pair(rng: &mut ChaCha8Rng, len: usize, error_rate: f64) -> (Seq, Seq) {
    let q: Vec<Base> = (0..len)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect();
    let mut t = q.clone();
    let mut i = 0;
    while i < t.len() {
        if rng.gen_bool(error_rate) {
            let r: f64 = rng.gen();
            if r < 0.06 {
                t[i] = Base::from_code(rng.gen_range(0..4));
                i += 1;
            } else if r < 0.56 {
                t.insert(i, Base::from_code(rng.gen_range(0..4)));
                i += 2;
            } else {
                t.remove(i);
            }
        } else {
            i += 1;
        }
    }
    if t.is_empty() {
        t.push(Base::A);
    }
    (q.into_iter().collect(), t.into_iter().collect())
}

/// A deterministic batch of mutated pairs.
pub fn task_batch(count: usize, len: usize, error_rate: f64, seed: u64) -> Vec<AlignTask> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let (q, t) = mutated_pair(&mut rng, len, error_rate);
            AlignTask::new(i as u32, 0, q, t)
        })
        .collect()
}

/// A random sequence (for unrelated-pair stress cases).
pub fn random_seq(len: usize, seed: u64) -> Seq {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| Base::from_code(rng.gen_range(0..4)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic() {
        let a = task_batch(3, 500, 0.1, 9);
        let b = task_batch(3, 500, 0.1, 9);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.target, y.target);
        }
    }

    #[test]
    fn error_rate_shows_in_distance() {
        let tasks = task_batch(4, 2_000, 0.10, 3);
        for t in &tasks {
            let d = align_core::doubling_nw_distance(&t.query, &t.target);
            assert!(d > 50, "10% errors over 2kb must leave d > 50, got {d}");
            assert!(d < 600, "distance {d} implausibly high");
        }
    }
}
