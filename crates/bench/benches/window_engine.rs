//! Microbench of the per-window engine (ablation A1 at the window
//! level): how each improvement combination changes the cost of a
//! single 64×64 window at several error weights — and what workspace
//! reuse saves per window (fresh allocates every buffer per call;
//! reused amortizes them across the run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genasm_core::bitvec::PatternMask;
use genasm_core::{AlignWorkspace, GenAsmConfig, Improvements, MemStats, MIN_HINT_K};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn window_inputs(errors: usize, seed: u64) -> (PatternMask, Vec<u8>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let q = bench::random_seq(64, seed);
    let mut t: Vec<u8> = (0..64).map(|i| q.get_code(i)).collect();
    for _ in 0..errors {
        let p = rng.gen_range(0..t.len());
        t[p] = (t[p] + rng.gen_range(1..4u8)) % 4;
    }
    let pm = PatternMask::new_reversed_window(&q, 0, 64);
    t.reverse();
    (pm, t)
}

fn bench_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("A1_window_engine");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for &errors in &[0usize, 4, 16, 48] {
        let (pm, trev) = window_inputs(errors, 5);
        for improvements in [Improvements::ALL, Improvements::NONE] {
            let cfg = GenAsmConfig {
                improvements,
                ..GenAsmConfig::improved()
            };
            let label = if improvements == Improvements::ALL {
                "improved"
            } else {
                "unimproved"
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{errors}err")),
                &(&pm, &trev),
                |b, (pm, trev)| {
                    b.iter(|| {
                        let mut stats = MemStats::new();
                        genasm_core::align_window_fresh(pm, trev, &cfg, 40, false, &mut stats)
                            .expect("window")
                            .d_star
                    })
                },
            );
        }
    }
    group.finish();

    // Banded vs full-budget sweeps. Three variants per error weight:
    // `exhaustive` disables early termination, so every d-row up to k
    // is swept (the cost the band caps on windows that never fire the
    // solution bit); `full` runs the complete engine at k = w;
    // `banded` adds a tight band sized to the planted error weight.
    // All three report the same d_star — the band and the early stop
    // only bound the row sweep, never the word values — so the ratios
    // are pure row-sweep savings. The hopeless case measures the O(1)
    // pre-flight abandon (pattern longer than text + k: no row is
    // ever computed).
    let mut group = c.benchmark_group("A1_window_banded");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &errors in &[0usize, 4, 16, 48] {
        let (pm, trev) = window_inputs(errors, 5);
        let full = GenAsmConfig::improved();
        let exhaustive = GenAsmConfig {
            improvements: Improvements {
                early_term: false,
                ..Improvements::ALL
            },
            ..full
        };
        let tight_k = (errors + 8).clamp(MIN_HINT_K, full.k);
        let banded = GenAsmConfig { k: tight_k, ..full };
        for (label, cfg) in [
            ("exhaustive", &exhaustive),
            ("full", &full),
            ("banded", &banded),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{errors}err")),
                &(&pm, &trev),
                |b, (pm, trev)| {
                    b.iter(|| {
                        let mut stats = MemStats::new();
                        genasm_core::align_window_fresh(pm, trev, cfg, 40, false, &mut stats)
                            .expect("window")
                            .d_star
                    })
                },
            );
        }
    }
    {
        // 64-base pattern against an 8-base text at k = 40: the window
        // needs at least 56 deletions, so the engine rejects it before
        // allocating or sweeping anything.
        let (pm, _) = window_inputs(0, 5);
        let trev: Vec<u8> = vec![0u8; 8];
        let cfg = GenAsmConfig {
            k: 40,
            ..GenAsmConfig::improved()
        };
        group.bench_with_input(
            BenchmarkId::new("hopeless", "abandon"),
            &(&pm, &trev),
            |b, (pm, trev)| {
                b.iter(|| {
                    let mut stats = MemStats::new();
                    genasm_core::align_window_fresh(pm, trev, &cfg, 40, false, &mut stats).is_err()
                })
            },
        );
    }
    group.finish();

    // Fresh vs reused ns/window: identical DP work, the difference is
    // purely the per-window allocations the workspace removes.
    let mut group = c.benchmark_group("A1_window_workspace");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &errors in &[0usize, 4, 16, 48] {
        let (pm, trev) = window_inputs(errors, 5);
        let cfg = GenAsmConfig::improved();
        group.bench_with_input(
            BenchmarkId::new("fresh", format!("{errors}err")),
            &(&pm, &trev),
            |b, (pm, trev)| {
                b.iter(|| {
                    let mut stats = MemStats::new();
                    genasm_core::align_window_fresh(pm, trev, &cfg, 40, false, &mut stats)
                        .expect("window")
                        .d_star
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reused", format!("{errors}err")),
            &(&pm, &trev),
            |b, (pm, trev)| {
                let mut ws = AlignWorkspace::with_capacity(cfg.w);
                b.iter(|| {
                    ws.set_window_raw((*pm).clone(), trev);
                    genasm_core::align_window(&mut ws, &cfg, 40, false)
                        .expect("window")
                        .d_star
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_window);
criterion_main!(benches);
