//! Bench for experiments E1–E3: per-alignment CPU time of improved
//! GenASM vs KSW2, Edlib and unimproved GenASM on paper-profile pairs
//! (10% CLR error). The `repro cpu` harness reports the same comparison
//! on the full mapped candidate set; this bench gives the
//! statistically-controlled per-pair numbers.

use align_core::GlobalAligner;
use baselines::{Ksw2Aligner, MyersAligner};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genasm_cpu::CpuBatchAligner;

fn bench_cpu_aligners(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1-E3_cpu_aligners");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    for &len in &[1_000usize, 4_000, 10_000] {
        let tasks = bench::task_batch(4, len, 0.10, 42);
        let contenders: Vec<(&str, Box<dyn GlobalAligner>)> = vec![
            ("genasm-improved", Box::new(CpuBatchAligner::improved())),
            ("genasm-unimproved", Box::new(CpuBatchAligner::baseline())),
            ("edlib", Box::new(MyersAligner::new())),
            ("ksw2", Box::new(Ksw2Aligner::new())),
        ];
        for (name, aligner) in contenders {
            group.bench_with_input(BenchmarkId::new(name, len), &tasks, |b, tasks| {
                b.iter(|| {
                    let mut total = 0usize;
                    for t in tasks {
                        total += aligner
                            .align(&t.query, &t.target)
                            .expect("alignment")
                            .edit_distance;
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_aligners);
criterion_main!(benches);
