//! Bench for experiments E4–E7: the GPU kernels.
//!
//! Criterion times the host-side *simulation*; the modeled device
//! times (what the paper's speedups are about) are printed once per
//! configuration below and regenerated in full by `repro gpu`. The
//! host time still tracks the kernels' algorithmic work, so the
//! improved/unimproved ratio is meaningful here too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genasm_gpu::GpuAligner;
use gpu_sim::Device;

fn bench_gpu_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4-E7_gpu_kernels");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let tasks = bench::task_batch(8, 2_000, 0.10, 7);
    let device = Device::a6000();

    for (name, gpu) in [
        ("improved", GpuAligner::improved(device.clone())),
        ("unimproved", GpuAligner::baseline(device.clone())),
    ] {
        // Print the modeled device numbers once (the E7 ratio source).
        let report = gpu.align_batch(&tasks).expect("launch");
        println!(
            "[model] kernel={name} modeled_ms={:.4} global_MiB={:.2} occupancy={}/SM",
            report.timing.total_ms,
            report.totals.global_bytes as f64 / 1048576.0,
            report.timing.blocks_per_sm
        );
        group.bench_with_input(BenchmarkId::new(name, tasks.len()), &tasks, |b, tasks| {
            b.iter(|| gpu.align_batch(tasks).expect("launch").totals)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_kernels);
criterion_main!(benches);
