//! Bench of the workload substrate: genome synthesis, read simulation,
//! minimizer indexing and chaining — the pipeline stages in front of
//! the aligners (supports the workload table in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use mapper::{CandidateParams, MinimizerIndex};
use readsim::{simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_pipeline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("genome_200kb", |b| {
        b.iter(|| {
            Genome::generate(&GenomeConfig::human_like(200_000, 3))
                .seq
                .len()
        })
    });

    let genome = Genome::generate(&GenomeConfig::human_like(200_000, 3));
    group.bench_function("reads_10x2kb", |b| {
        b.iter(|| {
            simulate_reads(
                &genome,
                &ReadConfig {
                    count: 10,
                    length: 2_000,
                    errors: ErrorModel::pacbio_clr(0.10),
                    rc_fraction: 0.5,
                    seed: 5,
                },
            )
            .len()
        })
    });

    group.bench_function("index_200kb", |b| {
        b.iter(|| MinimizerIndex::build(&genome.seq).distinct_minimizers())
    });

    let index = MinimizerIndex::build(&genome.seq);
    let reads = simulate_reads(
        &genome,
        &ReadConfig {
            count: 5,
            length: 2_000,
            errors: ErrorModel::pacbio_clr(0.10),
            rc_fraction: 0.5,
            seed: 5,
        },
    );
    group.bench_function("map_5_reads", |b| {
        b.iter(|| {
            reads
                .iter()
                .map(|r| {
                    mapper::candidates_for_read(
                        r.id,
                        &r.seq,
                        &genome.seq,
                        &index,
                        &CandidateParams::default(),
                    )
                    .len()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
