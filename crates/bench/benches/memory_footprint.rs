//! Bench for experiments E8–E9: the DP-table footprint and access
//! counters (printed once — they are deterministic), plus the wall-time
//! effect of the working-set reduction on the CPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genasm_core::{GenAsmConfig, MemStats};

fn counters_for(tasks: &[align_core::AlignTask], cfg: &GenAsmConfig) -> MemStats {
    let mut stats = MemStats::new();
    for t in tasks {
        genasm_core::align_with_stats(&t.query, &t.target, cfg, &mut stats).expect("k=W");
    }
    stats
}

fn bench_memory(c: &mut Criterion) {
    let tasks = bench::task_batch(6, 4_000, 0.10, 11);

    // E8/E9 are deterministic counter ratios; print them here so a
    // bench run regenerates the paper row without the full harness.
    let base = counters_for(&tasks, &GenAsmConfig::baseline());
    let imp = counters_for(&tasks, &GenAsmConfig::improved());
    println!(
        "[E8] footprint: unimproved {:.0} B/window, improved {:.0} B/window, reduction {:.1}x (paper 24x)",
        base.mean_table_bytes_per_window(),
        imp.mean_table_bytes_per_window(),
        base.footprint_reduction_vs(&imp)
    );
    println!(
        "[E9] accesses: unimproved {:.0}/window, improved {:.0}/window, reduction {:.1}x (paper 12x)",
        base.table_accesses() as f64 / base.windows as f64,
        imp.table_accesses() as f64 / imp.windows as f64,
        base.access_reduction_vs(&imp)
    );

    let mut group = c.benchmark_group("E8-E9_memory");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, cfg) in [
        ("improved", GenAsmConfig::improved()),
        ("unimproved", GenAsmConfig::baseline()),
    ] {
        group.bench_with_input(BenchmarkId::new(name, tasks.len()), &tasks, |b, tasks| {
            b.iter(|| counters_for(tasks, &cfg).table_words)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
