//! Fresh-vs-reused workspace throughput: the benchmark behind the
//! allocation-free hot path refactor.
//!
//! Three levels are compared on identical inputs:
//!
//! * **single/fresh vs single/reused** — one thread, one alignment at a
//!   time: isolates the pure allocation overhead per alignment;
//! * **batch/fresh vs batch/reused** — the Rayon batch driver with a
//!   workspace per task vs one workspace per worker (`map_init`): what
//!   production batch throughput actually gains;
//! * **reused ns/window** — per-window cost with everything amortized,
//!   the number the ROADMAP's "as fast as the hardware allows" tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genasm_core::{AlignWorkspace, GenAsmConfig, MemStats};

fn bench_workspace_reuse(c: &mut Criterion) {
    let cfg = GenAsmConfig::improved();
    let tasks = bench::task_batch(64, 2_000, 0.10, 42);
    let windows_per_batch: u64 = {
        let mut stats = MemStats::new();
        for t in &tasks {
            genasm_core::align_with_stats(&t.query, &t.target, &cfg, &mut stats).expect("k=W");
        }
        stats.windows
    };
    println!(
        "workspace_reuse: {} tasks, {windows_per_batch} windows per batch pass",
        tasks.len()
    );

    let mut group = c.benchmark_group("workspace_reuse");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_with_input(BenchmarkId::new("single", "fresh"), &tasks, |b, tasks| {
        b.iter(|| {
            let mut d = 0usize;
            for t in tasks {
                let mut stats = MemStats::new();
                d += genasm_core::align_with_stats(&t.query, &t.target, &cfg, &mut stats)
                    .expect("k=W")
                    .edit_distance;
            }
            d
        })
    });
    group.bench_with_input(BenchmarkId::new("single", "reused"), &tasks, |b, tasks| {
        let mut ws = AlignWorkspace::with_capacity(cfg.w);
        b.iter(|| {
            let mut d = 0usize;
            for t in tasks {
                d += genasm_core::align_with_workspace(&t.query, &t.target, &cfg, &mut ws)
                    .expect("k=W")
                    .edit_distance;
            }
            d
        })
    });

    group.bench_with_input(BenchmarkId::new("batch", "fresh"), &tasks, |b, tasks| {
        // The pre-refactor batch shape: a workspace per task.
        b.iter(|| {
            genasm_cpu::align_batch_with(tasks, &genasm_cpu::CpuBatchAligner::improved()).failures
        })
    });
    group.bench_with_input(BenchmarkId::new("batch", "reused"), &tasks, |b, tasks| {
        // One workspace per Rayon worker via map_init.
        b.iter(|| genasm_cpu::align_batch_genasm(tasks, &cfg).failures)
    });
    group.finish();

    // Hinted vs full-budget error bands over whole reads: the same
    // batch driven once with no hint (every window sweeps k = w rows)
    // and once with a mapper-style edit bound (tight band first, full
    // rerun only when it comes up empty). Identical accepted
    // alignments; the delta is the banding win at each error weight.
    let mut group = c.benchmark_group("hinted_error_band");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for &edits in &[0usize, 4, 16, 48] {
        let tasks = bench::task_batch(64, 2_000, edits as f64 / 2_000.0, 42);
        let hint = edits + 8;
        for (label, hint) in [("full", None), ("hinted", Some(hint))] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{edits}edits")),
                &tasks,
                |b, tasks| {
                    let mut ws = AlignWorkspace::with_capacity(cfg.w);
                    b.iter(|| {
                        let mut d = 0usize;
                        for t in tasks {
                            d += genasm_core::align_with_workspace_hinted(
                                &t.query, &t.target, &cfg, hint, &mut ws,
                            )
                            .expect("k=W")
                            .edit_distance;
                        }
                        d
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_workspace_reuse);
criterion_main!(benches);
