//! Streaming pipeline vs one-shot batch throughput.
//!
//! The streaming pipeline buys bounded memory and overlap between
//! candidate generation and alignment; this bench measures what that
//! costs (or gains) against the one-shot shape the paper's evaluation
//! uses: generate every candidate, then align everything in one Rayon
//! batch. Reported per-iteration times cover the identical workload,
//! so the ratio is the end-to-end streaming overhead. Two pipeline
//! geometries are timed: production-ish (64 KB batches, depth 8) and
//! deliberately tiny batches (4 KB, depth 1) to expose scheduling
//! overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genasm_pipeline::{run_pipeline, AlignRecord, CpuBackend, PipelineConfig, ReadInput};
use mapper::{CandidateParams, MinimizerIndex};
use readsim::{simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

fn workload() -> (align_core::Seq, Vec<(String, align_core::Seq)>) {
    let genome = Genome::generate(&GenomeConfig::human_like(120_000, 7));
    let reads = simulate_reads(
        &genome,
        &ReadConfig {
            count: 24,
            length: 1_000,
            errors: ErrorModel::pacbio_clr(0.08),
            rc_fraction: 0.5,
            seed: 99,
        },
    );
    let named = reads
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("read{i}"), r.seq))
        .collect();
    (genome.seq, named)
}

fn one_shot_records(
    reads: &[(String, align_core::Seq)],
    reference: &align_core::Seq,
    params: &CandidateParams,
) -> usize {
    use genasm_pipeline::Backend;
    let index = MinimizerIndex::build(reference);
    let backend = CpuBackend::improved();
    let mut tasks = Vec::new();
    let mut read_of_task = Vec::new();
    for (i, (_, seq)) in reads.iter().enumerate() {
        for t in mapper::candidates_for_read(i as u32, seq, reference, &index, params) {
            read_of_task.push(i);
            tasks.push(t);
        }
    }
    let alns = backend.align_batch(&tasks).unwrap();
    let mut rows: Vec<Vec<AlignRecord>> = reads.iter().map(|_| Vec::new()).collect();
    for ((&i, t), a) in read_of_task.iter().zip(&tasks).zip(&alns) {
        rows[i].push(AlignRecord::new(
            &reads[i].0,
            reads[i].1.len(),
            "ref",
            reference.len(),
            t.ref_pos,
            t.target.len(),
            t.reverse,
            a.as_ref().unwrap(),
        ));
    }
    let mut n = 0;
    for per_read in &mut rows {
        per_read.sort_by_cached_key(AlignRecord::sort_key);
        n += per_read.len();
    }
    n
}

fn streaming_records(
    reads: &[(String, align_core::Seq)],
    reference: &align_core::Seq,
    cfg: &PipelineConfig,
) -> usize {
    let backend = CpuBackend::improved();
    let stream = reads.iter().map(|(name, seq)| {
        Ok::<_, std::convert::Infallible>(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
    });
    let mut n = 0usize;
    run_pipeline(
        stream,
        align_core::Reference::single("ref", reference.clone()),
        &backend,
        cfg,
        |_| {
            n += 1;
            Ok(())
        },
    )
    .unwrap();
    n
}

/// Streaming run that returns the full metrics snapshot (for the
/// telemetry-overhead measurements, which want the registry exercised
/// end to end, including exposition rendering).
fn streaming_metrics(
    reads: &[(String, align_core::Seq)],
    reference: &align_core::Seq,
    cfg: &PipelineConfig,
) -> genasm_pipeline::PipelineMetrics {
    let backend = CpuBackend::improved();
    let stream = reads.iter().map(|(name, seq)| {
        Ok::<_, std::convert::Infallible>(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
    });
    run_pipeline(
        stream,
        align_core::Reference::single("ref", reference.clone()),
        &backend,
        cfg,
        |_| Ok(()),
    )
    .unwrap()
}

/// Telemetry overhead: the same streaming workload with telemetry
/// passive (counters always run — this is the baseline), with the
/// full JSON exposition rendered on top, and with a Chrome trace
/// recorder attached (events serialized to `io::sink`, so the cost
/// measured is formatting + the recorder mutex, not disk).
fn bench_telemetry_overhead(c: &mut Criterion) {
    use genasm_pipeline::TraceRecorder;
    use std::sync::Arc;

    let (reference, reads) = workload();
    let cfg = PipelineConfig {
        batch_bases: 64 * 1024,
        queue_depth: 8,
        ..PipelineConfig::default()
    };

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("off", |b| {
        b.iter(|| streaming_metrics(&reads, &reference, &cfg).records_out)
    });
    group.bench_function("json_render", |b| {
        b.iter(|| {
            let m = streaming_metrics(&reads, &reference, &cfg);
            (m.to_json().len(), m.to_prometheus().len())
        })
    });
    group.bench_function("traced", |b| {
        b.iter(|| {
            let trace = Arc::new(TraceRecorder::to_writer(Box::new(std::io::sink())));
            let traced_cfg = PipelineConfig {
                trace: Some(Arc::clone(&trace)),
                ..cfg.clone()
            };
            let m = streaming_metrics(&reads, &reference, &traced_cfg);
            trace.finish().unwrap();
            m.records_out
        })
    });
    group.finish();
}

fn bench_pipeline_throughput(c: &mut Criterion) {
    let (reference, reads) = workload();
    let params = CandidateParams::default();
    let expected = one_shot_records(&reads, &reference, &params);
    println!(
        "pipeline_throughput: {} reads, {expected} records",
        reads.len()
    );

    let mut group = c.benchmark_group("pipeline_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("one_shot", "cpu"), |b| {
        b.iter(|| {
            let n = one_shot_records(&reads, &reference, &params);
            assert_eq!(n, expected);
            n
        })
    });
    for (label, batch_bases, queue_depth, shards) in [
        ("64k-d8", 64 * 1024, 8, 1),
        ("4k-d1", 4 * 1024, 1, 1),
        // Sharded candidate generation: same output, fan-out cost/gain.
        ("64k-d8-s4", 64 * 1024, 8, 4),
    ] {
        let cfg = PipelineConfig {
            batch_bases,
            queue_depth,
            dispatchers: 1,
            shards,
            params,
            ..PipelineConfig::default()
        };
        group.bench_function(BenchmarkId::new("streaming", label), |b| {
            b.iter(|| {
                let n = streaming_records(&reads, &reference, &cfg);
                assert_eq!(n, expected);
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_throughput, bench_telemetry_overhead);
criterion_main!(benches);
