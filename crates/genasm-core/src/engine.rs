//! The per-window engine: GenASM-DC (distance calculation) and
//! GenASM-TB (traceback), with the paper's three improvements.
//!
//! A window aligns a reversed pattern slice (≤ 64 chars, one bit each)
//! against a reversed text slice. Reversal makes the backward traceback
//! emit operations in forward order (GenASM's trick, DESIGN.md §5).
//!
//! All mutable state — scratch rows, the traceback table, the staged
//! window inputs, the op buffer, and the instrumentation counters —
//! lives in a caller-provided [`AlignWorkspace`], so a warm workspace
//! aligns windows without a single heap allocation.
//!
//! ## Improvement mechanics
//!
//! * **Row-major evaluation + early termination.** Rows (error counts)
//!   are computed in ascending order, an entire row across all text
//!   columns at a time. This is legal because row `d` of column `i`
//!   depends only on row `d-1` (columns `i-1`, `i`) and row `d`
//!   (column `i-1`). The first row whose final column has the solution
//!   bit active is the minimal edit count `d*`; with early termination
//!   enabled, no further row is computed or stored.
//! * **Entry compression.** Only the combined vector `R[d][i]` is
//!   stored. The traceback re-derives edge existence from stored
//!   neighbours and the pattern mask (see the private `traceback`
//!   walk in this module).
//! * **DENT.** The committed part of a non-final window's traceback
//!   consumes at most `keep = W - O` pattern chars *and* at most `keep`
//!   text chars (the walk stops at whichever bound is hit first). A walk
//!   positioned at text column `i` has consumed `n-1-i` text columns, so
//!   it can only visit columns `i >= n - keep`, and it reads neighbour
//!   columns `i-1 >= n - keep - 1`. Everything below
//!   `cut = max(0, n - keep - 1)` is therefore unreachable and is never
//!   stored. Final windows walk until the pattern is consumed, so their
//!   cut is 0.
//!
//! ## Where the band lives (and where it cannot)
//!
//! The engine's *sound* band is the **`d` (error) dimension**: `cfg.k`
//! only bounds the row loop — it never enters a bitvector value — so
//! running a window at a tight `k` produces bit-identical rows, the
//! same `d*`, and the same traceback whenever `d* <= k`, and a clean
//! [`AlignError::NoAlignment`] otherwise. The hinted driver
//! ([`crate::window::align_with_workspace_hinted`]) exploits exactly
//! this: mapper-derived edit bounds shrink the row sweep, and a failed
//! tight run is *rescued* by rerunning at the full budget, preserving
//! bit-identity with the unbanded engine by construction. Two cheap
//! exits ride along: the **infeasibility pre-flight** (a window whose
//! pattern outruns `n + k` can never fire the solution bit, so it is
//! abandoned before any row — hopeless windows cost O(1)), and the
//! per-row counters feeding [`MemStats::band_cells_skipped`] /
//! [`MemStats::peak_band_rows`].
//!
//! Banding the *text-column* dimension, by contrast, is unsound here:
//! the single-word Bitap row has horizontal free propagation (the
//! shifted-in active bit 0 encodes the free text prefix), so column
//! activity reaches every column once `d >= m - n`, and dropping
//! conservatively-dead columns can still flip a traceback edge pick —
//! violating the same-ops invariant. The per-row `(first, len)` storage
//! in [`TbTable`] generalizes DENT's cut mechanically, but the engine
//! drives it at the uniform provably-safe cut.

use align_core::{AlignError, CigarOp};

use crate::bitvec::{init_row, step_row, step_row0, step_row_edges, PatternMask};
use crate::config::GenAsmConfig;
use crate::stats::MemStats;
use crate::table::{slot, TbTable};
use crate::workspace::AlignWorkspace;

/// Result of aligning one window; the committed operations are left in
/// [`AlignWorkspace::window_ops`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSummary {
    /// Minimal edit count for the full pattern window against a prefix
    /// of the (un-reversed) text window.
    pub d_star: usize,
    /// Pattern characters consumed by the committed operations.
    pub q_consumed: usize,
    /// Text characters consumed by the committed operations.
    pub t_consumed: usize,
}

/// Result of [`align_window_fresh`]: a [`WindowSummary`] plus an owned
/// copy of the committed operations, for one-shot callers that don't
/// manage a workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowResult {
    /// Minimal edit count for the full pattern window.
    pub d_star: usize,
    /// Committed operations, in forward order.
    pub ops: Vec<CigarOp>,
    /// Pattern characters consumed by the committed operations.
    pub q_consumed: usize,
    /// Text characters consumed by the committed operations.
    pub t_consumed: usize,
}

/// Align the window staged in `ws` (see [`AlignWorkspace::set_window`]).
///
/// * `keep` — maximum pattern/text characters to commit (`W - O` for
///   non-final windows, `m` for final ones);
/// * `final_window` — final windows walk the full traceback and use a
///   cut of 0.
///
/// The committed operations are appended to a cleared
/// [`AlignWorkspace::window_ops`]; instrumentation accumulates into
/// `ws.stats`. A warm workspace makes this entirely allocation-free.
///
/// Returns [`AlignError::NoAlignment`] when the window needs more than
/// `cfg.k` edits (impossible when `cfg.k == cfg.w`).
pub fn align_window(
    ws: &mut AlignWorkspace,
    cfg: &GenAsmConfig,
    keep: usize,
    final_window: bool,
) -> Result<WindowSummary, AlignError> {
    let n = ws.text_rev.len();
    assert!(n >= 1, "empty text window");
    assert!(keep >= 1, "keep must be positive");
    // Infeasibility pre-flight: a solution consumes every pattern char
    // via a text-consuming diagonal step or a 1-edit insertion, so it
    // needs `m <= n + d*`. When even the full budget cannot bridge the
    // length gap the window is hopeless — abandon it before computing
    // a single row (O(1), not O(k·n)). This only fires under tight
    // per-window edit bounds; `k = w >= m` windows always pass.
    if ws.pm.len() > n + cfg.k {
        ws.stats.windows_early_terminated += 1;
        ws.stats.band_cells_skipped += ((cfg.k + 1) * n) as u64;
        return Err(AlignError::NoAlignment);
    }
    let wpe = cfg.words_per_entry();
    let cut = if final_window || !cfg.improvements.dent {
        0
    } else {
        n.saturating_sub(keep + 1)
    };
    ws.table.reset(wpe, n, cut);
    ws.ensure_scratch(n);

    // Disjoint borrows of the workspace fields for the DP loops.
    let AlignWorkspace {
        pm,
        text_rev,
        prev_row,
        cur_row,
        table,
        ops,
        stats,
        ..
    } = ws;

    let solution = pm.solution_bit();
    let mut d_star: Option<usize> = None;

    for d in 0..=cfg.k {
        table.begin_row();
        // Tight row kernels: the whole row is computed into `cur_row`
        // with running `cur_prev`/`below_prev` registers and no
        // per-cell bookkeeping; accounting and table stores follow in
        // bulk with totals identical to the former per-cell counting.
        let mut cur_prev = init_row(d);
        if d == 0 {
            for i in 0..n {
                let val = step_row0(cur_prev, pm.get(text_rev[i]));
                cur_row[i] = val;
                cur_prev = val;
            }
        } else {
            let mut below_prev = init_row(d - 1);
            for i in 0..n {
                let below_cur = prev_row[i];
                let val = step_row(below_prev, below_cur, cur_prev, pm.get(text_rev[i]));
                cur_row[i] = val;
                below_prev = below_cur;
                cur_prev = val;
            }
        }
        // Every cell stores once; rows d > 0 load `prev_row[i]` once
        // per cell plus `prev_row[i-1]` for each i > 0.
        stats.cells_computed += n as u64;
        stats.scratch_stores += n as u64;
        if d > 0 {
            stats.scratch_loads += (2 * n - 1) as u64;
        }
        if wpe == 1 {
            table.push_row_compressed(&cur_row[cut..n], stats);
        } else if d == 0 {
            // Row 0 has only match edges; the other slots are inactive
            // (all ones).
            for &word in &cur_row[cut..n] {
                table.push_entry(&[word, !0, !0, !0], stats);
            }
        } else {
            let below_init = init_row(d - 1);
            let cur_init = init_row(d);
            for i in cut..n {
                let below_prev = if i == 0 { below_init } else { prev_row[i - 1] };
                let cur_prev = if i == 0 { cur_init } else { cur_row[i - 1] };
                let edges = step_row_edges(below_prev, prev_row[i], cur_prev, pm.get(text_rev[i]));
                table.push_entry(&edges, stats);
            }
        }
        if d_star.is_none() && cur_row[n - 1] & solution == 0 {
            d_star = Some(d);
            if cfg.improvements.early_term {
                std::mem::swap(prev_row, cur_row);
                break;
            }
        }
        std::mem::swap(prev_row, cur_row);
    }

    let d_star = d_star.ok_or(AlignError::NoAlignment)?;
    stats.windows += 1;
    let rows = table.rows() as u64;
    stats.rows_computed += rows;
    stats.peak_band_rows = stats.peak_band_rows.max(rows);
    let full_rows = cfg.k as u64 + 1;
    if rows < full_rows {
        stats.windows_early_terminated += 1;
        stats.band_cells_skipped += (full_rows - rows) * n as u64;
    }
    table.account_footprint(stats);

    let (q_consumed, t_consumed) =
        traceback(table, pm, text_rev, d_star, keep, final_window, ops, stats);
    Ok(WindowSummary {
        d_star,
        q_consumed,
        t_consumed,
    })
}

/// One-shot convenience: align a single window from explicit inputs
/// with a transient workspace (tests, benchmarks, exploratory use).
/// Batch callers should hold an [`AlignWorkspace`] and call
/// [`align_window`] instead.
pub fn align_window_fresh(
    pm: &PatternMask,
    text_rev: &[u8],
    cfg: &GenAsmConfig,
    keep: usize,
    final_window: bool,
    stats: &mut MemStats,
) -> Result<WindowResult, AlignError> {
    let mut ws = AlignWorkspace::new();
    ws.set_window_raw(pm.clone(), text_rev);
    let result = align_window(&mut ws, cfg, keep, final_window);
    // Merge even on failure: abandoned windows report their pre-flight
    // and band counters too.
    stats.merge(&ws.stats);
    let summary = result?;
    Ok(WindowResult {
        d_star: summary.d_star,
        ops: ws.ops.clone(),
        q_consumed: summary.q_consumed,
        t_consumed: summary.t_consumed,
    })
}

/// Load `R[d][i]` for the compressed layout, folding in the virtual
/// init column `i == -1` (represented here by `i_plus_1 == 0`).
#[inline]
fn load_r(table: &TbTable, d: usize, i_plus_1: usize, stats: &mut MemStats) -> u64 {
    if i_plus_1 == 0 {
        init_row(d)
    } else {
        table.load(d, i_plus_1 - 1, 0, stats)
    }
}

/// Whether bit `j` of `word` is active (0).
#[inline(always)]
fn active(word: u64, j: usize) -> bool {
    word & (1u64 << j) == 0
}

/// GenASM-TB: walk the stored table from the solution entry, emitting
/// operations in forward order (the inputs are reversed) into `ops`
/// (cleared first). Returns `(q_consumed, t_consumed)`.
///
/// The walk starts at `(i = n-1, d = d_star, j = m-1)` and stops when
/// the pattern is consumed (`j < 0`) or — for non-final windows — when
/// either `keep` pattern or `keep` text characters have been consumed.
///
/// Edge priority is match > substitution > deletion > insertion; any
/// active predecessor is cost-safe (DESIGN.md §5).
#[allow(clippy::too_many_arguments)]
fn traceback(
    table: &TbTable,
    pm: &PatternMask,
    text_rev: &[u8],
    d_star: usize,
    keep: usize,
    final_window: bool,
    ops: &mut Vec<CigarOp>,
    stats: &mut MemStats,
) -> (usize, usize) {
    let m = pm.len();
    let n = text_rev.len();
    ops.clear();
    let mut d = d_star;
    // `i` is the current text column + 1 so that 0 encodes the virtual
    // init column; `j` is the current pattern bit + 1 likewise.
    let mut i = n;
    let mut j = m;
    let mut qc = 0usize; // pattern chars consumed
    let mut tc = 0usize; // text chars consumed

    while j > 0 && (final_window || (qc < keep && tc < keep)) {
        let op = if i == 0 {
            // Text exhausted: only pattern-consuming edits remain. The
            // init vectors certify them (bit j-1 active iff j <= d).
            debug_assert!(d > 0 && active(init_row(d), j - 1));
            CigarOp::Ins
        } else if table.words_per_entry() == 4 {
            pick_edge_stored(table, text_rev, pm, i, d, j, stats)
        } else {
            pick_edge_derived(table, text_rev, pm, i, d, j, stats)
        };
        match op {
            CigarOp::Match | CigarOp::Mismatch => {
                debug_assert!(i > 0, "diagonal op with no text left");
                ops.push(op);
                i -= 1;
                j -= 1;
                qc += 1;
                tc += 1;
                if op == CigarOp::Mismatch {
                    d -= 1;
                }
            }
            CigarOp::Del => {
                debug_assert!(i > 0, "deletion with no text left");
                ops.push(CigarOp::Del);
                i -= 1;
                tc += 1;
                d -= 1;
            }
            CigarOp::Ins => {
                ops.push(CigarOp::Ins);
                j -= 1;
                qc += 1;
                d -= 1;
            }
        }
    }
    if final_window {
        debug_assert_eq!(j, 0, "final window must consume the whole pattern");
        debug_assert_eq!(
            ops.iter().map(|o| o.cost()).sum::<usize>(),
            d_star,
            "final-window traceback cost must equal d*"
        );
    }
    (qc, tc)
}

/// Edge selection for the unimproved 4-word layout: read the stored edge
/// vectors of the current entry in priority order.
#[inline]
fn pick_edge_stored(
    table: &TbTable,
    text_rev: &[u8],
    pm: &PatternMask,
    i: usize,
    d: usize,
    j: usize,
    stats: &mut MemStats,
) -> CigarOp {
    debug_assert!(i > 0, "stored-edge traceback positioned at init column");
    let col = i - 1;
    let mword = table.load(d, col, slot::MATCH, stats);
    if active(mword, j - 1) {
        // The match vector is (R<<1)|PM; an active bit means both a
        // pattern match here and an active diagonal predecessor.
        return CigarOp::Match;
    }
    if d > 0 {
        let sword = table.load(d, col, slot::SUBST, stats);
        if active(sword, j - 1) {
            return CigarOp::Mismatch;
        }
        let dword = table.load(d, col, slot::DEL, stats);
        if active(dword, j - 1) {
            return CigarOp::Del;
        }
        let iword = table.load(d, col, slot::INS, stats);
        if active(iword, j - 1) {
            return CigarOp::Ins;
        }
    }
    unreachable!(
        "no active edge at (col={col}, d={d}, j={}) — DC/TB inconsistency; pm bit {}",
        j - 1,
        active(pm.get(text_rev[col]), j - 1)
    )
}

/// Edge selection for the compressed layout: re-derive the four edge
/// conditions from neighbouring stored entries and the pattern mask
/// (improvement 1 — this is what makes storing only the AND sufficient).
#[inline]
fn pick_edge_derived(
    table: &TbTable,
    text_rev: &[u8],
    pm: &PatternMask,
    i: usize,
    d: usize,
    j: usize,
    stats: &mut MemStats,
) -> CigarOp {
    // Match: needs a text column, a pattern match at (j-1), and an
    // active diagonal predecessor R[d][i-1] bit j-2 (or j == 1: the
    // shifted-in active bit).
    if i > 0 && active(pm.get(text_rev[i - 1]), j - 1) {
        let diag_ok = j == 1 || {
            let r = load_r(table, d, i - 1, stats);
            active(r, j - 2)
        };
        if diag_ok {
            return CigarOp::Match;
        }
    }
    if d > 0 {
        if i > 0 {
            // Substitution and deletion both read R[d-1][i-1].
            let below_prev = load_r(table, d - 1, i - 1, stats);
            if j == 1 || active(below_prev, j - 2) {
                return CigarOp::Mismatch;
            }
            if active(below_prev, j - 1) {
                return CigarOp::Del;
            }
        }
        // Insertion reads R[d-1][i] (same column, one error fewer).
        let below_cur = load_r(table, d - 1, i, stats);
        if j == 1 || active(below_cur, j - 2) {
            return CigarOp::Ins;
        }
    }
    unreachable!(
        "no active edge at (i={}, d={d}, j={}) — DC/TB inconsistency",
        i as isize - 1,
        j - 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    fn rev_codes(s: &Seq) -> Vec<u8> {
        (0..s.len()).rev().map(|i| s.get_code(i)).collect()
    }

    /// Run a single *final* window over full short sequences.
    fn align_once(q: &str, t: &str, cfg: &GenAsmConfig) -> (WindowResult, MemStats) {
        let q = seq(q);
        let t = seq(t);
        let pm = PatternMask::new_reversed_window(&q, 0, q.len());
        let trev = rev_codes(&t);
        let mut stats = MemStats::new();
        let res = align_window_fresh(&pm, &trev, cfg, q.len(), true, &mut stats).unwrap();
        (res, stats)
    }

    fn cfg_improved() -> GenAsmConfig {
        GenAsmConfig::improved()
    }

    fn cfg_baseline() -> GenAsmConfig {
        GenAsmConfig::baseline()
    }

    #[test]
    fn exact_match_window() {
        for cfg in [cfg_improved(), cfg_baseline()] {
            let (res, _) = align_once("ACGTACGT", "ACGTACGT", &cfg);
            assert_eq!(res.d_star, 0, "{cfg:?}");
            assert_eq!(res.q_consumed, 8);
            assert_eq!(res.t_consumed, 8);
            assert!(res.ops.iter().all(|&o| o == CigarOp::Match));
        }
    }

    #[test]
    fn one_substitution() {
        for cfg in [cfg_improved(), cfg_baseline()] {
            let (res, _) = align_once("ACGT", "AGGT", &cfg);
            assert_eq!(res.d_star, 1);
            let cost: usize = res.ops.iter().map(|o| o.cost()).sum();
            assert_eq!(cost, 1);
            assert_eq!(res.ops.len(), 4);
        }
    }

    #[test]
    fn one_insertion_and_deletion() {
        for cfg in [cfg_improved(), cfg_baseline()] {
            // query has an extra char: expect one I
            let (res, _) = align_once("ACGT", "AGT", &cfg);
            assert_eq!(res.d_star, 1, "{cfg:?}");
            assert_eq!(res.q_consumed, 4);
            assert_eq!(res.t_consumed, 3);
            // target has an extra char: expect one D (or cost-1 equivalent)
            let (res, _) = align_once("AGT", "ACGT", &cfg);
            assert_eq!(res.d_star, 1);
            assert_eq!(res.q_consumed, 3);
        }
    }

    #[test]
    fn improved_and_baseline_agree_on_ops() {
        let cases = [
            ("ACGTACGTAC", "ACGTACGTAC"),
            ("ACGTACGTAC", "ACGAACGTAC"),
            ("ACGTACGTAC", "ACGTACG"),
            ("ACGTA", "TTTTTTT"),
            ("A", "T"),
            ("A", "A"),
        ];
        for (q, t) in cases {
            let (a, _) = align_once(q, t, &cfg_improved());
            let (b, _) = align_once(q, t, &cfg_baseline());
            assert_eq!(a.d_star, b.d_star, "{q} vs {t}");
            assert_eq!(a.ops, b.ops, "{q} vs {t}");
        }
    }

    #[test]
    fn d_star_matches_oracle_distance_for_prefix_semantics() {
        // For equal-length windows where the optimum consumes the whole
        // text, d* equals the NW distance.
        let cases = [("ACGTACGT", "ACCTACGT"), ("AAAA", "AATA"), ("ACGT", "TGCA")];
        for (q, t) in cases {
            let (res, _) = align_once(q, t, &cfg_improved());
            let d = align_core::nw_distance(&seq(q), &seq(t));
            // Bitap may consume less text (free original-text tail), so
            // d* <= NW distance; with leftover charged it can't be
            // cheaper than optimal.
            let leftover = t.len() - res.t_consumed;
            assert!(res.d_star <= d, "{q} vs {t}");
            assert!(res.d_star + leftover >= d, "{q} vs {t}");
        }
    }

    #[test]
    fn early_termination_reduces_rows() {
        let (_, s_imp) = align_once("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", &cfg_improved());
        let (_, s_base) = align_once("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", &cfg_baseline());
        assert_eq!(s_imp.rows_computed, 1); // exact match: only row 0
        assert_eq!(s_base.rows_computed, 65); // k+1 rows, always
        assert!(s_base.table_words > 24 * s_imp.table_words);
    }

    #[test]
    fn infeasible_window_is_abandoned_before_any_row() {
        // m = 16 > n + k = 3 + 4: no path can consume the pattern, so
        // the pre-flight must reject without computing a single cell.
        let q = seq("ACGTACGTACGTACGT");
        let t = seq("ACG");
        let pm = PatternMask::new_reversed_window(&q, 0, q.len());
        let trev = rev_codes(&t);
        let mut cfg = GenAsmConfig::improved();
        cfg.k = 4;
        let mut stats = MemStats::new();
        let err = align_window_fresh(&pm, &trev, &cfg, q.len(), true, &mut stats).unwrap_err();
        assert_eq!(err, AlignError::NoAlignment);
        assert_eq!(stats.cells_computed, 0, "pre-flight must skip all rows");
        assert_eq!(stats.rows_computed, 0);
        assert_eq!(stats.windows_early_terminated, 1);
        assert_eq!(stats.band_cells_skipped, 5 * 3);
    }

    #[test]
    fn band_counters_track_early_termination() {
        let (_, s_imp) = align_once("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", &cfg_improved());
        // Exact match, k = 64: row 0 fires, 64 rows of 16 cells skipped.
        assert_eq!(s_imp.windows_early_terminated, 1);
        assert_eq!(s_imp.band_cells_skipped, 64 * 16);
        assert_eq!(s_imp.peak_band_rows, 1);
        let (_, s_base) = align_once("ACGTACGTACGTACGT", "ACGTACGTACGTACGT", &cfg_baseline());
        assert_eq!(s_base.windows_early_terminated, 0);
        assert_eq!(s_base.band_cells_skipped, 0);
        assert_eq!(s_base.peak_band_rows, 65);
    }

    #[test]
    fn no_alignment_when_budget_too_small() {
        let q = seq("AAAAAAAA");
        let t = seq("TTTTTTTT");
        let pm = PatternMask::new_reversed_window(&q, 0, q.len());
        let trev = rev_codes(&t);
        let mut cfg = GenAsmConfig::improved();
        cfg.k = 3;
        let mut stats = MemStats::new();
        let err = align_window_fresh(&pm, &trev, &cfg, q.len(), true, &mut stats).unwrap_err();
        assert_eq!(err, AlignError::NoAlignment);
    }

    #[test]
    fn cut_walk_respects_keep() {
        // Non-final window with keep=4 must not consume more than 4 of
        // either sequence.
        let q = seq("ACGTACGTACGT");
        let t = seq("ACGTACGTACGT");
        let pm = PatternMask::new_reversed_window(&q, 0, q.len());
        let trev = rev_codes(&t);
        let mut cfg = GenAsmConfig::improved();
        cfg.w = 12;
        cfg.o = 8;
        cfg.k = 12;
        let mut stats = MemStats::new();
        let res = align_window_fresh(&pm, &trev, &cfg, cfg.keep(), false, &mut stats).unwrap();
        assert_eq!(res.q_consumed, 4);
        assert_eq!(res.t_consumed, 4);
        assert_eq!(res.ops.len(), 4);
    }

    #[test]
    fn dent_prunes_columns_for_nonfinal_windows() {
        let q = seq("ACGTACGTACGTACGTACGTACGTACGTACGT"); // 32
        let t = q.clone();
        let pm = PatternMask::new_reversed_window(&q, 0, q.len());
        let trev = rev_codes(&t);
        let mut with_dent = GenAsmConfig::improved();
        with_dent.w = 32;
        with_dent.o = 24;
        with_dent.k = 32;
        let mut without = with_dent;
        without.improvements.dent = false;
        let mut s1 = MemStats::new();
        let mut s2 = MemStats::new();
        let r1 =
            align_window_fresh(&pm, &trev, &with_dent, with_dent.keep(), false, &mut s1).unwrap();
        let r2 = align_window_fresh(&pm, &trev, &without, without.keep(), false, &mut s2).unwrap();
        assert_eq!(r1.ops, r2.ops, "DENT must not change the result");
        // cut = n - keep - 1 = 32 - 8 - 1 = 23 -> 9 of 32 columns stored
        assert_eq!(s1.table_words, 9);
        assert_eq!(s2.table_words, 32);
    }

    #[test]
    fn final_window_cost_equals_d_star_plus_validity() {
        let (res, _) = align_once("ACGTTGCA", "ACGATGCA", &cfg_improved());
        let cost: usize = res.ops.iter().map(|o| o.cost()).sum();
        assert_eq!(cost, res.d_star);
    }

    #[test]
    fn reused_workspace_matches_fresh_per_window() {
        // The same workspace driven across dissimilar windows must give
        // the same summaries and ops as fresh workspaces.
        let cases = [
            ("ACGTACGTAC", "ACGTACGTAC"),
            ("ACGTA", "TTTTTTT"),
            ("ACGTACGTAC", "ACGAACGTAC"),
            ("A", "T"),
            ("TTTTACGT", "ACGTTTTT"),
        ];
        let cfg = cfg_improved();
        let mut ws = AlignWorkspace::new();
        for (q, t) in cases {
            let (fresh, _) = align_once(q, t, &cfg);
            let q = seq(q);
            let t = seq(t);
            ws.set_window(&q, 0, q.len(), &t, 0, t.len());
            let reused = align_window(&mut ws, &cfg, q.len(), true).unwrap();
            assert_eq!(reused.d_star, fresh.d_star);
            assert_eq!(reused.q_consumed, fresh.q_consumed);
            assert_eq!(reused.t_consumed, fresh.t_consumed);
            assert_eq!(ws.window_ops(), &fresh.ops[..]);
        }
    }
}
