//! Configuration of the GenASM aligner: window geometry, edit budget,
//! and the three algorithmic improvements (individually toggleable for
//! the ablation experiment A1).

use crate::bitvec::MAX_W;

/// Which of the paper's three improvements are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Improvements {
    /// Improvement 1 — entry compression: store one word per DP entry
    /// (the AND of the edge vectors) instead of the four edge vectors.
    pub compress: bool,
    /// Improvement 2 — early termination: evaluate error rows in
    /// ascending order and stop at the first row containing the full
    /// solution.
    pub early_term: bool,
    /// Improvement 3 — traceback-reachability pruning: do not store DP
    /// entries the traceback provably cannot read.
    pub dent: bool,
}

impl Improvements {
    /// All improvements off: the unimproved GenASM of Senol Cali et al.
    pub const NONE: Improvements = Improvements {
        compress: false,
        early_term: false,
        dent: false,
    };

    /// All improvements on: the paper's contribution.
    pub const ALL: Improvements = Improvements {
        compress: true,
        early_term: true,
        dent: true,
    };

    /// Name used in ablation reports, e.g. `"+compress+et"`.
    pub fn label(&self) -> String {
        if *self == Improvements::NONE {
            return "baseline".to_string();
        }
        let mut s = String::new();
        if self.compress {
            s.push_str("+compress");
        }
        if self.early_term {
            s.push_str("+et");
        }
        if self.dent {
            s.push_str("+dent");
        }
        s
    }

    /// All 8 combinations, for the ablation sweep.
    pub fn all_combinations() -> Vec<Improvements> {
        let mut v = Vec::with_capacity(8);
        for bits in 0..8u8 {
            v.push(Improvements {
                compress: bits & 1 != 0,
                early_term: bits & 2 != 0,
                dent: bits & 4 != 0,
            });
        }
        v
    }
}

/// Full configuration of the windowed GenASM aligner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenAsmConfig {
    /// Window size `W` (pattern and text characters per window), `1..=64`.
    pub w: usize,
    /// Window overlap `O < W`. Each non-final window commits only its
    /// first `W - O` consumed characters.
    pub o: usize,
    /// Per-window edit budget `k <= W`. With `k = W` a window can never
    /// fail; smaller budgets make `GenAsmAligner::align` return
    /// `NoAlignment` when a window needs more edits.
    pub k: usize,
    /// Enabled improvements.
    pub improvements: Improvements,
}

impl GenAsmConfig {
    /// The paper's configuration with all improvements: `W = 64`,
    /// `O = 24`, `k = W`.
    pub fn improved() -> GenAsmConfig {
        GenAsmConfig {
            w: 64,
            o: 24,
            k: 64,
            improvements: Improvements::ALL,
        }
    }

    /// Unimproved GenASM (the MICRO 2020 algorithm) with the same window
    /// geometry.
    pub fn baseline() -> GenAsmConfig {
        GenAsmConfig {
            improvements: Improvements::NONE,
            ..GenAsmConfig::improved()
        }
    }

    /// Number of characters committed per non-final window.
    pub fn keep(&self) -> usize {
        self.w - self.o
    }

    /// Validate the geometry; panics with a clear message on invalid
    /// configurations (these are programming errors, not data errors).
    pub fn validate(&self) {
        assert!(
            self.w >= 1 && self.w <= MAX_W,
            "window size W={} must be in 1..=64",
            self.w
        );
        assert!(
            self.o < self.w,
            "overlap O={} must be < W={}",
            self.o,
            self.w
        );
        assert!(
            self.k <= self.w,
            "edit budget k={} must be <= W={} (one bitvector row per error)",
            self.k,
            self.w
        );
    }

    /// Words stored per DP entry under this configuration.
    pub fn words_per_entry(&self) -> usize {
        if self.improvements.compress {
            1
        } else {
            4
        }
    }
}

impl Default for GenAsmConfig {
    fn default() -> GenAsmConfig {
        GenAsmConfig::improved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let imp = GenAsmConfig::improved();
        imp.validate();
        assert_eq!(imp.keep(), 40);
        assert_eq!(imp.words_per_entry(), 1);
        let base = GenAsmConfig::baseline();
        base.validate();
        assert_eq!(base.words_per_entry(), 4);
        assert_eq!(base.w, imp.w);
    }

    #[test]
    fn labels() {
        assert_eq!(Improvements::NONE.label(), "baseline");
        assert_eq!(Improvements::ALL.label(), "+compress+et+dent");
        let only_et = Improvements {
            compress: false,
            early_term: true,
            dent: false,
        };
        assert_eq!(only_et.label(), "+et");
    }

    #[test]
    fn combinations_cover_all() {
        let all = Improvements::all_combinations();
        assert_eq!(all.len(), 8);
        assert!(all.contains(&Improvements::NONE));
        assert!(all.contains(&Improvements::ALL));
    }

    #[test]
    #[should_panic(expected = "must be < W")]
    fn invalid_overlap_panics() {
        GenAsmConfig {
            w: 32,
            o: 32,
            k: 32,
            improvements: Improvements::ALL,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "must be in 1..=64")]
    fn oversized_window_panics() {
        GenAsmConfig {
            w: 65,
            o: 24,
            k: 64,
            improvements: Improvements::ALL,
        }
        .validate();
    }
}
