//! Storage for the traceback DP table.
//!
//! One [`TbTable`] holds the materialized bitvectors of a single window.
//! Its layout is where two of the paper's three improvements live:
//!
//! * **entry compression** — `words_per_entry == 1` stores only the
//!   combined `R` vector per `(row, column)` entry; `words_per_entry ==
//!   4` is the unimproved layout storing the four edge vectors
//!   `(match, subst, del, ins)`;
//! * **DENT** — each row stores only the columns `cut ..= n-1`; the
//!   traceback provably never reads columns below `cut` (see
//!   [`crate::engine`] for the derivation of `cut`).
//!
//! Early termination manifests simply as the table containing fewer rows.
//!
//! ## Band-local rows
//!
//! Rows carry their own `(first column, stored length)` metadata rather
//! than one table-wide cut, so each row stores exactly its live band:
//! [`TbTable::begin_row_at`] opens a row at any first column, and
//! [`TbTable::load`] checks the *per-row* bounds (an out-of-band read
//! panics — that is a traceback bug, never a data condition). The
//! engine currently drives every row at the uniform DENT cut — the only
//! bound that is provably traceback-safe for this single-word Bitap
//! formulation (a pure-insertion walk prefix can reach any row at
//! column `n-2`, so per-row *upper* bounds tighter than `n` are
//! unsound, and column activity cannot shrink the lower bound beyond
//! the DENT argument without risking a changed edge pick). The band
//! that *is* sound to narrow is the `d` dimension, which the hinted
//! window driver exploits (see
//! [`crate::window::align_with_workspace_hinted`]).
//!
//! ## Arena layout and reuse
//!
//! Entries live in a single flat `Vec<u64>` arena with per-row
//! metadata — no per-row `Vec`s, so a traceback step costs one offset
//! lookup instead of a double pointer chase, and the whole table can be
//! **reused across windows**: [`TbTable::reset`] reshapes the table for
//! the next window while keeping both buffers' capacity, at a cost
//! proportional to the rows actually written, not the window's
//! worst-case size. After a few windows of warm-up, filling the table
//! performs no heap allocation (this is what
//! [`crate::workspace::AlignWorkspace`] relies on).
//!
//! Every word moved in or out of the table is counted in [`MemStats`],
//! because the table traffic is precisely what experiments E8/E9 ratio.

use crate::stats::MemStats;

/// Slot indices for uncompressed (4-word) entries.
pub mod slot {
    /// Match edge vector.
    pub const MATCH: usize = 0;
    /// Substitution edge vector.
    pub const SUBST: usize = 1;
    /// Text-consuming deletion edge vector.
    pub const DEL: usize = 2;
    /// Pattern-consuming insertion edge vector.
    pub const INS: usize = 3;
}

/// Placement of one stored row inside the arena.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    /// Word offset of the row's first entry in the arena.
    offset: usize,
    /// First text column the row stores.
    first: usize,
    /// Stored columns (entries), so the row covers
    /// `first .. first + len`.
    len: usize,
}

/// The materialized DP table of one window.
#[derive(Debug, Clone)]
pub struct TbTable {
    words_per_entry: usize,
    n: usize,
    cut: usize,
    /// Flat entry arena: rows are appended back to back.
    words: Vec<u64>,
    /// Placement of each stored row within `words`.
    rows: Vec<RowMeta>,
}

impl TbTable {
    /// Create an empty table for `n` text columns whose rows default to
    /// storing columns `cut..n`, at `words_per_entry` words per entry.
    pub fn new(words_per_entry: usize, n: usize, cut: usize) -> TbTable {
        let mut t = TbTable {
            words_per_entry: 1,
            n: 0,
            cut: 0,
            words: Vec::new(),
            rows: Vec::new(),
        };
        t.reset(words_per_entry, n, cut);
        t
    }

    /// Reshape for the next window, retaining the arena's capacity.
    /// Equivalent to `*self = TbTable::new(..)` without the allocation;
    /// costs O(1) regardless of how much the previous window stored.
    pub fn reset(&mut self, words_per_entry: usize, n: usize, cut: usize) {
        assert!(words_per_entry == 1 || words_per_entry == 4);
        assert!(
            cut < n || n == 0,
            "cut {cut} must leave at least one column of {n}"
        );
        self.words_per_entry = words_per_entry;
        self.n = n;
        self.cut = cut;
        self.words.clear();
        self.rows.clear();
    }

    /// Words stored per entry (1 = compressed, 4 = edge vectors).
    pub fn words_per_entry(&self) -> usize {
        self.words_per_entry
    }

    /// Number of stored rows (`d* + 1` with early termination).
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of text columns the window had.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Default first stored column of a row (the uniform DENT cut).
    pub fn cut(&self) -> usize {
        self.cut
    }

    /// Stored band of row `d` as `(first column, one-past-last)`.
    pub fn row_band(&self, d: usize) -> (usize, usize) {
        let r = self.rows[d];
        (r.first, r.first + r.len)
    }

    /// Total stored words (the footprint experiment E8 measures).
    pub fn footprint_words(&self) -> u64 {
        self.words.len() as u64
    }

    /// Arena capacity in words (stable across windows once warmed up;
    /// the workspace-reuse tests assert on this).
    pub fn capacity_words(&self) -> usize {
        self.words.capacity()
    }

    /// Begin a new row at the table's default cut; returns its index.
    pub fn begin_row(&mut self) -> usize {
        self.begin_row_at(self.cut)
    }

    /// Begin a new row whose first stored column is `first`; returns
    /// its index. This is the band-local generalization of the DENT
    /// cut: each row may store a different span of columns.
    pub fn begin_row_at(&mut self, first: usize) -> usize {
        debug_assert!(first < self.n || self.n == 0);
        self.rows.push(RowMeta {
            offset: self.words.len(),
            first,
            len: 0,
        });
        self.rows.len() - 1
    }

    /// Append the entry for the next column of the row under
    /// construction. `words` must hold exactly `words_per_entry` values.
    #[inline]
    pub fn push_entry(&mut self, words: &[u64], stats: &mut MemStats) {
        debug_assert_eq!(words.len(), self.words_per_entry);
        debug_assert!(!self.rows.is_empty(), "begin_row before push_entry");
        self.words.extend_from_slice(words);
        self.rows.last_mut().expect("open row").len += 1;
        stats.table_stores += self.words_per_entry as u64;
    }

    /// Append a whole run of compressed entries to the row under
    /// construction in one copy (the engine's bulk row store; identical
    /// arena contents and store accounting to per-entry pushes).
    #[inline]
    pub fn push_row_compressed(&mut self, vals: &[u64], stats: &mut MemStats) {
        debug_assert_eq!(self.words_per_entry, 1, "bulk store is compressed-only");
        debug_assert!(!self.rows.is_empty(), "begin_row before push");
        self.words.extend_from_slice(vals);
        self.rows.last_mut().expect("open row").len += vals.len();
        stats.table_stores += vals.len() as u64;
    }

    /// Load one word of entry `(d, i)`. `slot` must be 0 for compressed
    /// tables, or one of [`slot`] for 4-word tables.
    ///
    /// # Panics
    /// Panics if the entry lies outside row `d`'s stored band or was
    /// never computed — both indicate a traceback bug, not a data
    /// condition.
    #[inline]
    pub fn load(&self, d: usize, i: usize, slot: usize, stats: &mut MemStats) -> u64 {
        debug_assert!(slot < self.words_per_entry);
        let row = self.rows[d];
        assert!(
            i >= row.first,
            "traceback read column {i} below the stored band start {} of row {d} \
             (DENT unsoundness)",
            row.first
        );
        assert!(
            i < row.first + row.len,
            "traceback read column {i} past the stored band end {} of row {d} \
             (band unsoundness)",
            row.first + row.len
        );
        stats.table_loads += 1;
        self.words[row.offset + (i - row.first) * self.words_per_entry + slot]
    }

    /// Finalize: record the footprint high-water mark into `stats`.
    pub fn account_footprint(&self, stats: &mut MemStats) {
        stats.table_words += self.footprint_words();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_layout_roundtrip() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(1, 4, 1); // columns 1..4 stored
        t.begin_row();
        for v in [10u64, 20, 30] {
            t.push_entry(&[v], &mut stats);
        }
        t.begin_row();
        for v in [40u64, 50, 60] {
            t.push_entry(&[v], &mut stats);
        }
        assert_eq!(t.rows(), 2);
        assert_eq!(t.footprint_words(), 6);
        assert_eq!(stats.table_stores, 6);
        assert_eq!(t.load(0, 1, 0, &mut stats), 10);
        assert_eq!(t.load(0, 3, 0, &mut stats), 30);
        assert_eq!(t.load(1, 2, 0, &mut stats), 50);
        assert_eq!(stats.table_loads, 3);
    }

    #[test]
    fn four_word_layout_roundtrip() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(4, 2, 0);
        t.begin_row();
        t.push_entry(&[1, 2, 3, 4], &mut stats);
        t.push_entry(&[5, 6, 7, 8], &mut stats);
        assert_eq!(t.footprint_words(), 8);
        assert_eq!(t.load(0, 1, slot::MATCH, &mut stats), 5);
        assert_eq!(t.load(0, 1, slot::SUBST, &mut stats), 6);
        assert_eq!(t.load(0, 1, slot::DEL, &mut stats), 7);
        assert_eq!(t.load(0, 1, slot::INS, &mut stats), 8);
    }

    #[test]
    fn bulk_row_store_matches_per_entry_pushes() {
        let mut s1 = MemStats::new();
        let mut s2 = MemStats::new();
        let mut a = TbTable::new(1, 5, 2);
        let mut b = TbTable::new(1, 5, 2);
        a.begin_row();
        for v in [7u64, 8, 9] {
            a.push_entry(&[v], &mut s1);
        }
        b.begin_row();
        b.push_row_compressed(&[7, 8, 9], &mut s2);
        assert_eq!(s1.table_stores, s2.table_stores);
        assert_eq!(a.footprint_words(), b.footprint_words());
        for i in 2..5 {
            assert_eq!(a.load(0, i, 0, &mut s1), b.load(0, i, 0, &mut s2));
        }
        assert_eq!(a.row_band(0), (2, 5));
        assert_eq!(b.row_band(0), (2, 5));
    }

    #[test]
    #[should_panic(expected = "DENT unsoundness")]
    fn reading_pruned_column_panics() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(1, 4, 2);
        t.begin_row();
        t.push_entry(&[1], &mut stats);
        t.push_entry(&[2], &mut stats);
        let _ = t.load(0, 1, 0, &mut stats);
    }

    #[test]
    #[should_panic(expected = "band unsoundness")]
    fn reading_past_the_band_end_panics() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(1, 8, 0);
        // A band-local row covering columns 2..4 only.
        t.begin_row_at(2);
        t.push_entry(&[1], &mut stats);
        t.push_entry(&[2], &mut stats);
        assert_eq!(t.row_band(0), (2, 4));
        let _ = t.load(0, 4, 0, &mut stats);
    }

    #[test]
    fn rows_can_store_different_bands() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(1, 8, 0);
        t.begin_row_at(0);
        t.push_row_compressed(&[1, 2, 3], &mut stats); // columns 0..3
        t.begin_row_at(4);
        t.push_row_compressed(&[40, 50], &mut stats); // columns 4..6
        assert_eq!(t.row_band(0), (0, 3));
        assert_eq!(t.row_band(1), (4, 6));
        assert_eq!(t.load(0, 2, 0, &mut stats), 3);
        assert_eq!(t.load(1, 4, 0, &mut stats), 40);
        assert_eq!(t.footprint_words(), 5);
    }

    #[test]
    fn footprint_accounting() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(1, 3, 0);
        t.begin_row();
        for v in [1u64, 2, 3] {
            t.push_entry(&[v], &mut stats);
        }
        t.account_footprint(&mut stats);
        assert_eq!(stats.table_words, 3);
    }

    #[test]
    fn reset_reshapes_but_keeps_capacity() {
        let mut stats = MemStats::new();
        let mut t = TbTable::new(1, 8, 0);
        for _ in 0..3 {
            t.begin_row();
            for v in 0..8u64 {
                t.push_entry(&[v], &mut stats);
            }
        }
        let cap = t.capacity_words();
        assert!(cap >= 24);
        t.reset(4, 5, 2);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.footprint_words(), 0);
        assert_eq!(t.words_per_entry(), 4);
        assert_eq!(t.cols(), 5);
        assert_eq!(t.cut(), 2);
        assert_eq!(t.capacity_words(), cap, "reset must not shrink the arena");
        // Smaller refill stays within the warmed capacity.
        t.begin_row();
        for v in 0..3u64 {
            t.push_entry(&[v, v, v, v], &mut stats);
        }
        assert_eq!(t.load(0, 3, slot::SUBST, &mut stats), 1);
        assert_eq!(t.capacity_words(), cap);
    }
}
