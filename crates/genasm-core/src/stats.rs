//! Instrumentation counters for the paper's memory experiments (E8, E9).
//!
//! The paper's central quantitative claims are that the three
//! improvements reduce the DP table's **memory footprint by 24×** and
//! its **number of memory accesses by 12×**. We measure both directly:
//! every store to / load from the materialized traceback table is
//! counted in word units, and the footprint of each window's table is
//! recorded at its high-water mark.
//!
//! Scratch traffic (the two-row rolling state of the distance pass) is
//! counted separately: it is the part of the working set that stays in
//! registers/on-chip memory in both the baseline and the improved
//! algorithm, so the paper's ratios are about *table* traffic. Reports
//! show both so nothing is hidden.

/// Counters for one alignment (or one batch; they add).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Number of windows processed.
    pub windows: u64,
    /// Error rows computed, summed over windows (`d* + 1` with early
    /// termination, `k + 1` without).
    pub rows_computed: u64,
    /// DP cells (row × column intersections) evaluated.
    pub cells_computed: u64,
    /// High-water footprint of the materialized traceback tables, in
    /// 64-bit words, summed over windows.
    pub table_words: u64,
    /// Word stores into the traceback table.
    pub table_stores: u64,
    /// Word loads from the traceback table (traceback walk).
    pub table_loads: u64,
    /// Word stores to the rolling scratch rows of the distance pass.
    pub scratch_stores: u64,
    /// Word loads from the rolling scratch rows of the distance pass.
    pub scratch_loads: u64,
    /// DP cells *not* evaluated relative to the full `(k+1) × n` sweep
    /// of each window's configured edit budget. Early termination, the
    /// infeasibility pre-flight, and tight per-window edit bounds all
    /// contribute (see `crate::window::align_with_workspace_hinted`).
    pub band_cells_skipped: u64,
    /// Windows whose error-row loop stopped before the full budget:
    /// the solution bit fired early, or the pre-flight proved the
    /// window hopeless before any row was computed.
    pub windows_early_terminated: u64,
    /// Hinted alignments whose tight edit band came up empty and were
    /// rerun at the full `k` (the rescue path; each rescue reruns the
    /// whole alignment, so results stay bit-identical to unbanded).
    pub windows_rescued: u64,
    /// Widest error band actually computed for any single window, in
    /// rows of the `d` dimension. **Max-merged**, not summed.
    pub peak_band_rows: u64,
}

impl MemStats {
    /// Zeroed counters.
    pub fn new() -> MemStats {
        MemStats::default()
    }

    /// Total accesses (loads + stores) to the materialized table.
    pub fn table_accesses(&self) -> u64 {
        self.table_stores + self.table_loads
    }

    /// Total accesses including scratch traffic.
    pub fn total_accesses(&self) -> u64 {
        self.table_accesses() + self.scratch_stores + self.scratch_loads
    }

    /// Footprint in bytes.
    pub fn table_bytes(&self) -> u64 {
        self.table_words * 8
    }

    /// Mean footprint per window in bytes (0 when no windows ran).
    pub fn mean_table_bytes_per_window(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.table_bytes() as f64 / self.windows as f64
    }

    /// Mean rows computed per window.
    pub fn mean_rows_per_window(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.rows_computed as f64 / self.windows as f64
    }

    /// Accumulate another counter set.
    pub fn merge(&mut self, other: &MemStats) {
        self.windows += other.windows;
        self.rows_computed += other.rows_computed;
        self.cells_computed += other.cells_computed;
        self.table_words += other.table_words;
        self.table_stores += other.table_stores;
        self.table_loads += other.table_loads;
        self.scratch_stores += other.scratch_stores;
        self.scratch_loads += other.scratch_loads;
        self.band_cells_skipped += other.band_cells_skipped;
        self.windows_early_terminated += other.windows_early_terminated;
        self.windows_rescued += other.windows_rescued;
        self.peak_band_rows = self.peak_band_rows.max(other.peak_band_rows);
    }

    /// Single-line JSON object with every counter (used by the
    /// pipeline's machine-readable metrics expositions).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"windows\":{},\"rows_computed\":{},\"cells_computed\":{},\
             \"table_words\":{},\"table_stores\":{},\"table_loads\":{},\
             \"scratch_stores\":{},\"scratch_loads\":{},\
             \"band_cells_skipped\":{},\"windows_early_terminated\":{},\
             \"windows_rescued\":{},\"peak_band_rows\":{}}}",
            self.windows,
            self.rows_computed,
            self.cells_computed,
            self.table_words,
            self.table_stores,
            self.table_loads,
            self.scratch_stores,
            self.scratch_loads,
            self.band_cells_skipped,
            self.windows_early_terminated,
            self.windows_rescued,
            self.peak_band_rows
        )
    }

    /// Footprint reduction factor of `self` (baseline) over `improved`.
    pub fn footprint_reduction_vs(&self, improved: &MemStats) -> f64 {
        ratio(self.table_words as f64, improved.table_words as f64)
    }

    /// Access reduction factor of `self` (baseline) over `improved`.
    pub fn access_reduction_vs(&self, improved: &MemStats) -> f64 {
        ratio(
            self.table_accesses() as f64,
            improved.table_accesses() as f64,
        )
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = MemStats {
            windows: 1,
            rows_computed: 5,
            cells_computed: 100,
            table_words: 40,
            table_stores: 40,
            table_loads: 10,
            scratch_stores: 64,
            scratch_loads: 64,
            ..MemStats::default()
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.windows, 2);
        assert_eq!(a.table_words, 80);
        assert_eq!(a.table_accesses(), 100);
        assert_eq!(a.total_accesses(), 356);
    }

    #[test]
    fn merge_sums_band_counters_but_maxes_peak() {
        let mut a = MemStats {
            band_cells_skipped: 100,
            windows_early_terminated: 2,
            windows_rescued: 1,
            peak_band_rows: 5,
            ..MemStats::default()
        };
        let b = MemStats {
            band_cells_skipped: 50,
            windows_early_terminated: 3,
            windows_rescued: 0,
            peak_band_rows: 9,
            ..MemStats::default()
        };
        a.merge(&b);
        assert_eq!(a.band_cells_skipped, 150);
        assert_eq!(a.windows_early_terminated, 5);
        assert_eq!(a.windows_rescued, 1);
        assert_eq!(a.peak_band_rows, 9, "peak is a high-water mark");
    }

    #[test]
    fn reductions() {
        let base = MemStats {
            table_words: 2400,
            table_stores: 2400,
            table_loads: 0,
            ..MemStats::default()
        };
        let imp = MemStats {
            table_words: 100,
            table_stores: 100,
            table_loads: 100,
            ..MemStats::default()
        };
        assert!((base.footprint_reduction_vs(&imp) - 24.0).abs() < 1e-9);
        assert!((base.access_reduction_vs(&imp) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn json_lists_all_counters() {
        let s = MemStats {
            windows: 3,
            band_cells_skipped: 12,
            peak_band_rows: 7,
            ..MemStats::default()
        };
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"windows\":3"), "{j}");
        assert!(j.contains("\"band_cells_skipped\":12"), "{j}");
        assert!(j.contains("\"peak_band_rows\":7"), "{j}");
    }

    #[test]
    fn zero_windows_means_zero_means() {
        let s = MemStats::new();
        assert_eq!(s.mean_table_bytes_per_window(), 0.0);
        assert_eq!(s.mean_rows_per_window(), 0.0);
        assert_eq!(s.footprint_reduction_vs(&s), 1.0);
    }
}
