//! The Bitap bitvector engine: pattern bitmasks and the GenASM-DC
//! recurrence step.
//!
//! Conventions (GenASM, see DESIGN.md §5):
//!
//! * a **0 bit is active**: bit `j` of `R[d]` is 0 iff the pattern prefix
//!   `P[0..=j]` aligns to a suffix of the processed text with at most `d`
//!   edits;
//! * `PM[c]` has bit `j` = 0 iff `P[j] == c`;
//! * shifting left brings a 0 (active) into bit 0, which is what lets a
//!   match start at any text position (Bitap's free text prefix);
//! * the initial vector for row `d` (before any text character) is
//!   `!0 << d`: the first `d` pattern characters may be consumed by
//!   pattern-only edits.
//!
//! These functions are shared verbatim by the CPU aligner and the GPU
//! kernels, so the two implementations cannot drift apart.

use align_core::Seq;

/// Maximum pattern window length: one bit per pattern position in a
/// 64-bit machine word.
pub const MAX_W: usize = 64;

/// Per-character pattern bitmasks for a pattern window of length `m <= 64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternMask {
    masks: [u64; 4],
    m: usize,
}

impl PatternMask {
    /// Build the masks for `pattern` (length must be `1..=64`).
    ///
    /// # Panics
    /// Panics if the pattern is empty or longer than [`MAX_W`].
    pub fn new(pattern: &Seq) -> PatternMask {
        Self::from_slice_fn(pattern.len(), |j| pattern.get_code(j))
    }

    /// Build the masks for the **reverse** of `pattern[start..start+len]`
    /// without materializing the reversed sequence (the windowed aligner
    /// processes reversed windows; see DESIGN.md §5).
    pub fn new_reversed_window(pattern: &Seq, start: usize, len: usize) -> PatternMask {
        Self::from_slice_fn(len, |j| pattern.get_code(start + len - 1 - j))
    }

    fn from_slice_fn(m: usize, code_at: impl Fn(usize) -> u8) -> PatternMask {
        assert!(
            (1..=MAX_W).contains(&m),
            "pattern window length {m} not in 1..=64"
        );
        let mut masks = [!0u64; 4];
        for j in 0..m {
            let c = code_at(j) as usize;
            masks[c] &= !(1u64 << j);
        }
        PatternMask { masks, m }
    }

    /// A length-1 all-mismatch mask, used only to give
    /// [`crate::workspace::AlignWorkspace`] an initial value before its
    /// first window is staged.
    pub(crate) fn placeholder() -> PatternMask {
        PatternMask {
            masks: [!0u64; 4],
            m: 1,
        }
    }

    /// The mask for text character code `c` (`0..=3`).
    #[inline(always)]
    pub fn get(&self, c: u8) -> u64 {
        self.masks[(c & 3) as usize]
    }

    /// Pattern window length.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.m
    }

    /// True for the (disallowed, but kept for API completeness) empty mask.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The bit that signals a full-pattern solution (bit `m - 1`).
    #[inline(always)]
    pub fn solution_bit(&self) -> u64 {
        1u64 << (self.m - 1)
    }
}

/// Initial bitvector for error row `d`: the first `d` pattern characters
/// may already be consumed by pattern-only edits before any text.
#[inline(always)]
pub fn init_row(d: usize) -> u64 {
    if d >= 64 {
        0 // every prefix reachable with >= 64 pattern-only edits
    } else {
        !0u64 << d
    }
}

/// GenASM-DC recurrence for row 0 of column `i`:
/// `R[0][i] = (R[0][i-1] << 1) | PM[T[i]]` (matches only).
#[inline(always)]
pub fn step_row0(cur_prev: u64, pm: u64) -> u64 {
    (cur_prev << 1) | pm
}

/// GenASM-DC recurrence for row `d > 0` of column `i`.
///
/// * `below_prev` — `R[d-1][i-1]` (previous row, previous column),
/// * `below_cur`  — `R[d-1][i]`   (previous row, same column),
/// * `cur_prev`   — `R[d][i-1]`   (same row, previous column),
/// * `pm`         — `PM[T[i]]`.
///
/// The four 0-active contributions are combined with AND:
/// match `(cur_prev << 1) | pm`, substitution `below_prev << 1`,
/// text-consuming deletion `below_prev`, pattern-consuming insertion
/// `below_cur << 1`.
#[inline(always)]
pub fn step_row(below_prev: u64, below_cur: u64, cur_prev: u64, pm: u64) -> u64 {
    let mat = (cur_prev << 1) | pm;
    let sub = below_prev << 1;
    let del = below_prev;
    let ins = below_cur << 1;
    mat & sub & del & ins
}

/// The four edge contributions separately, in `(match, subst, del, ins)`
/// order. Used by the *unimproved* GenASM-TB, which stores all of them,
/// and by tests that check `AND(edges) == step_row`.
#[inline(always)]
pub fn step_row_edges(below_prev: u64, below_cur: u64, cur_prev: u64, pm: u64) -> [u64; 4] {
    [
        (cur_prev << 1) | pm,
        below_prev << 1,
        below_prev,
        below_cur << 1,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn pattern_mask_marks_matches_active() {
        let pm = PatternMask::new(&seq("ACGA"));
        // bit j of PM[c] is 0 iff P[j]==c
        assert_eq!(pm.get(0) & 0b1111, 0b0110); // A at j=0 and j=3
        assert_eq!(pm.get(1) & 0b1111, 0b1101); // C at j=1
        assert_eq!(pm.get(2) & 0b1111, 0b1011); // G at j=2
        assert_eq!(pm.get(3) & 0b1111, 0b1111); // no T
                                                // bits beyond m are inactive (1)
        assert_eq!(pm.get(0) >> 4, !0u64 >> 4);
    }

    #[test]
    fn reversed_window_mask() {
        let s = seq("ACGTTT");
        // window [1..4) = "CGT", reversed = "TGC"
        let pm = PatternMask::new_reversed_window(&s, 1, 3);
        let direct = PatternMask::new(&seq("TGC"));
        assert_eq!(pm, direct);
    }

    #[test]
    fn solution_bit_matches_length() {
        let pm = PatternMask::new(&seq("ACG"));
        assert_eq!(pm.solution_bit(), 0b100);
        assert_eq!(pm.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not in 1..=64")]
    fn empty_pattern_panics() {
        let _ = PatternMask::new(&Seq::new());
    }

    #[test]
    fn init_rows() {
        assert_eq!(init_row(0), !0u64);
        assert_eq!(init_row(1), !0u64 << 1);
        assert_eq!(init_row(3) & 0b111, 0);
        assert_eq!(init_row(64), 0);
        assert_eq!(init_row(100), 0);
    }

    #[test]
    fn exact_match_single_row() {
        // Row 0 alone finds exact occurrences, like classic Shift-Or.
        let p = seq("ACG");
        let t = seq("TACGT");
        let pm = PatternMask::new(&p);
        let mut r = init_row(0);
        let mut hits = Vec::new();
        for i in 0..t.len() {
            r = step_row0(r, pm.get(t.get_code(i)));
            if r & pm.solution_bit() == 0 {
                hits.push(i);
            }
        }
        assert_eq!(hits, vec![3]); // occurrence ends at text index 3
    }

    #[test]
    fn and_of_edges_equals_step() {
        let cases = [
            (
                0x0123_4567_89ab_cdefu64,
                0xfedc_ba98_7654_3210u64,
                0x00ff_00ff_00ff_00ffu64,
                0xaaaa_5555_aaaa_5555u64,
            ),
            (!0, !0, !0, !0),
            (0, 0, 0, 0),
        ];
        for (bp, bc, cp, pm) in cases {
            let edges = step_row_edges(bp, bc, cp, pm);
            let anded = edges.iter().fold(!0u64, |a, &e| a & e);
            assert_eq!(anded, step_row(bp, bc, cp, pm));
        }
    }

    #[test]
    fn one_substitution_found_in_row_one() {
        // pattern ACG vs text AGG: one substitution.
        let p = seq("ACG");
        let t = seq("AGG");
        let pm = PatternMask::new(&p);
        let (mut r0, mut r1) = (init_row(0), init_row(1));
        let mut solved_at = None;
        for i in 0..t.len() {
            let c = pm.get(t.get_code(i));
            let old0 = r0;
            let old1 = r1;
            r0 = step_row0(old0, c);
            r1 = step_row(old0, r0, old1, c);
            if i == t.len() - 1 {
                assert_ne!(r0 & pm.solution_bit(), 0, "no exact match");
                if r1 & pm.solution_bit() == 0 {
                    solved_at = Some(1);
                }
            }
        }
        assert_eq!(solved_at, Some(1));
    }
}
