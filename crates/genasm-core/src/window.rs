//! The windowed long-read driver: GenASM's greedy window pipeline.
//!
//! Long sequences are aligned with overlapping `W × W` windows. Each
//! window is aligned by [`crate::engine::align_window`]; a non-final
//! window commits only its first `W - O` consumed characters (the rest
//! overlaps the next window and is recomputed there), then the window is
//! re-anchored at the committed position. The final window commits its
//! whole traceback and closes the alignment with explicit indels if one
//! sequence runs out before the other.
//!
//! ## Edit-bound hints and the rescue path
//!
//! [`align_with_workspace_hinted`] accepts a per-alignment *edit bound
//! hint* (derived upstream from chain score / anchor coverage — see
//! `mapper`). A hint below the configured `k` runs the whole greedy
//! window pipeline at a tight budget `k' = clamp(hint, MIN_HINT_K, k)`:
//! every window sweeps at most `k' + 1` error rows instead of `k + 1`,
//! and hopeless windows are abandoned by the engine's pre-flight. Since
//! `k` never enters a bitvector value, a tight run that succeeds is
//! **bit-identical** to the full-budget run (same `d*` per window, same
//! ops). If any window exceeds the tight budget the driver *rescues*:
//! it reruns the entire alignment at the full `k`, which *is* the
//! unbanded computation — so accepted alignments are bit-identical to
//! the unhinted engine by construction, with no conservative-band
//! correctness argument needed. Instrumentation accumulates across both
//! attempts; rescues are counted in [`MemStats::windows_rescued`].

use align_core::{AlignError, Alignment, Cigar, CigarOp, Seq};

use crate::config::GenAsmConfig;
use crate::engine::align_window;
use crate::stats::MemStats;
use crate::workspace::AlignWorkspace;

/// Floor applied to edit-bound hints: running below this buys little
/// (row 0 always runs) and makes spurious rescues likelier on noisy
/// hint estimates.
pub const MIN_HINT_K: usize = 8;

/// Align `query` against `target` end-to-end with the windowed GenASM
/// pipeline, borrowing all scratch state from `ws`.
///
/// Instrumentation accumulates into `ws.stats`. With a warm workspace
/// the only allocation this performs is the returned [`Alignment`]'s
/// own CIGAR storage — every window is heap-allocation-free.
pub fn align_with_workspace(
    query: &Seq,
    target: &Seq,
    cfg: &GenAsmConfig,
    ws: &mut AlignWorkspace,
) -> Result<Alignment, AlignError> {
    drive(query, target, cfg, None, ws)
}

/// [`align_with_workspace`] with an optional per-alignment edit bound:
/// `max_edits` caps the per-window error-row sweep at
/// `clamp(max_edits, MIN_HINT_K, cfg.k)`. Too-tight hints are safe —
/// the driver falls back to a full-`k` rerun (the rescue path), so the
/// result is always bit-identical to the unhinted call; only the work
/// done (and the [`MemStats`] accounting of it) differs.
pub fn align_with_workspace_hinted(
    query: &Seq,
    target: &Seq,
    cfg: &GenAsmConfig,
    max_edits: Option<usize>,
    ws: &mut AlignWorkspace,
) -> Result<Alignment, AlignError> {
    if let Some(hint) = max_edits {
        let kt = hint.max(MIN_HINT_K).min(cfg.k);
        if kt < cfg.k {
            let tight = GenAsmConfig { k: kt, ..*cfg };
            match drive(query, target, &tight, Some(cfg.k), ws) {
                Err(AlignError::NoAlignment) => {
                    // The band came up empty somewhere mid-pipeline;
                    // rerun everything at the full budget. That rerun
                    // is exactly the unbanded computation.
                    ws.stats.windows_rescued += 1;
                }
                other => return other,
            }
        }
    }
    drive(query, target, cfg, None, ws)
}

/// The greedy window pipeline at one fixed budget. `full_k` is the
/// configured budget when `cfg.k` is a tightened hint (used only to
/// account the skipped rows); `None` when running unbanded.
fn drive(
    query: &Seq,
    target: &Seq,
    cfg: &GenAsmConfig,
    full_k: Option<usize>,
    ws: &mut AlignWorkspace,
) -> Result<Alignment, AlignError> {
    cfg.validate();
    let mut cigar = Cigar::new();
    let mut qpos = 0usize;
    let mut tpos = 0usize;

    loop {
        let qrem = query.len() - qpos;
        let trem = target.len() - tpos;
        if qrem == 0 {
            cigar.push_run(trem as u32, CigarOp::Del);
            break;
        }
        if trem == 0 {
            cigar.push_run(qrem as u32, CigarOp::Ins);
            break;
        }
        let m = qrem.min(cfg.w);
        let n = trem.min(cfg.w);
        let final_window = m == qrem && n == trem;
        let keep = if final_window { m } else { cfg.keep() };

        ws.set_window(query, qpos, m, target, tpos, n);
        let res = align_window(ws, cfg, keep, final_window)?;
        if let Some(fk) = full_k {
            // Rows `cfg.k+1 ..= fk` of this window were never swept:
            // that is the hint's contribution on top of whatever the
            // engine skipped within the tight budget.
            ws.stats.band_cells_skipped += ((fk - cfg.k) * n) as u64;
        }
        debug_assert!(
            res.q_consumed + res.t_consumed > 0,
            "window made no progress (W={}, O={})",
            cfg.w,
            cfg.o
        );
        for &op in ws.window_ops() {
            cigar.push(op);
        }
        qpos += res.q_consumed;
        tpos += res.t_consumed;

        if final_window {
            debug_assert_eq!(qpos, query.len(), "final window must consume the query");
            let leftover = target.len() - tpos;
            cigar.push_run(leftover as u32, CigarOp::Del);
            break;
        }
    }

    Ok(Alignment::from_cigar(cigar))
}

/// Align with a transient workspace, accumulating instrumentation into
/// `stats` — the original entry point, kept for one-shot callers. Batch
/// code should hold an [`AlignWorkspace`] and call
/// [`align_with_workspace`] so scratch buffers amortize across tasks.
pub fn align_with_stats(
    query: &Seq,
    target: &Seq,
    cfg: &GenAsmConfig,
    stats: &mut MemStats,
) -> Result<Alignment, AlignError> {
    let mut ws = AlignWorkspace::with_capacity(cfg.w);
    let result = align_with_workspace(query, target, cfg, &mut ws);
    stats.merge(&ws.stats);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    fn improved(w: usize, o: usize) -> GenAsmConfig {
        GenAsmConfig {
            w,
            o,
            k: w,
            improvements: crate::config::Improvements::ALL,
        }
    }

    #[test]
    fn empty_cases() {
        let mut s = MemStats::new();
        let cfg = GenAsmConfig::improved();
        let a = align_with_stats(&Seq::new(), &Seq::new(), &cfg, &mut s).unwrap();
        assert_eq!(a.edit_distance, 0);
        let a = align_with_stats(&seq("ACGT"), &Seq::new(), &cfg, &mut s).unwrap();
        a.check(&seq("ACGT"), &Seq::new()).unwrap();
        assert_eq!(a.edit_distance, 4);
        let a = align_with_stats(&Seq::new(), &seq("ACG"), &cfg, &mut s).unwrap();
        a.check(&Seq::new(), &seq("ACG")).unwrap();
        assert_eq!(a.edit_distance, 3);
    }

    #[test]
    fn single_window_exact() {
        let q = seq("ACGTACGTACGT");
        let mut s = MemStats::new();
        let a = align_with_stats(&q, &q, &GenAsmConfig::improved(), &mut s).unwrap();
        a.check(&q, &q).unwrap();
        assert_eq!(a.edit_distance, 0);
        assert_eq!(s.windows, 1);
    }

    #[test]
    fn multi_window_exact_match() {
        // 200 bases > W: exercises window stitching on the identity path.
        let bases = "ACGT".repeat(50);
        let q = seq(&bases);
        let mut s = MemStats::new();
        let a = align_with_stats(&q, &q, &GenAsmConfig::improved(), &mut s).unwrap();
        a.check(&q, &q).unwrap();
        assert_eq!(a.edit_distance, 0);
        assert!(
            s.windows >= 4,
            "expected several windows, got {}",
            s.windows
        );
    }

    #[test]
    fn multi_window_with_scattered_errors() {
        // Mutate a few positions of a 300-base sequence.
        let mut bases: Vec<u8> = "ACGTTGCA".repeat(38).into_bytes(); // 304
        bases[17] = b'A';
        bases[130] = b'C';
        bases[255] = b'G';
        let q = seq(std::str::from_utf8(&bases).unwrap());
        let t = seq(&"ACGTTGCA".repeat(38));
        let mut s = MemStats::new();
        let a = align_with_stats(&q, &t, &GenAsmConfig::improved(), &mut s).unwrap();
        a.check(&q, &t).unwrap();
        let oracle = align_core::nw_distance(&q, &t);
        assert!(a.edit_distance >= oracle);
        // Greedy windowing on low-error data should be optimal here.
        assert_eq!(a.edit_distance, oracle);
    }

    #[test]
    fn unequal_lengths_close() {
        let q = seq(&"ACGTTGCA".repeat(30)); // 240
        let t = seq(&"ACGTTGCA".repeat(28)); // 224
        let mut s = MemStats::new();
        let a = align_with_stats(&q, &t, &GenAsmConfig::improved(), &mut s).unwrap();
        a.check(&q, &t).unwrap();
        assert!(a.edit_distance >= 16);
    }

    #[test]
    fn baseline_and_improved_same_distance() {
        let mut bases: Vec<u8> = "TTAGGCAC".repeat(40).into_bytes();
        bases[33] = b'T';
        bases[200] = b'A';
        let q = seq(std::str::from_utf8(&bases).unwrap());
        let t = seq(&"TTAGGCAC".repeat(40));
        let mut s1 = MemStats::new();
        let mut s2 = MemStats::new();
        let a = align_with_stats(&q, &t, &GenAsmConfig::improved(), &mut s1).unwrap();
        let b = align_with_stats(&q, &t, &GenAsmConfig::baseline(), &mut s2).unwrap();
        assert_eq!(a.cigar, b.cigar, "improvements must not change output");
        assert!(s2.table_words > s1.table_words);
    }

    #[test]
    fn small_windows_still_correct() {
        let q = seq(&"ACGTTGCA".repeat(10));
        let t = q.clone();
        for (w, o) in [(8, 3), (16, 8), (32, 24), (5, 1)] {
            let mut s = MemStats::new();
            let a = align_with_stats(&q, &t, &improved(w, o), &mut s).unwrap();
            a.check(&q, &t).unwrap();
            assert_eq!(a.edit_distance, 0, "W={w} O={o}");
        }
    }

    #[test]
    fn budget_failure_propagates() {
        let q = seq(&"AAAAAAAA".repeat(10));
        let t = seq(&"TTTTTTTT".repeat(10));
        let mut cfg = GenAsmConfig::improved();
        cfg.k = 4;
        let mut s = MemStats::new();
        assert_eq!(
            align_with_stats(&q, &t, &cfg, &mut s).unwrap_err(),
            AlignError::NoAlignment
        );
    }

    #[test]
    fn tight_hint_is_bit_identical_and_skips_rows() {
        // A few scattered errors: a tight hint must reproduce the
        // unhinted CIGAR exactly while sweeping far fewer rows. Use the
        // baseline config (no early termination) so the row savings are
        // attributable to the hint alone.
        let mut bases: Vec<u8> = "ACGTTGCA".repeat(38).into_bytes();
        bases[17] = b'A';
        bases[130] = b'C';
        let q = seq(std::str::from_utf8(&bases).unwrap());
        let t = seq(&"ACGTTGCA".repeat(38));
        let cfg = GenAsmConfig::baseline();
        let mut ws1 = AlignWorkspace::new();
        let a = align_with_workspace(&q, &t, &cfg, &mut ws1).unwrap();
        let mut ws2 = AlignWorkspace::new();
        let b = align_with_workspace_hinted(&q, &t, &cfg, Some(4), &mut ws2).unwrap();
        assert_eq!(a.cigar, b.cigar, "hint must not change the output");
        assert_eq!(ws2.stats.windows_rescued, 0, "generous hint, no rescue");
        assert_eq!(ws1.stats.windows, ws2.stats.windows);
        // Hint 4 clamps to MIN_HINT_K = 8: 9 rows per window, not 65.
        assert_eq!(
            ws2.stats.rows_computed,
            9 * ws2.stats.windows,
            "tight budget must bound the row sweep"
        );
        assert!(ws2.stats.rows_computed < ws1.stats.rows_computed / 5);
        assert_eq!(
            ws2.stats.band_cells_skipped,
            ws1.stats.cells_computed - ws2.stats.cells_computed,
            "skipped cells must account exactly for the saved work"
        );
    }

    #[test]
    fn too_tight_hint_rescues_to_the_unhinted_result() {
        // All-mismatch input: every window needs ~W edits, far beyond
        // any clamped hint, so the tight attempt fails and the driver
        // must fall back to the full budget and still match unhinted.
        let q = seq(&"A".repeat(100));
        let t = seq(&"T".repeat(100));
        let cfg = GenAsmConfig::improved();
        let mut ws1 = AlignWorkspace::new();
        let a = align_with_workspace(&q, &t, &cfg, &mut ws1).unwrap();
        let mut ws2 = AlignWorkspace::new();
        let b = align_with_workspace_hinted(&q, &t, &cfg, Some(1), &mut ws2).unwrap();
        assert_eq!(a.cigar, b.cigar, "rescue must reproduce the unhinted run");
        assert_eq!(ws2.stats.windows_rescued, 1);
        assert!(
            ws2.stats.cells_computed > ws1.stats.cells_computed,
            "the failed tight attempt costs extra work on top of the rescue"
        );
    }

    #[test]
    fn hint_at_or_above_k_is_a_plain_run() {
        let q = seq(&"ACGTTGCA".repeat(20));
        let cfg = GenAsmConfig::improved();
        let mut ws1 = AlignWorkspace::new();
        let a = align_with_workspace(&q, &q, &cfg, &mut ws1).unwrap();
        let mut ws2 = AlignWorkspace::new();
        let b = align_with_workspace_hinted(&q, &q, &cfg, Some(cfg.k), &mut ws2).unwrap();
        assert_eq!(a.cigar, b.cigar);
        assert_eq!(ws1.stats, ws2.stats, "hint >= k must change nothing");
    }

    #[test]
    fn very_asymmetric_lengths() {
        // Query much shorter than target: the tail is closed with D runs.
        let q = seq("ACGTACGT");
        let t = seq(&"ACGTACGT".repeat(20));
        let mut s = MemStats::new();
        let a = align_with_stats(&q, &t, &GenAsmConfig::improved(), &mut s).unwrap();
        a.check(&q, &t).unwrap();
        // Query much longer than target.
        let a = align_with_stats(&t, &q, &GenAsmConfig::improved(), &mut s).unwrap();
        a.check(&t, &q).unwrap();
    }
}
