//! The public aligner façade.

use align_core::{AlignError, Alignment, GlobalAligner, ReusableAligner, Seq};
use std::cell::RefCell;

use crate::config::GenAsmConfig;
use crate::stats::MemStats;
use crate::window::{align_with_stats, align_with_workspace};
use crate::workspace::AlignWorkspace;

/// The GenASM aligner: configure once, align many pairs.
///
/// ```
/// use genasm_core::GenAsmAligner;
/// use align_core::{Seq, GlobalAligner};
///
/// let aligner = GenAsmAligner::improved();
/// let q = Seq::from_ascii(b"ACGTACGTAC").unwrap();
/// let t = Seq::from_ascii(b"ACGAACGTAC").unwrap();
/// let aln = aligner.align(&q, &t).unwrap();
/// assert_eq!(aln.edit_distance, 1);
/// aln.check(&q, &t).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct GenAsmAligner {
    cfg: GenAsmConfig,
    stats: RefCell<MemStats>,
}

impl GenAsmAligner {
    /// Aligner with the paper's improved configuration.
    pub fn improved() -> GenAsmAligner {
        GenAsmAligner::with_config(GenAsmConfig::improved())
    }

    /// Aligner running unimproved GenASM (MICRO 2020).
    pub fn baseline() -> GenAsmAligner {
        GenAsmAligner::with_config(GenAsmConfig::baseline())
    }

    /// Aligner with an explicit configuration (panics on invalid
    /// geometry).
    pub fn with_config(cfg: GenAsmConfig) -> GenAsmAligner {
        cfg.validate();
        GenAsmAligner {
            cfg,
            stats: RefCell::new(MemStats::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &GenAsmConfig {
        &self.cfg
    }

    /// Align one pair, adding instrumentation to the provided counters
    /// instead of the aligner's internal ones.
    pub fn align_with_stats(
        &self,
        query: &Seq,
        target: &Seq,
        stats: &mut MemStats,
    ) -> Result<Alignment, AlignError> {
        align_with_stats(query, target, &self.cfg, stats)
    }

    /// Align one pair borrowing all scratch from `ws` — the hot-path
    /// entry point. Instrumentation accumulates in `ws.stats`.
    ///
    /// ```
    /// use genasm_core::{AlignWorkspace, GenAsmAligner};
    /// use align_core::Seq;
    ///
    /// let aligner = GenAsmAligner::improved();
    /// let mut ws = AlignWorkspace::new();
    /// let q = Seq::from_ascii(b"ACGTACGTAC").unwrap();
    /// let t = Seq::from_ascii(b"ACGAACGTAC").unwrap();
    /// for _ in 0..3 {
    ///     // Scratch buffers are reused across these calls.
    ///     let aln = aligner.align_reusing(&mut ws, &q, &t).unwrap();
    ///     assert_eq!(aln.edit_distance, 1);
    /// }
    /// ```
    pub fn align_reusing(
        &self,
        ws: &mut AlignWorkspace,
        query: &Seq,
        target: &Seq,
    ) -> Result<Alignment, AlignError> {
        align_with_workspace(query, target, &self.cfg, ws)
    }

    /// A workspace pre-sized for this aligner's window geometry.
    pub fn new_workspace(&self) -> AlignWorkspace {
        AlignWorkspace::with_capacity(self.cfg.w)
    }

    /// Instrumentation accumulated by [`GlobalAligner::align`] calls.
    pub fn stats(&self) -> MemStats {
        *self.stats.borrow()
    }

    /// Reset the accumulated instrumentation.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = MemStats::new();
    }
}

impl ReusableAligner for GenAsmAligner {
    type Workspace = AlignWorkspace;

    fn align_reusing(
        &self,
        ws: &mut AlignWorkspace,
        query: &Seq,
        target: &Seq,
    ) -> align_core::Result<Alignment> {
        GenAsmAligner::align_reusing(self, ws, query, target)
    }
}

impl GlobalAligner for GenAsmAligner {
    fn align(&self, query: &Seq, target: &Seq) -> align_core::Result<Alignment> {
        let mut stats = self.stats.borrow_mut();
        align_with_stats(query, target, &self.cfg, &mut stats)
    }

    fn name(&self) -> &'static str {
        if self.cfg.improvements == crate::config::Improvements::ALL {
            "genasm-improved"
        } else if self.cfg.improvements == crate::config::Improvements::NONE {
            "genasm-baseline"
        } else {
            "genasm-custom"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn facade_aligns_and_accumulates_stats() {
        let aligner = GenAsmAligner::improved();
        let q = seq(&"ACGTACGT".repeat(20));
        let a = aligner.align(&q, &q).unwrap();
        assert_eq!(a.edit_distance, 0);
        assert!(aligner.stats().windows > 0);
        aligner.reset_stats();
        assert_eq!(aligner.stats().windows, 0);
    }

    #[test]
    fn names() {
        assert_eq!(GenAsmAligner::improved().name(), "genasm-improved");
        assert_eq!(GenAsmAligner::baseline().name(), "genasm-baseline");
        let mut cfg = GenAsmConfig::improved();
        cfg.improvements.dent = false;
        assert_eq!(GenAsmAligner::with_config(cfg).name(), "genasm-custom");
    }
}
