//! # genasm-core
//!
//! The paper's primary contribution: the GenASM bitvector alignment
//! algorithm (Senol Cali et al., MICRO 2020) together with the three
//! algorithmic improvements of Lindegger et al. (IPDPSW 2022):
//!
//! 1. **entry compression** — store one word (the AND of the edge
//!    vectors) per DP entry instead of four;
//! 2. **early termination** — evaluate error rows in ascending order and
//!    stop at the first row that contains the full solution;
//! 3. **traceback-reachability pruning (DENT)** — never store DP entries
//!    the traceback provably cannot read.
//!
//! Every improvement is individually toggleable ([`Improvements`]) so
//! the ablation experiment can attribute footprint/traffic reductions.
//! All DP-table traffic is counted in [`MemStats`]; experiments E8/E9
//! (the 24× footprint and 12× access reductions) are ratios of these
//! counters between [`GenAsmConfig::baseline`] and
//! [`GenAsmConfig::improved`] runs.
//!
//! The row recurrence in [`bitvec`] is shared with the GPU kernels in
//! the `genasm-gpu` crate, so CPU and (simulated) GPU results cannot
//! drift apart.
//!
//! ## Quick start
//!
//! ```
//! use genasm_core::GenAsmAligner;
//! use align_core::{Seq, GlobalAligner};
//!
//! let aligner = GenAsmAligner::improved();
//! let query = Seq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
//! let target = Seq::from_ascii(b"ACGTACCTACGTACGT").unwrap();
//! let aln = aligner.align(&query, &target).unwrap();
//! assert_eq!(aln.edit_distance, 1);
//! ```

pub mod aligner;
pub mod bitvec;
pub mod config;
pub mod engine;
pub mod filter;
pub mod stats;
pub mod table;
pub mod window;

pub use aligner::GenAsmAligner;
pub use filter::{filter_distance, filter_occurrences, Occurrence};
pub use config::{GenAsmConfig, Improvements};
pub use engine::{align_window, WindowResult};
pub use stats::MemStats;
pub use window::align_with_stats;
