//! # genasm-core
//!
//! The paper's primary contribution: the GenASM bitvector alignment
//! algorithm (Senol Cali et al., MICRO 2020) together with the three
//! algorithmic improvements of Lindegger et al. (IPDPSW 2022):
//!
//! 1. **entry compression** — store one word (the AND of the edge
//!    vectors) per DP entry instead of four;
//! 2. **early termination** — evaluate error rows in ascending order and
//!    stop at the first row that contains the full solution;
//! 3. **traceback-reachability pruning (DENT)** — never store DP entries
//!    the traceback provably cannot read.
//!
//! Every improvement is individually toggleable ([`Improvements`]) so
//! the ablation experiment can attribute footprint/traffic reductions.
//! All DP-table traffic is counted in [`MemStats`]; experiments E8/E9
//! (the 24× footprint and 12× access reductions) are ratios of these
//! counters between [`GenAsmConfig::baseline`] and
//! [`GenAsmConfig::improved`] runs.
//!
//! On top of the paper's improvements, the window engine is **banded in
//! the error dimension**: [`align_with_workspace_hinted`] accepts a
//! per-alignment edit bound (derived by the mapper from chain quality)
//! that caps each window's row sweep, an infeasibility pre-flight
//! abandons hopeless windows in O(1), and a too-tight bound falls back
//! to a full-budget *rescue* rerun — so accepted alignments are always
//! bit-identical to the unbanded engine (see [`engine`] for why the
//! `d` dimension is the sound place to band, and [`MemStats`] for the
//! `band_cells_skipped` / `windows_rescued` / `peak_band_rows`
//! observability counters).
//!
//! The row recurrence in [`bitvec`] is shared with the GPU kernels in
//! the `genasm-gpu` crate, so CPU and (simulated) GPU results cannot
//! drift apart.
//!
//! ## The allocation-free hot path
//!
//! All mutable per-alignment state — the rolling scratch rows, the
//! traceback table arena, the staged window inputs, the traceback op
//! buffer, and the instrumentation counters — lives in an
//! [`AlignWorkspace`]. Create one per worker, reuse it for every
//! alignment that worker runs, and the steady state performs **zero
//! heap allocations per window**: buffers are cleared and refilled
//! within their retained capacity. `genasm-cpu` wires this into its
//! Rayon batch driver with one workspace per worker thread
//! (`par_iter().map_init(..)`), and the property tests assert reused
//! workspaces are bit-identical to fresh ones.
//!
//! ## Quick start
//!
//! One-shot alignment:
//!
//! ```
//! use genasm_core::GenAsmAligner;
//! use align_core::{Seq, GlobalAligner};
//!
//! let aligner = GenAsmAligner::improved();
//! let query = Seq::from_ascii(b"ACGTACGTACGTACGT").unwrap();
//! let target = Seq::from_ascii(b"ACGTACCTACGTACGT").unwrap();
//! let aln = aligner.align(&query, &target).unwrap();
//! assert_eq!(aln.edit_distance, 1);
//! ```
//!
//! Batch-style alignment reusing one workspace (the hot path):
//!
//! ```
//! use genasm_core::{AlignWorkspace, GenAsmAligner};
//! use align_core::Seq;
//!
//! let aligner = GenAsmAligner::improved();
//! let mut ws = aligner.new_workspace();
//! let pairs = [
//!     (b"ACGTACGTACGTACGT".as_slice(), b"ACGTACCTACGTACGT".as_slice()),
//!     (b"TTTTACGTACGT".as_slice(), b"TTTTACGTACGT".as_slice()),
//! ];
//! for (q, t) in pairs {
//!     let q = Seq::from_ascii(q).unwrap();
//!     let t = Seq::from_ascii(t).unwrap();
//!     // Scratch rows, the traceback arena and all staging buffers are
//!     // reused across iterations; only the returned Alignment allocates.
//!     let aln = aligner.align_reusing(&mut ws, &q, &t).unwrap();
//!     aln.check(&q, &t).unwrap();
//! }
//! // ws.stats now holds instrumentation for both alignments.
//! assert!(ws.stats.windows >= 2);
//! ```

pub mod aligner;
pub mod bitvec;
pub mod config;
pub mod engine;
pub mod filter;
pub mod stats;
pub mod table;
pub mod window;
pub mod workspace;

pub use aligner::GenAsmAligner;
pub use config::{GenAsmConfig, Improvements};
pub use engine::{align_window, align_window_fresh, WindowResult, WindowSummary};
pub use filter::{
    filter_distance, filter_distance_with, filter_occurrences, filter_occurrences_with, Occurrence,
};
pub use stats::MemStats;
pub use window::{align_with_stats, align_with_workspace, align_with_workspace_hinted, MIN_HINT_K};
pub use workspace::{AlignWorkspace, CapacitySignature};
