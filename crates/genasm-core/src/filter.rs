//! GenASM-DC as a standalone approximate-string-matching filter.
//!
//! The original GenASM framework (MICRO 2020) uses the distance
//! calculation alone — no traceback, no stored table — as a
//! pre-alignment filter: "does this pattern occur in this text with at
//! most `k` edits, and where?". This module exposes that mode with the
//! same row-major early-terminating evaluation as the aligner, in O(2
//! rows) of scratch.
//!
//! The scratch rows live in an [`AlignWorkspace`], shared with the
//! aligner: the `_with` variants borrow a caller-owned workspace and
//! are allocation-free when warm; the plain functions wrap them with a
//! transient workspace for one-shot use.
//!
//! Semantics are classic Bitap approximate matching: an occurrence ends
//! at text position `i` when the whole pattern aligns to *some suffix*
//! of `text[..=i]` with at most `d` edits (free text prefix).

use align_core::Seq;

use crate::bitvec::{init_row, step_row, step_row0, PatternMask, MAX_W};
use crate::workspace::AlignWorkspace;

/// One approximate occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Text position the occurrence ends at (inclusive).
    pub end: usize,
    /// Edit count of the best alignment ending there (≤ the filter's
    /// `k`).
    pub edits: usize,
}

/// Minimum edits over all occurrences of `pattern` in `text`, if any
/// occurrence needs at most `k` edits. One-shot wrapper around
/// [`filter_distance_with`].
///
/// # Panics
/// Panics if the pattern is empty or longer than [`MAX_W`].
pub fn filter_distance(pattern: &Seq, text: &Seq, k: usize) -> Option<usize> {
    filter_distance_with(&mut AlignWorkspace::new(), pattern, text, k)
}

/// Minimum edits over all occurrences of `pattern` in `text`, borrowing
/// the scratch rows from `ws`.
///
/// Row-major evaluation with early termination: rows `0..=k` are tried
/// in ascending order and the first row with any solution column is the
/// answer, so the cost is proportional to the true distance, not to
/// `k`.
///
/// # Panics
/// Panics if the pattern is empty or longer than [`MAX_W`].
pub fn filter_distance_with(
    ws: &mut AlignWorkspace,
    pattern: &Seq,
    text: &Seq,
    k: usize,
) -> Option<usize> {
    assert!(
        !pattern.is_empty() && pattern.len() <= MAX_W,
        "pattern length {} not in 1..=64",
        pattern.len()
    );
    if text.is_empty() {
        // Only pattern-consuming edits are available.
        return (pattern.len() <= k).then_some(pattern.len());
    }
    let pm = PatternMask::new(pattern);
    let solution = pm.solution_bit();
    let n = text.len();
    ws.ensure_scratch(n);
    // Row 0 never reads `prev_row`, and every later row reads only
    // entries the previous row wrote, so stale scratch is harmless.
    let AlignWorkspace {
        prev_row, cur_row, ..
    } = ws;
    for d in 0..=k {
        let mut cur_prev = init_row(d);
        let below_init = if d > 0 { init_row(d - 1) } else { 0 };
        let mut hit = false;
        for i in 0..n {
            let pmv = pm.get(text.get_code(i));
            let val = if d == 0 {
                step_row0(cur_prev, pmv)
            } else {
                let below_prev = if i == 0 { below_init } else { prev_row[i - 1] };
                step_row(below_prev, prev_row[i], cur_prev, pmv)
            };
            cur_row[i] = val;
            cur_prev = val;
            hit |= val & solution == 0;
        }
        if hit {
            return Some(d);
        }
        std::mem::swap(prev_row, cur_row);
    }
    None
}

/// All occurrence end positions with their minimal edit counts, for
/// occurrences needing at most `k` edits. One-shot wrapper around
/// [`filter_occurrences_with`].
pub fn filter_occurrences(pattern: &Seq, text: &Seq, k: usize) -> Vec<Occurrence> {
    let mut out = Vec::new();
    filter_occurrences_with(&mut AlignWorkspace::new(), pattern, text, k, &mut out);
    out
}

/// All occurrences of `pattern` in `text` within `k` edits, borrowing
/// scratch from `ws` and appending to `out` (cleared first).
///
/// Runs rows `0..=k` and reports, per text position, the first row in
/// which the solution bit became active.
pub fn filter_occurrences_with(
    ws: &mut AlignWorkspace,
    pattern: &Seq,
    text: &Seq,
    k: usize,
    out: &mut Vec<Occurrence>,
) {
    assert!(
        !pattern.is_empty() && pattern.len() <= MAX_W,
        "pattern length {} not in 1..=64",
        pattern.len()
    );
    out.clear();
    if text.is_empty() {
        return;
    }
    let pm = PatternMask::new(pattern);
    let solution = pm.solution_bit();
    let n = text.len();
    ws.ensure_scratch(n);
    let AlignWorkspace {
        prev_row,
        cur_row,
        occ_best,
        ..
    } = ws;
    const UNSEEN: u32 = u32::MAX;
    occ_best.clear();
    occ_best.resize(n, UNSEEN);
    for d in 0..=k {
        let mut cur_prev = init_row(d);
        let below_init = if d > 0 { init_row(d - 1) } else { 0 };
        for i in 0..n {
            let pmv = pm.get(text.get_code(i));
            let val = if d == 0 {
                step_row0(cur_prev, pmv)
            } else {
                let below_prev = if i == 0 { below_init } else { prev_row[i - 1] };
                step_row(below_prev, prev_row[i], cur_prev, pmv)
            };
            cur_row[i] = val;
            cur_prev = val;
            if val & solution == 0 && occ_best[i] == UNSEEN {
                occ_best[i] = d as u32;
            }
        }
        std::mem::swap(prev_row, cur_row);
    }
    out.extend(occ_best.iter().enumerate().filter_map(|(end, &d)| {
        (d != UNSEEN).then_some(Occurrence {
            end,
            edits: d as usize,
        })
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    /// Oracle: minimum edit distance of `p` against any substring of
    /// `t` (free text prefix and suffix), by quadratic DP.
    fn oracle_substring_distance(p: &Seq, t: &Seq) -> usize {
        let m = p.len();
        let n = t.len();
        // dp[j] = min edits of p[0..i] vs t[..j] with free start.
        let mut prev: Vec<usize> = vec![0; n + 1]; // row i=0: free prefix
        let mut cur = vec![0usize; n + 1];
        for i in 1..=m {
            cur[0] = i;
            for j in 1..=n {
                let sub = prev[j - 1] + usize::from(p.get_code(i - 1) != t.get_code(j - 1));
                cur[j] = sub.min(prev[j] + 1).min(cur[j - 1] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev.into_iter().min().expect("nonempty row")
    }

    #[test]
    fn exact_occurrence_found() {
        let p = seq("ACGTT");
        let t = seq("GGGACGTTGGG");
        assert_eq!(filter_distance(&p, &t, 2), Some(0));
        let occ = filter_occurrences(&p, &t, 0);
        assert_eq!(occ, vec![Occurrence { end: 7, edits: 0 }]);
    }

    #[test]
    fn one_error_occurrence() {
        let p = seq("ACGTT");
        let t = seq("GGGACCTTGGG");
        assert_eq!(filter_distance(&p, &t, 2), Some(1));
    }

    #[test]
    fn rejects_beyond_budget() {
        let p = seq("AAAAAAA");
        let t = seq("TTTTTTTTTTTT");
        assert_eq!(filter_distance(&p, &t, 3), None);
        assert!(filter_occurrences(&p, &t, 3).is_empty());
    }

    #[test]
    fn empty_text_needs_full_pattern_deletion() {
        let p = seq("ACG");
        assert_eq!(filter_distance(&p, &Seq::new(), 2), None);
        assert_eq!(filter_distance(&p, &Seq::new(), 3), Some(3));
    }

    #[test]
    fn matches_substring_oracle_on_dense_cases() {
        let cases = [
            ("ACGT", "TTACGTTT"),
            ("ACGT", "TTAGGTTT"),
            ("GATTACA", "GCATGCATGATTTACAGGG"),
            ("AAAA", "CCCC"),
            ("TGCA", "T"),
        ];
        for (p, t) in cases {
            let (p, t) = (seq(p), seq(t));
            let oracle = oracle_substring_distance(&p, &t);
            assert_eq!(
                filter_distance(&p, &t, p.len()),
                Some(oracle).filter(|&d| d <= p.len()),
                "{p:?} in {t:?}"
            );
        }
    }

    #[test]
    fn occurrence_edits_are_minimal_per_position() {
        let p = seq("ACGT");
        let t = seq("ACGTACGT");
        let occ = filter_occurrences(&p, &t, 2);
        // Exact hits at ends 3 and 7.
        let exact: Vec<_> = occ.iter().filter(|o| o.edits == 0).map(|o| o.end).collect();
        assert_eq!(exact, vec![3, 7]);
        // Every reported occurrence is within budget and minimal (can't
        // check global minimality cheaply; spot-check monotonicity).
        assert!(occ.iter().all(|o| o.edits <= 2));
    }

    #[test]
    fn reused_workspace_filter_matches_fresh() {
        // Dissimilar consecutive calls through one workspace must agree
        // with fresh-workspace runs (stale scratch must not leak).
        let cases = [
            ("ACGTT", "GGGACGTTGGG", 2),
            ("AAAA", "CCCC", 4),
            ("ACGT", "ACGTACGT", 2),
            ("GATTACA", "GCATGCATGATTTACAGGG", 7),
            ("TGCA", "T", 4),
        ];
        let mut ws = AlignWorkspace::new();
        let mut occ = Vec::new();
        for (p, t, k) in cases {
            let (p, t) = (seq(p), seq(t));
            assert_eq!(
                filter_distance_with(&mut ws, &p, &t, k),
                filter_distance(&p, &t, k),
                "{p:?} in {t:?}"
            );
            filter_occurrences_with(&mut ws, &p, &t, k, &mut occ);
            assert_eq!(occ, filter_occurrences(&p, &t, k), "{p:?} in {t:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not in 1..=64")]
    fn oversized_pattern_panics() {
        let p: Seq = std::iter::repeat_n(align_core::Base::A, 65).collect();
        let _ = filter_distance(&p, &seq("ACGT"), 1);
    }
}
