//! Reusable per-alignment scratch state.
//!
//! The hot path of the suite is "align one window" — called once per
//! window of every task of every batch. Before this module existed,
//! each window heap-allocated its two scratch rows, a fresh traceback
//! table, and a reversed-text buffer, and each alignment allocated a
//! traceback op buffer; under batch load that dominated the runtime of
//! the improved algorithm (whose whole point is a tiny working set).
//!
//! [`AlignWorkspace`] owns all of that mutable state. Allocate one per
//! worker (or one per thread via `map_init` — see `genasm-cpu`), thread
//! it through [`crate::window::align_with_workspace`] /
//! [`crate::engine::align_window`], and steady-state alignment performs
//! **zero heap allocations per window**: every buffer is `clear()`ed
//! and refilled within its existing capacity. The property tests assert
//! both bit-identical results vs. fresh workspaces and capacity
//! stability across hundreds of alignments.

use align_core::CigarOp;

use crate::bitvec::PatternMask;
use crate::stats::MemStats;
use crate::table::TbTable;
use align_core::Seq;

/// Owns every buffer the aligner mutates, so the whole call chain can
/// borrow instead of allocate.
///
/// The workspace accumulates instrumentation in [`AlignWorkspace::stats`]
/// across every alignment run through it; callers that want per-task
/// counters take/reset it between tasks.
#[derive(Debug, Clone)]
pub struct AlignWorkspace {
    /// Bitmasks of the current (reversed) pattern window.
    pub(crate) pm: PatternMask,
    /// 2-bit codes of the current reversed text window.
    pub(crate) text_rev: Vec<u8>,
    /// Rolling scratch row `R[d-1][..]` of the distance pass.
    pub(crate) prev_row: Vec<u64>,
    /// Rolling scratch row `R[d][..]` of the distance pass.
    pub(crate) cur_row: Vec<u64>,
    /// The materialized traceback table (flat arena, reused).
    pub(crate) table: TbTable,
    /// Committed operations of the most recent window, forward order.
    pub(crate) ops: Vec<CigarOp>,
    /// Scratch for the occurrence filter (`u32::MAX` = no hit yet).
    pub(crate) occ_best: Vec<u32>,
    /// Instrumentation accumulated by everything run through this
    /// workspace.
    pub stats: MemStats,
}

impl AlignWorkspace {
    /// An empty workspace; buffers grow on first use and are retained
    /// afterwards.
    pub fn new() -> AlignWorkspace {
        AlignWorkspace {
            pm: PatternMask::placeholder(),
            text_rev: Vec::new(),
            prev_row: Vec::new(),
            cur_row: Vec::new(),
            table: TbTable::new(1, 1, 0),
            ops: Vec::new(),
            occ_best: Vec::new(),
            stats: MemStats::new(),
        }
    }

    /// A workspace pre-sized for window geometry `w`: the staging,
    /// scratch-row and op buffers are allocated up front. The traceback
    /// arena still grows to its high-water mark over the first few
    /// windows (its worst-case size depends on the improvement set), so
    /// the zero-allocation steady state begins after a short warm-up.
    pub fn with_capacity(w: usize) -> AlignWorkspace {
        let mut ws = AlignWorkspace::new();
        ws.text_rev.reserve(w);
        ws.prev_row.resize(w, 0);
        ws.cur_row.resize(w, 0);
        ws.ops.reserve(2 * w);
        ws
    }

    /// Stage the window `query[qpos..qpos+m]` vs `target[tpos..tpos+n]`
    /// (both reversed, as the engine expects) into the workspace.
    pub fn set_window(
        &mut self,
        query: &Seq,
        qpos: usize,
        m: usize,
        target: &Seq,
        tpos: usize,
        n: usize,
    ) {
        self.pm = PatternMask::new_reversed_window(query, qpos, m);
        self.text_rev.clear();
        self.text_rev
            .extend((0..n).rev().map(|i| target.get_code(tpos + i)));
    }

    /// Stage an already-built pattern mask and reversed text window
    /// (used by window-level tests and benchmarks).
    pub fn set_window_raw(&mut self, pm: PatternMask, text_rev: &[u8]) {
        self.pm = pm;
        self.text_rev.clear();
        self.text_rev.extend_from_slice(text_rev);
    }

    /// Committed operations of the most recent window, forward order.
    pub fn window_ops(&self) -> &[CigarOp] {
        &self.ops
    }

    /// Grow the rolling scratch rows to at least `n` columns.
    #[inline]
    pub(crate) fn ensure_scratch(&mut self, n: usize) {
        if self.prev_row.len() < n {
            self.prev_row.resize(n, 0);
            self.cur_row.resize(n, 0);
        }
    }

    /// Take the accumulated counters, leaving zeroed ones behind
    /// (per-task instrumentation under workspace reuse).
    pub fn take_stats(&mut self) -> MemStats {
        std::mem::take(&mut self.stats)
    }

    /// Capacities of every owned buffer, in one comparable value. Once
    /// the workspace is warm, this signature must not change no matter
    /// how many more alignments run through it — the reuse property
    /// tests assert exactly that.
    pub fn capacity_signature(&self) -> CapacitySignature {
        CapacitySignature {
            text_rev: self.text_rev.capacity(),
            rows: self.prev_row.capacity() + self.cur_row.capacity(),
            table_words: self.table.capacity_words(),
            ops: self.ops.capacity(),
            occ_best: self.occ_best.capacity(),
        }
    }
}

impl Default for AlignWorkspace {
    fn default() -> AlignWorkspace {
        AlignWorkspace::new()
    }
}

/// Snapshot of an [`AlignWorkspace`]'s buffer capacities (see
/// [`AlignWorkspace::capacity_signature`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySignature {
    /// Reversed-text staging capacity.
    pub text_rev: usize,
    /// Combined rolling-row capacity.
    pub rows: usize,
    /// Traceback arena capacity in words.
    pub table_words: usize,
    /// Traceback op buffer capacity.
    pub ops: usize,
    /// Occurrence-filter scratch capacity.
    pub occ_best: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_workspace_is_empty() {
        let ws = AlignWorkspace::new();
        assert_eq!(ws.stats, MemStats::new());
        assert_eq!(ws.window_ops().len(), 0);
    }

    #[test]
    fn with_capacity_presizes() {
        let ws = AlignWorkspace::with_capacity(64);
        let sig = ws.capacity_signature();
        assert!(sig.text_rev >= 64);
        assert!(sig.rows >= 128);
        assert!(sig.ops >= 128);
    }

    #[test]
    fn take_stats_resets() {
        let mut ws = AlignWorkspace::new();
        ws.stats.windows = 7;
        let taken = ws.take_stats();
        assert_eq!(taken.windows, 7);
        assert_eq!(ws.stats.windows, 0);
    }

    #[test]
    fn set_window_reverses_text() {
        let q = Seq::from_ascii(b"ACGT").unwrap();
        let t = Seq::from_ascii(b"AACG").unwrap();
        let mut ws = AlignWorkspace::new();
        ws.set_window(&q, 0, 4, &t, 1, 3);
        // target[1..4] = ACG reversed = GCA -> codes [2, 1, 0]
        assert_eq!(ws.text_rev, vec![2, 1, 0]);
    }
}
