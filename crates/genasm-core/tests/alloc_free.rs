//! Counting-allocator proof of the allocation-free hot path.
//!
//! This test binary installs a global allocator that counts every
//! allocation, then drives a warm [`AlignWorkspace`] over multi-window
//! alignments and asserts the steady state allocates only the returned
//! `Alignment` itself — a handful of allocations per alignment,
//! **independent of the window count** — while the fresh-workspace path
//! allocates per window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use align_core::{Base, Seq};
use genasm_core::{AlignWorkspace, GenAsmConfig, MemStats};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing Vec reallocates; that is an allocation event for
        // the purposes of "allocation-free".
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A deterministic pair long enough for ~12 windows with a few
/// substitutions scattered in.
fn test_pair() -> (Seq, Seq) {
    let q: Seq = (0..512).map(|i| Base::from_code((i % 4) as u8)).collect();
    let mut bases: Vec<Base> = q.iter().collect();
    for pos in [37, 120, 260, 411, 500] {
        bases[pos] = Base::from_code((bases[pos].code() + 2) % 4);
    }
    (q, bases.into_iter().collect())
}

#[test]
fn steady_state_allocations_do_not_scale_with_windows() {
    let (q, t) = test_pair();
    let cfg = GenAsmConfig::improved();
    let mut ws = AlignWorkspace::with_capacity(cfg.w);

    // Warm up: first alignment may grow buffers to their high-water
    // marks.
    let warm = genasm_core::align_with_workspace(&q, &t, &cfg, &mut ws).unwrap();
    let windows = ws.take_stats().windows;
    assert!(windows >= 10, "want a multi-window pair, got {windows}");

    const RUNS: u64 = 50;
    let before = allocations();
    for _ in 0..RUNS {
        let aln = genasm_core::align_with_workspace(&q, &t, &cfg, &mut ws).unwrap();
        assert_eq!(aln.edit_distance, warm.edit_distance);
    }
    let per_alignment = (allocations() - before) as f64 / RUNS as f64;

    // The only allocations left are the returned Alignment's CIGAR
    // storage (a few Vec growth steps), independent of the number of
    // windows. Before the workspace refactor this path performed 4+
    // allocations per *window* (scratch rows, table rows, ops, staging),
    // i.e. >40 per alignment on this pair.
    assert!(
        per_alignment <= 8.0,
        "steady state allocates {per_alignment:.1} times per alignment \
         over {windows} windows — the hot path is allocating per window"
    );
}

#[test]
fn reused_workspace_allocates_far_less_than_fresh() {
    let (q, t) = test_pair();
    let cfg = GenAsmConfig::improved();
    let mut ws = AlignWorkspace::with_capacity(cfg.w);
    genasm_core::align_with_workspace(&q, &t, &cfg, &mut ws).unwrap(); // warm

    const RUNS: u64 = 20;
    let before = allocations();
    for _ in 0..RUNS {
        genasm_core::align_with_workspace(&q, &t, &cfg, &mut ws).unwrap();
    }
    let reused = allocations() - before;

    let before = allocations();
    for _ in 0..RUNS {
        let mut stats = MemStats::new();
        genasm_core::align_with_stats(&q, &t, &cfg, &mut stats).unwrap();
    }
    let fresh = allocations() - before;

    assert!(
        reused * 3 < fresh,
        "workspace reuse saved too little: {reused} vs {fresh} allocations over {RUNS} runs"
    );
}
