//! Property-based tests of the GenASM engine against the NW oracle.
//!
//! Invariants checked on random inputs:
//!
//! 1. every produced CIGAR is *valid* (consumes exactly the sequences,
//!    M/X placed on equal/unequal bases) — `Alignment::check`;
//! 2. the GenASM cost is never below the optimal edit distance;
//! 3. on single-window inputs whose optimum consumes the whole text,
//!    the cost is exactly optimal;
//! 4. the improvements never change the output: all 8 improvement
//!    combinations produce identical CIGARs;
//! 5. instrumentation sanity: improved footprint ≤ baseline footprint.

use align_core::{nw_distance, Base, Seq};
use genasm_core::{AlignWorkspace, GenAsmConfig, Improvements, MemStats, MIN_HINT_K};
use proptest::prelude::*;

fn arb_seq(max_len: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, 1..=max_len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

/// A (query, target) pair where the target is a mutated copy of the
/// query — the realistic long-read case.
fn arb_mutated_pair(max_len: usize, max_edits: usize) -> impl Strategy<Value = (Seq, Seq)> {
    (
        arb_seq(max_len),
        prop::collection::vec((any::<u8>(), any::<u16>(), 0u8..4), 0..=max_edits),
    )
        .prop_map(|(q, edits)| {
            let mut t: Vec<Base> = q.iter().collect();
            for (kind, pos, code) in edits {
                if t.is_empty() {
                    break;
                }
                let pos = pos as usize % t.len();
                match kind % 3 {
                    0 => t[pos] = Base::from_code(code),
                    1 => t.insert(pos, Base::from_code(code)),
                    _ => {
                        t.remove(pos);
                    }
                }
            }
            if t.is_empty() {
                t.push(Base::A);
            }
            (q, t.into_iter().collect())
        })
}

fn align(q: &Seq, t: &Seq, cfg: &GenAsmConfig) -> (align_core::Alignment, MemStats) {
    let mut stats = MemStats::new();
    let a = genasm_core::align_with_stats(q, t, cfg, &mut stats).expect("k=W cannot fail");
    (a, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cigar_always_valid_and_cost_at_least_optimal((q, t) in arb_mutated_pair(300, 20)) {
        let cfg = GenAsmConfig::improved();
        let (a, _) = align(&q, &t, &cfg);
        a.check(&q, &t).unwrap();
        prop_assert!(a.edit_distance >= nw_distance(&q, &t));
    }

    #[test]
    fn all_improvement_combinations_agree((q, t) in arb_mutated_pair(200, 12)) {
        let mut reference = None;
        for improvements in Improvements::all_combinations() {
            let cfg = GenAsmConfig { improvements, ..GenAsmConfig::improved() };
            let (a, _) = align(&q, &t, &cfg);
            a.check(&q, &t).unwrap();
            match &reference {
                None => reference = Some(a),
                Some(r) => prop_assert_eq!(&a.cigar, &r.cigar,
                    "combination {} diverged", improvements.label()),
            }
        }
    }

    #[test]
    fn single_window_low_error_is_optimal((q, t) in arb_mutated_pair(64, 3)) {
        // Restrict to same-length-ish single-window pairs: bitap's free
        // text tail can otherwise legally charge the leftover.
        prop_assume!(q.len() <= 64 && t.len() <= 64);
        let cfg = GenAsmConfig::improved();
        let (a, _) = align(&q, &t, &cfg);
        let opt = nw_distance(&q, &t);
        // The greedy single window is optimal when the whole target is
        // consumed by the window alignment; with leftover the cost may
        // exceed the optimum but never by more than the leftover run.
        prop_assert!(a.edit_distance >= opt);
        prop_assert!(a.edit_distance <= opt + t.len());
    }

    #[test]
    fn improved_footprint_never_larger((q, t) in arb_mutated_pair(256, 16)) {
        let (_, imp) = align(&q, &t, &GenAsmConfig::improved());
        let (_, base) = align(&q, &t, &GenAsmConfig::baseline());
        prop_assert!(imp.table_words <= base.table_words);
        prop_assert!(imp.table_accesses() <= base.table_accesses());
        prop_assert_eq!(imp.windows, base.windows);
    }

    #[test]
    fn random_unrelated_pairs_still_valid(q in arb_seq(180), t in arb_seq(180)) {
        // Worst case: unrelated sequences (d* near k in every window).
        let cfg = GenAsmConfig::improved();
        let (a, _) = align(&q, &t, &cfg);
        a.check(&q, &t).unwrap();
        prop_assert!(a.edit_distance >= nw_distance(&q, &t));
        prop_assert!(a.edit_distance <= q.len() + t.len());
    }

    #[test]
    fn identity_pairs_have_zero_distance(q in arb_seq(500)) {
        let (a, stats) = align(&q, &q, &GenAsmConfig::improved());
        prop_assert_eq!(a.edit_distance, 0);
        // Early termination: identity windows compute exactly one row.
        prop_assert_eq!(stats.rows_computed, stats.windows);
    }

    #[test]
    fn window_geometries_all_valid((q, t) in arb_mutated_pair(150, 10),
                                   w in 4usize..=64, o_frac in 0.1f64..0.9) {
        let o = ((w as f64 * o_frac) as usize).min(w - 1);
        let cfg = GenAsmConfig { w, o, k: w, improvements: Improvements::ALL };
        let (a, _) = align(&q, &t, &cfg);
        a.check(&q, &t).unwrap();
    }

    #[test]
    fn reused_workspace_is_bit_identical_to_fresh(
        pairs in prop::collection::vec(arb_mutated_pair(250, 16), 1..6),
        improvements_idx in 0usize..8,
    ) {
        // One workspace reused across a stream of dissimilar alignments
        // must produce exactly the same Alignment and MemStats as a
        // fresh workspace per pair, under every improvement combination.
        let improvements = Improvements::all_combinations()[improvements_idx];
        let cfg = GenAsmConfig { improvements, ..GenAsmConfig::improved() };
        let mut ws = AlignWorkspace::new();
        for (q, t) in &pairs {
            let reused = genasm_core::align_with_workspace(q, t, &cfg, &mut ws).expect("k=W");
            let per_task = ws.take_stats();
            let (fresh, fresh_stats) = align(q, t, &cfg);
            prop_assert_eq!(&reused.cigar, &fresh.cigar,
                "reuse changed the alignment under {}", improvements.label());
            prop_assert_eq!(per_task, fresh_stats,
                "reuse changed the instrumentation under {}", improvements.label());
        }
    }

    #[test]
    fn hinted_driver_is_bit_identical_for_any_hint(
        (q, t) in arb_mutated_pair(250, 16),
        improvements_idx in 0usize..8,
        hint_sel in 0usize..4,
    ) {
        // The edit-bound hint must never change the accepted alignment,
        // only the work done to find it: a tight band either succeeds
        // with the same answer (banding in d is sound — the band only
        // bounds the row loop, never the word values) or fails and the
        // full-budget rescue reproduces the unhinted run exactly. Check
        // every improvement combination against hints covering all the
        // regimes: none, far too tight (forces rescue), the exact band
        // edge, and the full budget.
        let improvements = Improvements::all_combinations()[improvements_idx];
        let cfg = GenAsmConfig { improvements, ..GenAsmConfig::improved() };
        let (reference, reference_stats) = align(&q, &t, &cfg);
        let hint = match hint_sel {
            0 => None,
            1 => Some(1),                       // clamps to MIN_HINT_K; rescues when too tight
            2 => Some(reference.edit_distance), // band edge
            _ => Some(cfg.w),                   // full budget: hint is a no-op
        };
        let mut ws = AlignWorkspace::new();
        let hinted = genasm_core::align_with_workspace_hinted(&q, &t, &cfg, hint, &mut ws)
            .expect("k=W cannot fail");
        let hinted_stats = ws.take_stats();
        prop_assert_eq!(&hinted.cigar, &reference.cigar,
            "hint {:?} changed the alignment under {}", hint, improvements.label());
        prop_assert_eq!(hinted.edit_distance, reference.edit_distance);
        // The hinted run does at least the reference's windows (plus
        // any windows the abandoned tight attempt burned before a
        // rescue), and it only ever rescues when a hint was given.
        prop_assert!(hinted_stats.windows >= reference_stats.windows,
            "hint {:?} lost windows under {}", hint, improvements.label());
        if hint.is_none() {
            prop_assert_eq!(hinted_stats.windows_rescued, 0);
        }
    }
}

/// Adversarial band-edge case: a single window whose true distance d*
/// is strictly above `MIN_HINT_K`. A hint of exactly d* runs the band
/// at its edge and must succeed without rescue; a hint of d* - 1 must
/// fail the tight run, rescue at the full budget, and still report the
/// identical alignment.
#[test]
fn hint_at_exact_band_edge_succeeds_and_one_below_rescues() {
    let q: Seq = (0..64).map(|i| Base::from_code((i % 4) as u8)).collect();
    let mut bases: Vec<Base> = q.iter().collect();
    for i in 0..12 {
        let pos = i * 5;
        bases[pos] = Base::from_code((bases[pos].code() + 2) % 4);
    }
    let t: Seq = bases.into_iter().collect();
    let cfg = GenAsmConfig::improved();
    let (reference, _) = align(&q, &t, &cfg);
    let d_star = reference.edit_distance;
    assert_eq!(
        d_star,
        nw_distance(&q, &t),
        "planted substitutions are optimal"
    );
    assert!(
        d_star > MIN_HINT_K,
        "band edge case needs d* = {d_star} > MIN_HINT_K = {MIN_HINT_K}"
    );

    let mut ws = AlignWorkspace::new();

    // Exact band edge: the solution bit fires on the band's last row.
    let at_edge = genasm_core::align_with_workspace_hinted(&q, &t, &cfg, Some(d_star), &mut ws)
        .expect("k=W cannot fail");
    let at_edge_stats = ws.take_stats();
    assert_eq!(at_edge.cigar, reference.cigar);
    assert_eq!(
        at_edge_stats.windows_rescued, 0,
        "edge hint must not rescue"
    );

    // One below the edge: the tight run cannot see the solution row.
    let below = genasm_core::align_with_workspace_hinted(&q, &t, &cfg, Some(d_star - 1), &mut ws)
        .expect("k=W cannot fail");
    let below_stats = ws.take_stats();
    assert_eq!(below.cigar, reference.cigar);
    assert_eq!(below.edit_distance, d_star);
    assert_eq!(below_stats.windows_rescued, 1, "one-below hint must rescue");
}

/// Satellite acceptance test: a single workspace reused across 100+
/// randomized alignments stays bit-identical to fresh-workspace runs
/// (results *and* instrumentation), and — once warm — its buffer
/// capacities never change again, i.e. the steady state allocates
/// nothing per alignment, let alone per window.
#[test]
fn workspace_reuse_bit_identical_and_capacity_stable_over_100_alignments() {
    use proptest::test_runner::TestRng;
    use proptest::Strategy;

    let mut rng = TestRng::for_test("workspace_reuse_longrun");
    let configs: Vec<GenAsmConfig> = Improvements::all_combinations()
        .into_iter()
        .map(|improvements| GenAsmConfig {
            improvements,
            ..GenAsmConfig::improved()
        })
        .collect();
    let mut workspaces: Vec<AlignWorkspace> = configs
        .iter()
        .map(|cfg| AlignWorkspace::with_capacity(cfg.w))
        .collect();

    // Warm-up: adversarial pairs push every buffer to its high-water
    // mark (unrelated sequences maximize d* and table rows; the offset
    // pair maximizes the traceback op count). The remaining randomized
    // cases then must not grow any buffer: WARMUP_CASES below gives the
    // random stream slack to finish the job before stability is
    // asserted.
    let warm_pairs: Vec<(Seq, Seq)> = vec![
        (
            (0..400).map(|i| Base::from_code((i % 4) as u8)).collect(),
            (0..400)
                .map(|i| Base::from_code((3 - i % 4) as u8))
                .collect(),
        ),
        (
            (0..64).map(|_| Base::from_code(0)).collect(),
            (0..64)
                .map(|i| Base::from_code(if i < 32 { 1 } else { 0 }))
                .collect(),
        ),
    ];
    for (cfg, ws) in configs.iter().zip(&mut workspaces) {
        for (q, t) in &warm_pairs {
            genasm_core::align_with_workspace(q, t, cfg, ws).expect("k=W");
        }
        ws.take_stats();
    }

    const WARMUP_CASES: usize = 20;
    let mut warm_sigs: Vec<Option<genasm_core::CapacitySignature>> = vec![None; configs.len()];

    let pair_strategy = {
        // Mutated pairs (realistic) mixed with unrelated pairs (worst
        // case d*), all within the warm-up length.
        proptest::collection::vec(0u8..4, 1..=380)
            .prop_map(|codes| codes.into_iter().map(Base::from_code).collect::<Seq>())
    };
    for case in 0..120 {
        let q: Seq = pair_strategy.generate(&mut rng);
        let t: Seq = if case % 3 == 0 {
            pair_strategy.generate(&mut rng) // unrelated
        } else {
            // light mutation: flip a few bases of q
            let mut bases: Vec<Base> = q.iter().collect();
            let flips = 1 + case % 7;
            for f in 0..flips {
                let pos = (case * 31 + f * 17) % bases.len();
                bases[pos] = Base::from_code((bases[pos].code() + 1) % 4);
            }
            bases.into_iter().collect()
        };
        for ((cfg, ws), warm_sig) in configs.iter().zip(&mut workspaces).zip(&mut warm_sigs) {
            let reused = genasm_core::align_with_workspace(&q, &t, cfg, ws).expect("k=W");
            let per_task = ws.take_stats();
            let mut fresh_stats = MemStats::new();
            let fresh = genasm_core::align_with_stats(&q, &t, cfg, &mut fresh_stats).expect("k=W");
            assert_eq!(
                reused.cigar,
                fresh.cigar,
                "case {case}: reuse changed the alignment under {}",
                cfg.improvements.label()
            );
            assert_eq!(
                per_task,
                fresh_stats,
                "case {case}: reuse changed instrumentation under {}",
                cfg.improvements.label()
            );
            match warm_sig {
                None if case + 1 >= WARMUP_CASES => *warm_sig = Some(ws.capacity_signature()),
                None => {}
                Some(sig) => assert_eq!(
                    ws.capacity_signature(),
                    *sig,
                    "case {case}: a warm workspace re-allocated under {}",
                    cfg.improvements.label()
                ),
            }
        }
    }
}
