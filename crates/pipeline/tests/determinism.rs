//! Integration properties of the streaming pipeline:
//!
//! 1. **Determinism** — output is byte-identical across every batching
//!    geometry (batch size in bases, queue depth, dispatcher count,
//!    Rayon thread count) and identical to the one-shot
//!    `genasm-cpu` batch path.
//! 2. **Bounded memory** — peak resident task bases stay within
//!    [`PipelineConfig::resident_bases_bound`] even when the workload
//!    is far larger than the configured queue capacity.
//! 3. **Observability** — a real run reports non-zero counters for
//!    every stage.
//! 4. **Shard invariance** — sharding the reference index
//!    (`PipelineConfig::shards`) never changes a single output byte,
//!    for any shard count × overlap × batching geometry.
//!
//! CI runs this suite in a matrix over `GENASM_TEST_SHARDS` (1 and 4)
//! × `GENASM_TEST_CONTIGS` (1 and 3) × `GENASM_TEST_BACKEND` (unset
//! and `auto`); tests that don't sweep those axes themselves use the
//! env values, so every determinism property is exercised against a
//! sharded index, a multi-contig index, *and* the adaptive router
//! (which must leave every output byte untouched while it spreads
//! batches across cpu and gpu-sim).

use align_core::{Reference, Seq};
use genasm_pipeline::{
    run_pipeline, run_pipeline_auto, AlignRecord, Backend, CpuBackend, PipelineConfig,
    PipelineError, ReadInput, RouterConfig,
};
use mapper::{CandidateParams, MinimizerIndex};
use readsim::{contig_lengths, simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

/// Shard count used by tests that don't sweep it themselves; the CI
/// matrix sets `GENASM_TEST_SHARDS` to re-run the suite sharded.
fn env_shards() -> usize {
    std::env::var("GENASM_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// `GENASM_TEST_BACKEND=auto` re-runs the suite with every
/// `run_stream` call going through the adaptive router instead of the
/// fixed CPU backend — the byte-identity assertions then prove routing
/// never leaks into output. Tests that inject a custom backend (error
/// injection) keep their fixed path regardless.
fn env_auto() -> bool {
    std::env::var("GENASM_TEST_BACKEND").is_ok_and(|v| v == "auto")
}

/// Contig count used by the workload builder; the CI matrix sets
/// `GENASM_TEST_CONTIGS` to re-run the whole suite multi-contig.
fn env_contigs() -> usize {
    std::env::var("GENASM_TEST_CONTIGS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Deterministic synthetic workload: (reference, named reads). With
/// `GENASM_TEST_CONTIGS > 1` the reference splits into that many
/// unequal contigs (a single contig keeps the historical name `ref`)
/// and reads are drawn round-robin across contigs.
fn workload(genome_len: usize, n_reads: usize, read_len: usize) -> (Reference, Vec<(String, Seq)>) {
    workload_contigs(genome_len, n_reads, read_len, env_contigs())
}

fn workload_contigs(
    genome_len: usize,
    n_reads: usize,
    read_len: usize,
    contigs: usize,
) -> (Reference, Vec<(String, Seq)>) {
    let lens = contig_lengths(genome_len, contigs);
    let mut reference = Reference::new();
    let mut genomes = Vec::new();
    for (ci, &len) in lens.iter().enumerate() {
        let genome = Genome::generate(&GenomeConfig::human_like(len, 77 + ci as u64));
        let name = if contigs == 1 {
            "ref".to_string()
        } else {
            format!("chr{}", ci + 1)
        };
        reference.push(&name, genome.seq.clone());
        genomes.push(genome);
    }
    // Per-contig read pools, interleaved round-robin so neighbouring
    // reads exercise different contigs.
    let pools: Vec<Vec<readsim::SimRead>> = genomes
        .iter()
        .enumerate()
        .map(|(ci, g)| {
            simulate_reads(
                g,
                &ReadConfig {
                    count: n_reads.div_ceil(contigs),
                    length: read_len.min(g.seq.len() / 2 - 1),
                    errors: ErrorModel::pacbio_clr(0.08),
                    rc_fraction: 0.5,
                    seed: 1234 + ci as u64,
                },
            )
        })
        .collect();
    let mut cursors = vec![0usize; contigs];
    let named = (0..n_reads)
        .map(|i| {
            let ci = i % contigs;
            let r = &pools[ci][cursors[ci]];
            cursors[ci] += 1;
            (format!("read{i}"), r.seq.clone())
        })
        .collect();
    (reference, named)
}

/// Drive the pipeline over an in-memory read list, collecting output.
fn run_stream(
    reads: &[(String, Seq)],
    reference: &Reference,
    backend: &dyn Backend,
    cfg: &PipelineConfig,
) -> (String, genasm_pipeline::PipelineMetrics) {
    let stream = reads.iter().map(|(name, seq)| {
        Ok::<_, std::convert::Infallible>(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
    });
    let mut buf = String::new();
    let on_record = |buf: &mut String, rec: &AlignRecord| {
        buf.push_str(&rec.to_tsv());
        buf.push('\n');
    };
    let metrics = if env_auto() && backend.name() == "cpu" {
        run_pipeline_auto(
            stream,
            reference.clone(),
            cfg,
            RouterConfig::default(),
            |rec| {
                on_record(&mut buf, rec);
                Ok(())
            },
        )
    } else {
        run_pipeline(stream, reference.clone(), backend, cfg, |rec| {
            on_record(&mut buf, rec);
            Ok(())
        })
    }
    .expect("pipeline run failed");
    (buf, metrics)
}

/// The one-shot oracle: per-contig flat `MinimizerIndex` seeding and
/// chaining (no `ShardedIndex` involved), chains merged by score with
/// contig order as the stable tiebreak, whole batch aligned with the
/// Rayon CPU batch aligner, printed per read. For one contig this is
/// exactly the pre-multi-contig seed path.
fn one_shot_cpu(
    reads: &[(String, Seq)],
    reference: &Reference,
    params: &CandidateParams,
) -> String {
    let indexes: Vec<MinimizerIndex> = reference
        .contigs()
        .iter()
        .map(|c| MinimizerIndex::build(&c.seq))
        .collect();
    let backend = CpuBackend::improved();
    let mut out = String::new();
    for (i, (name, seq)) in reads.iter().enumerate() {
        let mut merged: Vec<(u32, mapper::Chain)> = Vec::new();
        for (ci, idx) in indexes.iter().enumerate() {
            let anchors = mapper::collect_anchors(seq, idx);
            for chain in mapper::chain_anchors(&anchors, idx.k, &params.chain) {
                merged.push((ci as u32, chain));
            }
        }
        merged.sort_by(|a, b| b.1.score.total_cmp(&a.1.score));
        let tasks: Vec<align_core::AlignTask> = merged
            .iter()
            .take(params.max_per_read)
            .map(|(ci, chain)| {
                mapper::task_from_chain(
                    i as u32,
                    seq,
                    &reference.contig(*ci as usize).seq,
                    chain,
                    params.flank,
                )
                .in_contig(*ci)
            })
            .collect();
        let alns = backend.align_batch(&tasks).unwrap();
        let mut rows: Vec<AlignRecord> = tasks
            .iter()
            .zip(&alns)
            .map(|(t, a)| {
                let contig = reference.contig(t.contig as usize);
                AlignRecord::new(
                    name,
                    seq.len(),
                    &contig.name,
                    contig.len(),
                    t.ref_pos,
                    t.target.len(),
                    t.reverse,
                    a.as_ref().expect("k = W cannot fail"),
                )
            })
            .collect();
        rows.sort_by_cached_key(AlignRecord::sort_key);
        for r in &rows {
            out.push_str(&r.to_tsv());
            out.push('\n');
        }
    }
    out
}

#[test]
fn output_is_identical_across_batching_geometry_and_matches_one_shot() {
    let (reference, reads) = workload(60_000, 12, 800);
    let params = CandidateParams::default();
    let expected = one_shot_cpu(&reads, &reference, &params);
    assert!(!expected.is_empty(), "workload produced no alignments");

    let backend = CpuBackend::improved();
    // batch_bases = 1 degenerates to one task per batch; 1 MiB puts
    // the whole workload in one or two batches.
    for batch_bases in [1usize, 4 * 1024, 1024 * 1024] {
        for queue_depth in [1usize, 8] {
            for dispatchers in [1usize, 3] {
                let cfg = PipelineConfig {
                    batch_bases,
                    queue_depth,
                    dispatchers,
                    shards: env_shards(),
                    params,
                    ..PipelineConfig::default()
                };
                let (got, metrics) = run_stream(&reads, &reference, &backend, &cfg);
                assert_eq!(
                    got, expected,
                    "diverged at batch_bases={batch_bases} queue_depth={queue_depth} \
                     dispatchers={dispatchers}"
                );
                assert_eq!(metrics.records_out as usize, expected.lines().count());
                if batch_bases == 1 {
                    // Degenerate batching really happened: one task per batch.
                    assert_eq!(metrics.batches, metrics.tasks_generated);
                }
            }
        }
    }
}

/// The golden shard-determinism suite: `shards ∈ {1, 2, 7}` ×
/// `batch_bases` × `dispatchers`, plus overlap settings, must all be
/// byte-identical to the unsharded one-shot seed path.
#[test]
fn output_is_byte_identical_across_shard_counts_and_overlaps() {
    let (reference, reads) = workload(60_000, 12, 800);
    let params = CandidateParams::default();
    // Golden: the unsharded MinimizerIndex one-shot path (the seed
    // behaviour this PR must preserve bit-for-bit).
    let expected = one_shot_cpu(&reads, &reference, &params);
    assert!(!expected.is_empty(), "workload produced no alignments");

    let backend = CpuBackend::improved();
    for shards in [1usize, 2, 7] {
        for batch_bases in [4 * 1024usize, 1024 * 1024] {
            for dispatchers in [1usize, 3] {
                let cfg = PipelineConfig {
                    batch_bases,
                    dispatchers,
                    shards,
                    params,
                    ..PipelineConfig::default()
                };
                let (got, metrics) = run_stream(&reads, &reference, &backend, &cfg);
                assert_eq!(
                    got, expected,
                    "diverged at shards={shards} batch_bases={batch_bases} \
                     dispatchers={dispatchers}"
                );
                // Contig-aware sharding gives every contig at least one
                // shard, so the target is exact only for one contig.
                assert_eq!(metrics.shard_index.contigs, reference.num_contigs());
                assert!(
                    metrics.shard_index.shards.len() >= shards.max(reference.num_contigs())
                        || reference.num_contigs() == 1,
                    "shard metrics missing at shards={shards}"
                );
                if reference.num_contigs() == 1 {
                    assert_eq!(metrics.shard_index.shards.len(), shards);
                }
            }
        }
    }

    // Overlap settings (including one below the exactness floor, which
    // the build clamps) must not change output either.
    for shard_overlap in [0usize, 40, 999] {
        let cfg = PipelineConfig {
            shards: 7,
            shard_overlap,
            params,
            ..PipelineConfig::default()
        };
        let (got, _) = run_stream(&reads, &reference, &backend, &cfg);
        assert_eq!(got, expected, "diverged at shard_overlap={shard_overlap}");
    }
}

/// Multi-contig end-to-end, independent of the CI env axes: a 3-contig
/// reference with unequal contig sizes must (a) match the per-contig
/// one-shot oracle, (b) be byte-identical across shard counts 1/2/7,
/// and (c) report contig names, contig-local coordinates, and the
/// *contig* length as PAF column 7 in every record.
#[test]
fn multi_contig_runs_are_shard_invariant_and_contig_correct() {
    let (reference, reads) = workload_contigs(90_000, 9, 800, 3);
    let params = CandidateParams::default();
    let expected = one_shot_cpu(&reads, &reference, &params);
    assert!(!expected.is_empty(), "workload produced no alignments");

    let contig_len: std::collections::HashMap<String, usize> = reference
        .contigs()
        .iter()
        .map(|c| (c.name.to_string(), c.len()))
        .collect();
    let backend = CpuBackend::improved();
    let mut recs: Vec<AlignRecord> = Vec::new();
    for shards in [1usize, 2, 7] {
        let cfg = PipelineConfig {
            shards,
            params,
            ..PipelineConfig::default()
        };
        let stream = reads.iter().map(|(name, seq)| {
            Ok::<_, std::convert::Infallible>(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
        });
        let mut buf = String::new();
        recs.clear();
        run_pipeline(stream, reference.clone(), &backend, &cfg, |rec| {
            buf.push_str(&rec.to_tsv());
            buf.push('\n');
            recs.push(rec.clone());
            Ok(())
        })
        .expect("pipeline run failed");
        assert_eq!(buf, expected, "diverged from the oracle at shards={shards}");
    }
    // Every record names a real contig, stays inside it, and carries
    // its length (not the whole-reference length) as PAF column 7.
    let total: usize = reference.total_len();
    let mut contigs_hit = std::collections::HashSet::new();
    for rec in &recs {
        let len = *contig_len
            .get(&rec.tname)
            .unwrap_or_else(|| panic!("unknown contig {:?} in output", rec.tname));
        assert_eq!(rec.tsize, len, "tsize must be the contig length");
        assert_ne!(rec.tsize, total, "tsize must not be the whole reference");
        assert!(rec.tend <= len, "window leaks past contig {:?}", rec.tname);
        let paf = rec.to_paf();
        assert_eq!(
            paf.split('\t').nth(6).unwrap(),
            len.to_string(),
            "PAF column 7 must be the contig length: {paf}"
        );
        let back = AlignRecord::parse_paf(&paf).expect("PAF round trip");
        assert_eq!(&back, rec, "PAF round trip lost a field");
        contigs_hit.insert(rec.tname.clone());
    }
    assert!(
        contigs_hit.len() >= 2,
        "reads from 3 contigs should hit at least 2, hit {contigs_hit:?}"
    );
}

#[test]
fn sharded_runs_report_per_shard_metrics() {
    // Pinned to one contig: the consecutive-span overlap assertions
    // below only hold within a contig.
    let (reference, reads) = workload_contigs(50_000, 8, 700, 1);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig {
        shards: 4,
        shard_overlap: 2_048,
        ..PipelineConfig::default()
    };
    let (out, m) = run_stream(&reads, &reference, &backend, &cfg);
    assert!(!out.is_empty());
    assert_eq!(m.shard_index.shards.len(), 4);
    assert_eq!(m.shard_index.overlap, 2_048);
    for sm in &m.shard_index.shards {
        assert!(sm.end > sm.start, "degenerate shard span");
        assert!(sm.busy.as_nanos() > 0, "shard did no work: {sm:?}");
    }
    // Consecutive spans overlap, and a fat overlap on a small genome
    // guarantees the merge saw (and removed) duplicate anchors.
    for pair in m.shard_index.shards.windows(2) {
        assert!(pair[1].start < pair[0].end, "shards do not overlap");
    }
    assert!(
        m.shard_index.dup_anchors_merged > 0,
        "2 kb overlaps on a 50 kb genome must produce duplicate anchors"
    );
    // The per-shard telemetry shows up in the --metrics rendering.
    assert!(m.summary().contains("shards:   4"), "{}", m.summary());
}

#[test]
fn output_is_independent_of_rayon_thread_count() {
    let (reference, reads) = workload(40_000, 6, 700);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig {
        batch_bases: 8 * 1024,
        queue_depth: 2,
        dispatchers: 2,
        shards: env_shards(),
        ..PipelineConfig::default()
    };
    let (many, _) = run_stream(&reads, &reference, &backend, &cfg);
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build_global()
        .unwrap();
    let (single, _) = run_stream(&reads, &reference, &backend, &cfg);
    rayon::ThreadPoolBuilder::new()
        .num_threads(0)
        .build_global()
        .unwrap();
    assert_eq!(single, many, "1-thread output diverged from many-thread");
}

#[test]
fn resident_memory_is_bounded_by_queue_capacity_not_workload_size() {
    // Workload far larger than the queue capacity: 150 reads stream
    // through a pipeline configured to hold ~one 2 KB batch per stage.
    let (reference, reads) = workload(50_000, 150, 500);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig {
        batch_bases: 2 * 1024,
        queue_depth: 1,
        dispatchers: 1,
        shards: env_shards(),
        params: CandidateParams::default(),
        ..PipelineConfig::default()
    };
    let (out, metrics) = run_stream(&reads, &reference, &backend, &cfg);
    assert!(!out.is_empty());

    let bound = cfg.resident_bases_bound(metrics.max_task_bases as usize) as u64;
    assert!(
        metrics.max_inflight_bases <= bound,
        "peak {} bases in flight exceeds the configured bound {}",
        metrics.max_inflight_bases,
        bound
    );
    // The bound is meaningful: the workload is much larger than it.
    assert!(
        metrics.task_bases > 4 * bound,
        "workload ({} bases) must dwarf the residency bound ({bound}) for this test \
         to demonstrate streaming",
        metrics.task_bases
    );
    // The task queue never exceeded its weight capacity by more than
    // one oversized admission.
    assert!(
        metrics.task_queue.high_water
            <= (metrics.task_queue.capacity as u64) + metrics.max_task_bases,
        "task queue high-water {} vs capacity {}",
        metrics.task_queue.high_water,
        metrics.task_queue.capacity
    );
}

#[test]
fn metrics_report_every_stage() {
    let (reference, reads) = workload(40_000, 8, 600);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig {
        batch_bases: 4 * 1024,
        queue_depth: 4,
        dispatchers: 1,
        shards: env_shards(),
        params: CandidateParams::default(),
        ..PipelineConfig::default()
    };
    let (out, m) = run_stream(&reads, &reference, &backend, &cfg);

    assert_eq!(m.reads_in, 8);
    assert!(m.reads_mapped > 0, "no read mapped");
    assert!(m.tasks_generated > 0);
    assert!(m.task_bases > 0);
    assert!(m.query_bases > 0);
    assert!(m.batches > 0);
    assert_eq!(m.batch_tasks, m.tasks_generated);
    assert_eq!(m.batch_bases, m.task_bases);
    assert_eq!(m.records_out as usize, out.lines().count());
    assert!(m.records_out > 0);
    // Histogram totals the dispatched batches.
    assert_eq!(m.batch_size_hist.iter().sum::<u64>(), m.batches);
    // Queues saw traffic.
    assert_eq!(m.task_queue.pushed, m.tasks_generated);
    assert_eq!(m.batch_queue.pushed, m.batches);
    assert_eq!(m.result_queue.pushed, m.batches);
    assert!(m.task_queue.high_water > 0);
    // Shard telemetry matches the configured fan-out (every contig
    // gets at least one shard, so multi-contig runs may exceed the
    // target).
    assert_eq!(m.shard_index.contigs, env_contigs());
    if env_contigs() == 1 {
        assert_eq!(m.shard_index.shards.len(), env_shards());
    } else {
        assert!(m.shard_index.shards.len() >= env_shards().max(env_contigs()));
    }
    assert!(m.shard_index.reference_bytes > 0);
    assert!(m.shard_index.shards.iter().all(|s| s.busy.as_nanos() > 0));
    // Every stage did measurable work.
    assert!(m.mapper_busy.as_nanos() > 0, "mapper busy time is zero");
    assert!(
        m.scheduler_busy.as_nanos() > 0,
        "scheduler busy time is zero"
    );
    assert!(m.backend_busy.as_nanos() > 0, "backend busy time is zero");
    assert!(m.sink_busy.as_nanos() > 0, "sink busy time is zero");
    assert!(m.wall.as_nanos() > 0);
    assert!(m.backend_utilization() > 0.0);
    assert!(m.query_bases_per_sec() > 0.0);
    // Nothing is left in flight after a clean finish.
    assert!(m.max_inflight_tasks >= 1);
    // The CPU backend surfaces its engine instrumentation, including
    // the error-band counters fed by the mapper's edit-bound hints.
    let engine = m.engine.expect("CpuBackend must report engine stats");
    assert!(engine.windows > 0, "no windows counted");
    assert!(engine.rows_computed > 0);
    assert!(
        engine.peak_band_rows > 0,
        "peak band width must be recorded"
    );
    assert!(
        engine.band_cells_skipped > 0,
        "hinted low-error reads must skip band cells"
    );
    let summary = m.summary();
    assert!(summary.contains("batches"), "{summary}");
    assert!(summary.contains("band:"), "{summary}");
}

#[test]
fn input_errors_propagate_and_unwind_cleanly() {
    let (reference, reads) = workload(30_000, 3, 500);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig::default();
    let stream = reads
        .iter()
        .map(|(name, seq)| {
            Ok(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
        })
        .chain(std::iter::once(Err("disk on fire")));
    let err = run_pipeline(stream, reference.clone(), &backend, &cfg, |_| Ok(()))
        .expect_err("input error must fail the run");
    match err {
        PipelineError::Input(msg) => assert!(msg.contains("disk on fire"), "{msg}"),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn sink_errors_propagate_and_unwind_cleanly() {
    let (reference, reads) = workload(30_000, 3, 500);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig {
        batch_bases: 1, // many small batches keep upstream stages busy
        queue_depth: 1,
        ..PipelineConfig::default()
    };
    let stream = reads.iter().map(|(name, seq)| {
        Ok::<_, std::convert::Infallible>(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
    });
    let err = run_pipeline(stream, reference.clone(), &backend, &cfg, |_| {
        Err(std::io::Error::other("broken pipe"))
    })
    .expect_err("sink error must fail the run");
    match err {
        PipelineError::Sink(e) => assert!(e.to_string().contains("broken pipe")),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn backend_errors_mid_run_unwind_without_panicking_or_partial_reads() {
    /// Fails every batch after the first: later batches strand in the
    /// reorder buffer and the current read is left incomplete — the
    /// abort path must surface the backend error, not a panic or a
    /// partially emitted read.
    struct FlakyBackend {
        inner: CpuBackend,
        calls: std::sync::atomic::AtomicUsize,
    }
    impl Backend for FlakyBackend {
        fn name(&self) -> &'static str {
            "flaky"
        }
        fn align_batch(
            &self,
            tasks: &[align_core::AlignTask],
        ) -> Result<Vec<Option<align_core::Alignment>>, genasm_pipeline::BackendError> {
            if self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                >= 1
            {
                return Err(genasm_pipeline::BackendError {
                    backend: "flaky",
                    reason: "injected failure".to_string(),
                });
            }
            self.inner.align_batch(tasks)
        }
    }

    let (reference, reads) = workload(40_000, 10, 600);
    let backend = FlakyBackend {
        inner: CpuBackend::improved(),
        calls: std::sync::atomic::AtomicUsize::new(0),
    };
    let cfg = PipelineConfig {
        batch_bases: 2 * 1024, // several batches, so reads span the failure
        queue_depth: 2,
        dispatchers: 2,
        ..PipelineConfig::default()
    };
    let stream = reads.iter().map(|(name, seq)| {
        Ok::<_, std::convert::Infallible>(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
    });
    let mut emitted: Vec<String> = Vec::new();
    let err = run_pipeline(stream, reference.clone(), &backend, &cfg, |rec| {
        emitted.push(rec.qname.clone());
        Ok(())
    })
    .expect_err("injected backend failure must fail the run");
    match err {
        PipelineError::Backend(e) => assert!(e.to_string().contains("injected failure")),
        other => panic!("unexpected error {other}"),
    }
    // Any records that did get out are whole reads in input order
    // (never a partially reported read).
    let expected = one_shot_cpu(&reads, &reference, &CandidateParams::default());
    let mut expected_per_read: Vec<(String, usize)> = Vec::new();
    for line in expected.lines() {
        let name = line.split('\t').next().unwrap().to_string();
        match expected_per_read.last_mut() {
            Some((n, c)) if *n == name => *c += 1,
            _ => expected_per_read.push((name, 1)),
        }
    }
    let mut got_per_read: Vec<(String, usize)> = Vec::new();
    for name in &emitted {
        match got_per_read.last_mut() {
            Some((n, c)) if n == name => *c += 1,
            _ => got_per_read.push((name.clone(), 1)),
        }
    }
    assert!(
        got_per_read.len() <= expected_per_read.len(),
        "more reads than the workload has"
    );
    for (got, want) in got_per_read.iter().zip(&expected_per_read) {
        assert_eq!(got, want, "partial read emitted on the abort path");
    }
}

#[test]
fn empty_input_completes_with_zero_records() {
    let (reference, _) = workload(30_000, 1, 500);
    let backend = CpuBackend::improved();
    let stream = std::iter::empty::<Result<ReadInput, std::convert::Infallible>>();
    let metrics = run_pipeline(
        stream,
        reference,
        &backend,
        &PipelineConfig::default(),
        |_| Ok(()),
    )
    .unwrap();
    assert_eq!(metrics.reads_in, 0);
    assert_eq!(metrics.records_out, 0);
    assert_eq!(metrics.batches, 0);
}

/// Telemetry is passive: running the identical workload with a Chrome
/// trace recorder attached (events serialized, to a sink) and the JSON
/// expositions rendered never changes a single output byte. This is
/// the byte-geometry contract of the telemetry layer.
#[test]
fn tracing_and_exposition_never_change_output_bytes() {
    use genasm_pipeline::TraceRecorder;
    use std::sync::Arc;

    let (reference, reads) = workload(40_000, 8, 600);
    let backend = CpuBackend::improved();
    let plain_cfg = PipelineConfig {
        batch_bases: 8 * 1024,
        queue_depth: 2,
        shards: env_shards(),
        ..PipelineConfig::default()
    };
    let (plain, _) = run_stream(&reads, &reference, &backend, &plain_cfg);

    // Shared buffer so the test can also sanity-check the emitted JSON.
    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
    let trace = Arc::new(TraceRecorder::to_writer(Box::new(buf.clone())));
    let traced_cfg = PipelineConfig {
        trace: Some(Arc::clone(&trace)),
        ..plain_cfg.clone()
    };
    let (traced, m) = run_stream(&reads, &reference, &backend, &traced_cfg);
    trace.finish().unwrap();

    assert_eq!(plain, traced, "tracing changed the output bytes");
    // Rendering the expositions is also output-neutral by construction
    // (they only read atomics), but exercise them so a panic or a
    // malformed rendering fails here rather than in CI's smoke test.
    assert!(m
        .to_json()
        .starts_with("{\"schema\":\"genasm-pipeline-metrics/v1\""));
    assert!(m.to_prometheus().contains("genasm_reads_in_total 8"));
    let trace_bytes = buf.0.lock().unwrap().clone();
    let trace_text = String::from_utf8(trace_bytes).unwrap();
    assert!(trace_text.trim_start().starts_with('['));
    assert!(trace_text.trim_end().ends_with(']'));
    assert!(trace_text.contains("\"name\":\"read\""), "no read spans");
    assert!(
        trace_text.contains("\"name\":\"execute\""),
        "no execute spans"
    );
    assert!(trace_text.contains("\"ph\":\"M\""), "no thread metadata");
}

/// `--explain` is passive: the identical workload run with an explain
/// sink attached produces byte-identical records, and the explain
/// stream carries exactly one well-formed `genasm-explain/v1` line per
/// input read — including reads that never produce a record. The
/// funnel counters partition `reads_in` exactly.
#[test]
fn explain_stream_is_passive_and_covers_every_read() {
    use genasm_pipeline::ExplainSink;
    use std::sync::Arc;

    let (reference, mut reads) = workload(40_000, 8, 600);
    // An empty read can never anchor: it must still get an explain
    // line (disposition unmapped:no_anchors) despite emitting nothing.
    reads.push(("lost \"read\"".to_string(), Seq::new()));
    let backend = CpuBackend::improved();
    let plain_cfg = PipelineConfig {
        batch_bases: 8 * 1024,
        queue_depth: 2,
        shards: env_shards(),
        ..PipelineConfig::default()
    };
    let (plain, _) = run_stream(&reads, &reference, &backend, &plain_cfg);

    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let buf = SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())));
    let explained_cfg = PipelineConfig {
        explain: Some(Arc::new(ExplainSink::new(Box::new(buf.clone())))),
        ..plain_cfg.clone()
    };
    let (explained, m) = run_stream(&reads, &reference, &backend, &explained_cfg);
    assert_eq!(plain, explained, "explain changed the output bytes");

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(
        lines.len(),
        reads.len(),
        "one explain line per read:\n{text}"
    );
    for line in &lines {
        assert!(
            line.starts_with("{\"schema\":\"genasm-explain/v1\""),
            "{line}"
        );
        assert_eq!(
            line.matches('{').count(),
            line.matches('}').count(),
            "{line}"
        );
    }
    // Every input read appears exactly once, hostile names escaped.
    for (name, _) in &reads {
        let esc = genasm_telemetry::json::escape(name);
        let needle = format!("\"read\":\"{esc}\"");
        assert_eq!(
            lines.iter().filter(|l| l.contains(&needle)).count(),
            1,
            "read {name:?} not explained exactly once"
        );
    }
    assert!(
        text.contains("\"disposition\":\"unmapped:no_anchors\""),
        "the empty read's disposition is missing:\n{text}"
    );
    // The funnel partitions reads_in on the metrics surface too.
    let f = m.funnel;
    assert_eq!(f.reads_in, reads.len() as u64);
    assert_eq!(f.reads_in, f.aligned + f.unmapped_total() + f.failed);
    assert_eq!(f.unmapped_no_anchors, 1);
}

/// The latency histograms cover the full read lifecycle: every read
/// gets an end-to-end latency sample, every batch a build-time and a
/// backend execute sample, and the per-backend breakdown matches the
/// global batch counters.
#[test]
fn latency_histograms_cover_the_read_lifecycle() {
    let (reference, reads) = workload(40_000, 8, 600);
    let backend = CpuBackend::improved();
    let cfg = PipelineConfig {
        batch_bases: 4 * 1024,
        queue_depth: 4,
        shards: env_shards(),
        ..PipelineConfig::default()
    };
    let (_, m) = run_stream(&reads, &reference, &backend, &cfg);

    assert_eq!(m.read_latency.count, m.reads_in, "one sample per read");
    assert_eq!(m.task_queue_wait.count, m.tasks_generated);
    assert_eq!(m.batch_build.count, m.batches);
    assert_eq!(m.reorder_wait.count, m.batches);
    assert!(m.read_latency.p50() <= m.read_latency.p99());
    assert!(m.read_latency.sum > 0, "reads cannot take zero time");
    // Under a fixed backend the breakdown has one entry; under the
    // `auto` axis batches split across cpu and gpu-sim — either way
    // every dispatched batch is accounted to exactly one backend.
    assert!(!m.backends.is_empty(), "backend breakdown missing");
    assert_eq!(m.backends.iter().map(|b| b.batches).sum::<u64>(), m.batches);
    assert_eq!(
        m.backends.iter().map(|b| b.tasks).sum::<u64>(),
        m.batch_tasks
    );
    assert_eq!(
        m.backends.iter().map(|b| b.execute.count).sum::<u64>(),
        m.batches
    );
    assert_eq!(
        m.backends.iter().map(|b| b.queue_wait.count).sum::<u64>(),
        m.batches
    );
    if !env_auto() {
        let be = m
            .backends
            .iter()
            .find(|b| b.name == backend.name())
            .expect("fixed backend missing from the breakdown");
        assert_eq!(be.batches, m.batches);
    } else {
        // The router's decisions surface as first-class telemetry.
        assert_eq!(
            m.router_batches.iter().map(|(_, n)| n).sum::<u64>(),
            m.batches,
            "every batch must be accounted to a routing decision"
        );
    }
}
