//! Properties of the long-lived [`PipelineService`]:
//!
//! 1. **Per-session determinism** — every concurrent session's output
//!    is byte-identical to a one-shot [`run_pipeline`] (itself proven
//!    byte-identical to `genasm align`) over that session's reads,
//!    for any interleaving of sessions and mix of backends.
//! 2. **Server-wide bounded memory** — peak resident bases across all
//!    sessions stay within [`ServiceConfig::resident_bases_bound`].
//! 3. **Admission control** — the session cap and the draining state
//!    refuse new sessions with typed errors.
//! 4. **Graceful drain** — shutdown waits for in-flight sessions,
//!    delivers every row, then refuses new work.

use std::sync::Arc;

use align_core::{Reference, Seq};
use genasm_pipeline::{
    run_pipeline, AdmissionError, BackendKind, OverflowPolicy, PipelineConfig, PipelineService,
    ReadInput, ServiceConfig, SessionEvent, SubmitError,
};
use readsim::{simulate_reads, ErrorModel, Genome, GenomeConfig, ReadConfig};

/// Deterministic synthetic workload: (reference, named reads).
/// `n_reads == 0` returns just the reference (callers simulate their
/// own per-session read sets from `seq`).
fn workload(genome_len: usize, n_reads: usize, read_len: usize, seed: u64) -> WorkloadData {
    let genome = Genome::generate(&GenomeConfig::human_like(genome_len, 77));
    let named = if n_reads == 0 {
        Vec::new()
    } else {
        simulate_reads(
            &genome,
            &ReadConfig {
                count: n_reads,
                length: read_len,
                errors: ErrorModel::pacbio_clr(0.08),
                rc_fraction: 0.5,
                seed,
            },
        )
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("s{seed}read{i}"), r.seq))
        .collect()
    };
    WorkloadData {
        reference: Reference::single("ref", genome.seq.clone()),
        seq: genome.seq,
        reads: named,
    }
}

struct WorkloadData {
    reference: Reference,
    /// The raw contig sequence, for simulating further read sets.
    seq: Seq,
    reads: Vec<(String, Seq)>,
}

/// The golden expectation: one-shot pipeline output over these reads
/// (byte-identical to `genasm align` by the determinism suite).
fn one_shot(reads: &[(String, Seq)], reference: &Reference, backend: BackendKind) -> String {
    let stream = reads.iter().map(|(name, seq)| {
        Ok::<_, std::convert::Infallible>(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
    });
    let mut buf = String::new();
    run_pipeline(
        stream,
        reference.clone(),
        backend.create().as_ref(),
        &PipelineConfig::default(),
        |rec| {
            buf.push_str(&rec.to_tsv());
            buf.push('\n');
            Ok(())
        },
    )
    .expect("one-shot pipeline failed");
    buf
}

/// Drive one service session over `reads`, collecting TSV output and
/// the end-of-session metrics.
fn run_session(
    service: &PipelineService,
    backend: impl Into<genasm_pipeline::BackendChoice>,
    reads: &[(String, Seq)],
) -> (String, genasm_pipeline::SessionMetrics) {
    let (mut session, receiver) = service.open_session(backend).expect("admission");
    for (name, seq) in reads {
        session
            .submit(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
            .expect("submit");
    }
    session.finish();
    let mut out = String::new();
    let mut metrics = None;
    while let Some(event) = receiver.recv() {
        match event {
            SessionEvent::Rows(rows) => {
                for r in &rows {
                    out.push_str(&r.to_tsv());
                    out.push('\n');
                }
            }
            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
            SessionEvent::Explain(_) => {}
            SessionEvent::Overflow {
                buffered_bytes,
                cap,
            } => {
                panic!("unexpected overflow: {buffered_bytes} buffered, cap {cap}")
            }
            SessionEvent::End(m) => {
                metrics = Some(m);
                break;
            }
        }
    }
    (out, metrics.expect("End event delivered"))
}

#[test]
fn single_session_matches_one_shot_pipeline() {
    let w = workload(80_000, 6, 900, 11);
    let expected = one_shot(&w.reads, &w.reference, BackendKind::Cpu);
    assert!(!expected.is_empty());

    let service = PipelineService::start("ref", w.reference.clone(), ServiceConfig::default());
    let (got, m) = run_session(&service, BackendKind::Cpu, &w.reads);
    assert_eq!(got, expected, "session output diverged from one-shot");
    assert_eq!(m.reads_in, 6);
    assert_eq!(m.records_out as usize, expected.lines().count());
    assert_eq!(m.reads_failed, 0);
    service.shutdown();
}

#[test]
fn concurrent_sessions_each_match_one_shot_across_backends() {
    // Four interleaved sessions with distinct read sets and a mix of
    // backends, hammering the shared queues from four threads at once.
    let base = workload(90_000, 0, 0, 1);
    let reference = base.reference;
    let sessions: Vec<(BackendKind, Vec<(String, Seq)>)> = [
        (BackendKind::Cpu, 21u64),
        (BackendKind::Edlib, 22),
        (BackendKind::Cpu, 23),
        (BackendKind::Ksw2, 24),
    ]
    .iter()
    .map(|&(backend, seed)| {
        let genome = Genome {
            seq: base.seq.clone(),
            planted: Vec::new(),
        };
        let reads = simulate_reads(
            &genome,
            &ReadConfig {
                count: 5,
                length: 700,
                errors: ErrorModel::pacbio_clr(0.08),
                rc_fraction: 0.5,
                seed,
            },
        );
        let named = reads
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("s{seed}read{i}"), r.seq))
            .collect();
        (backend, named)
    })
    .collect();

    let expected: Vec<String> = sessions
        .iter()
        .map(|(backend, reads)| one_shot(reads, &reference, *backend))
        .collect();

    // Small batches so sessions genuinely interleave inside shared
    // batches and the per-backend builders.
    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 4 * 1024,
            queue_depth: 4,
            dispatchers: 2,
            ..PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(PipelineService::start("ref", reference.clone(), cfg));
    let outputs: Vec<(String, genasm_pipeline::SessionMetrics)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|(backend, reads)| {
                let service = Arc::clone(&service);
                scope.spawn(move || run_session(&service, *backend, reads))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ((got, m), want)) in outputs.iter().zip(&expected).enumerate() {
        assert!(!want.is_empty(), "session {i} produced nothing");
        assert_eq!(got, want, "session {i} diverged from one-shot output");
        assert_eq!(m.reads_in, 5, "session {i}");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.reads_in, 20);
    assert_eq!(
        metrics.records_out as usize,
        expected.iter().map(|e| e.lines().count()).sum::<usize>()
    );
}

#[test]
fn server_wide_residency_stays_within_the_configured_bound() {
    // Three greedy sessions, tiny queues: the shared task queue must
    // cap resident bases across *all* sessions together.
    let w = workload(70_000, 0, 0, 2);
    let reference = w.reference;
    let raw_seq = w.seq;
    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 2 * 1024,
            queue_depth: 2,
            dispatchers: 1,
            ..PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(PipelineService::start(
        "ref",
        reference.clone(),
        cfg.clone(),
    ));
    std::thread::scope(|scope| {
        for seed in [31u64, 32, 33] {
            let service = Arc::clone(&service);
            let raw_seq = raw_seq.clone();
            scope.spawn(move || {
                let genome = Genome {
                    seq: raw_seq,
                    planted: Vec::new(),
                };
                let reads = simulate_reads(
                    &genome,
                    &ReadConfig {
                        count: 20,
                        length: 600,
                        errors: ErrorModel::pacbio_clr(0.08),
                        rc_fraction: 0.5,
                        seed,
                    },
                );
                let named: Vec<(String, Seq)> = reads
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| (format!("s{seed}r{i}"), r.seq))
                    .collect();
                run_session(&service, BackendKind::Cpu, &named)
            });
        }
    });
    let metrics = service.shutdown();
    assert_eq!(metrics.reads_in, 60);
    let bound = cfg.resident_bases_bound(metrics.max_task_bases as usize, 1);
    assert!(
        metrics.max_inflight_bases as usize <= bound,
        "peak {} bases exceeded the server-wide bound {bound} \
         (max task {} bases)",
        metrics.max_inflight_bases,
        metrics.max_task_bases
    );
    // The workload is far larger than the bound, so the cap really bit.
    assert!(
        metrics.task_bases > bound as u64,
        "workload too small to exercise the bound: {} <= {bound}",
        metrics.task_bases
    );
}

#[test]
fn session_cap_refuses_with_busy() {
    let w = workload(30_000, 0, 0, 3);
    let cfg = ServiceConfig {
        max_sessions: 2,
        ..ServiceConfig::default()
    };
    let service = PipelineService::start("ref", w.reference, cfg);
    let a = service.open_session(BackendKind::Cpu).unwrap();
    let b = service.open_session(BackendKind::Cpu).unwrap();
    match service.open_session(BackendKind::Cpu) {
        Err(AdmissionError::Busy { active, max }) => {
            assert_eq!((active, max), (2, 2));
        }
        other => panic!("expected Busy, got {:?}", other.err()),
    }
    drop(a);
    // A released slot is immediately reusable.
    let c = service.open_session(BackendKind::Cpu).unwrap();
    drop(b);
    drop(c);
    service.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_sessions_and_refuses_new_ones() {
    let w = workload(80_000, 5, 800, 4);
    let expected = one_shot(&w.reads, &w.reference, BackendKind::Cpu);
    let service = Arc::new(PipelineService::start(
        "ref",
        w.reference.clone(),
        ServiceConfig::default(),
    ));

    let (mut session, receiver) = service.open_session(BackendKind::Cpu).unwrap();
    for (name, seq) in &w.reads {
        session
            .submit(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
            .unwrap();
    }

    // Shutdown from another thread: it must block on the open session.
    let svc = Arc::clone(&service);
    let shutdown_thread = std::thread::spawn(move || svc.shutdown());
    while !service.is_draining() {
        std::thread::yield_now();
    }
    match service.open_session(BackendKind::Cpu) {
        Err(AdmissionError::Draining) => {}
        other => panic!("expected Draining, got {:?}", other.err()),
    }

    // The in-flight session still completes with full, correct output.
    session.finish();
    let mut got = String::new();
    let mut ended = false;
    while let Some(event) = receiver.recv() {
        match event {
            SessionEvent::Rows(rows) => {
                for r in &rows {
                    got.push_str(&r.to_tsv());
                    got.push('\n');
                }
            }
            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
            SessionEvent::Explain(_) => {}
            SessionEvent::Overflow {
                buffered_bytes,
                cap,
            } => {
                panic!("unexpected overflow: {buffered_bytes} buffered, cap {cap}")
            }
            SessionEvent::End(_) => {
                ended = true;
                break;
            }
        }
    }
    assert!(ended, "drain must deliver the End event");
    assert_eq!(got, expected, "drained session lost or reordered rows");

    let metrics = shutdown_thread.join().unwrap();
    assert_eq!(metrics.records_out as usize, expected.lines().count());
    match service.open_session(BackendKind::Cpu) {
        Err(AdmissionError::Draining) => {}
        other => panic!("post-shutdown admission must fail, got {:?}", other.err()),
    }
}

#[test]
fn lightly_loaded_session_is_not_starved_by_steady_traffic() {
    // Session A submits one small read to `cpu` while session B keeps
    // a steady task stream flowing to `edlib` with gaps shorter than
    // the linger. The batch target is unreachable, so A's rows can
    // only be released by the *age*-based linger flush — an idle-only
    // flush would starve A for as long as B keeps talking.
    use std::sync::atomic::{AtomicBool, Ordering};
    let w = workload(60_000, 1, 600, 6);
    let reference = w.reference.clone();
    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 1 << 30, // never reached: only the linger can flush
            ..PipelineConfig::default()
        },
        linger: std::time::Duration::from_millis(50),
        ..ServiceConfig::default()
    };
    let service = Arc::new(PipelineService::start("ref", reference.clone(), cfg));
    let stop = Arc::new(AtomicBool::new(false));

    let b_service = Arc::clone(&service);
    let b_stop = Arc::clone(&stop);
    let b_seq = w.seq.clone();
    let b_thread = std::thread::spawn(move || {
        let genome = Genome {
            seq: b_seq,
            planted: Vec::new(),
        };
        let reads = simulate_reads(
            &genome,
            &ReadConfig {
                count: 40,
                length: 400,
                errors: ErrorModel::pacbio_clr(0.05),
                rc_fraction: 0.5,
                seed: 61,
            },
        );
        let (mut session, receiver) = b_service.open_session(BackendKind::Edlib).unwrap();
        let mut i = 0usize;
        while !b_stop.load(Ordering::Relaxed) {
            let r = &reads[i % reads.len()];
            session
                .submit(ReadInput {
                    name: format!("b{i}"),
                    seq: r.seq.clone(),
                })
                .unwrap();
            i += 1;
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        session.finish();
        while let Some(event) = receiver.recv() {
            if matches!(event, SessionEvent::End(_)) {
                break;
            }
        }
    });

    // Give B a head start so its traffic is flowing when A submits.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let (mut a_session, a_receiver) = service.open_session(BackendKind::Cpu).unwrap();
    let (name, seq) = &w.reads[0];
    a_session
        .submit(ReadInput {
            name: name.clone(),
            seq: seq.clone(),
        })
        .unwrap();
    a_session.finish();
    let mut got_rows = false;
    let deadline = std::time::Duration::from_secs(20);
    loop {
        match a_receiver.recv_timeout(deadline) {
            Some(SessionEvent::Rows(rows)) => got_rows = !rows.is_empty(),
            Some(SessionEvent::ReadFailed { read }) => panic!("read {read} failed"),
            Some(SessionEvent::Explain(_)) => {}
            Some(SessionEvent::Overflow { .. }) => panic!("unexpected overflow for session A"),
            Some(SessionEvent::End(_)) => break,
            None => panic!("session A starved: no event within {deadline:?} while B streams"),
        }
    }
    assert!(got_rows, "session A's read produced no rows");

    stop.store(true, Ordering::Relaxed);
    b_thread.join().unwrap();
    service.shutdown();
}

// NOTE: the historical `multi_contig_sessions_match_one_shot_and_name_contigs`
// test was retired when `run_pipeline` became a wrapper over a service
// session — its service-vs-one-shot byte comparison degenerated to
// comparing a session with itself. Contig naming and coordinate
// correctness are covered by the determinism suite
// (`multi_contig_runs_are_shard_invariant_and_contig_correct`), and
// `single_session_matches_one_shot_pipeline` above stays as the one
// equivalence canary.

/// Adaptive routing under concurrency: four sessions with deliberately
/// mixed read lengths all ask for `auto`, so the router interleaves
/// cpu and gpu-sim dispatch across their shared batches — and every
/// session's output must still be byte-identical to a fixed-cpu
/// one-shot over its reads (cpu and gpu-sim are bit-identical
/// engines; the ordered sink restores submission order).
#[test]
fn concurrent_auto_sessions_stay_byte_identical_to_one_shot() {
    use genasm_pipeline::BackendChoice;

    let base = workload(90_000, 0, 0, 1);
    let reference = base.reference;
    // Distinct read lengths per session: short and long reads force
    // heterogeneous batch shapes through the router's cost model.
    let sessions: Vec<Vec<(String, Seq)>> = [(21u64, 400usize), (22, 700), (23, 1_000), (24, 600)]
        .iter()
        .map(|&(seed, length)| {
            let genome = Genome {
                seq: base.seq.clone(),
                planted: Vec::new(),
            };
            simulate_reads(
                &genome,
                &ReadConfig {
                    count: 5,
                    length,
                    errors: ErrorModel::pacbio_clr(0.08),
                    rc_fraction: 0.5,
                    seed,
                },
            )
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("s{seed}read{i}"), r.seq))
            .collect()
        })
        .collect();

    let expected: Vec<String> = sessions
        .iter()
        .map(|reads| one_shot(reads, &reference, BackendKind::Cpu))
        .collect();

    // Small batches so routing decisions happen many times per session.
    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 4 * 1024,
            queue_depth: 4,
            dispatchers: 2,
            ..PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(PipelineService::start("ref", reference.clone(), cfg));
    let outputs: Vec<(String, genasm_pipeline::SessionMetrics)> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|reads| {
                let service = Arc::clone(&service);
                scope.spawn(move || run_session(&service, BackendChoice::Auto, reads))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ((got, m), want)) in outputs.iter().zip(&expected).enumerate() {
        assert!(!want.is_empty(), "session {i} produced nothing");
        assert_eq!(
            got, want,
            "auto session {i} diverged from the fixed-cpu one-shot"
        );
        assert_eq!(m.reads_failed, 0, "session {i}");
    }
    let metrics = service.shutdown();
    assert_eq!(metrics.reads_in, 20);
    // Every dispatched batch carries a routing decision, and the
    // decisions surface in the metrics snapshot.
    assert_eq!(
        metrics.router_batches.iter().map(|(_, n)| n).sum::<u64>(),
        metrics.batches,
        "router accounting must cover every batch"
    );
    assert!(
        metrics.summary().contains("router:"),
        "{}",
        metrics.summary()
    );
}

#[test]
fn unmapped_reads_complete_without_rows() {
    let w = workload(40_000, 2, 700, 5);
    let service = PipelineService::start("ref", w.reference, ServiceConfig::default());
    let (mut session, receiver) = service.open_session(BackendKind::Cpu).unwrap();
    // An empty read can never anchor: it completes instantly.
    let n = session
        .submit(ReadInput {
            name: "empty".to_string(),
            seq: Seq::new(),
        })
        .unwrap();
    assert_eq!(n, 0, "empty read must generate no tasks");
    for (name, seq) in &w.reads {
        session
            .submit(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
            .unwrap();
    }
    session.finish();
    let mut metrics = None;
    let mut rows = 0usize;
    while let Some(event) = receiver.recv() {
        match event {
            SessionEvent::Rows(r) => rows += r.len(),
            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
            SessionEvent::Explain(_) => {}
            SessionEvent::Overflow {
                buffered_bytes,
                cap,
            } => {
                panic!("unexpected overflow: {buffered_bytes} buffered, cap {cap}")
            }
            SessionEvent::End(m) => {
                metrics = Some(m);
                break;
            }
        }
    }
    let m = metrics.unwrap();
    assert_eq!(m.reads_in, 3);
    assert_eq!(m.reads_mapped, 2, "the empty read is unmapped");
    assert_eq!(m.records_out as usize, rows);
    assert!(rows > 0);
    service.shutdown();
}

/// Snapshot consistency under concurrency (the telemetry layer's
/// ordering contract): with N interleaved sessions,
///
/// * every session's final counters sum exactly to the service-wide
///   registry counters (no sample is lost or double-counted across
///   the shared queues),
/// * a snapshot taken mid-run is field-by-field `<=` the final one
///   (per-field monotonicity — the contract documented on
///   `StageCounters`), and
/// * the machine-readable expositions agree with the live registry.
#[test]
fn interleaved_session_counters_sum_to_global_and_snapshots_are_monotonic() {
    let base = workload(90_000, 0, 0, 1);
    let reference = base.reference;
    let session_specs: Vec<(BackendKind, Vec<(String, Seq)>)> = [
        (BackendKind::Cpu, 41u64),
        (BackendKind::Edlib, 42),
        (BackendKind::Cpu, 43),
        (BackendKind::Ksw2, 44),
    ]
    .iter()
    .map(|&(backend, seed)| {
        let genome = Genome {
            seq: base.seq.clone(),
            planted: Vec::new(),
        };
        let named = simulate_reads(
            &genome,
            &ReadConfig {
                count: 6,
                length: 700,
                errors: ErrorModel::pacbio_clr(0.08),
                rc_fraction: 0.5,
                seed,
            },
        )
        .into_iter()
        .enumerate()
        .map(|(i, r)| (format!("s{seed}read{i}"), r.seq))
        .collect();
        (backend, named)
    })
    .collect();

    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 4 * 1024,
            queue_depth: 4,
            dispatchers: 2,
            ..PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(PipelineService::start("ref", reference, cfg));

    // A sampler thread snapshots the live registry while the sessions
    // hammer it; every snapshot it takes must be `<=` its successor.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (per_session, mid_snapshots) = std::thread::scope(|scope| {
        let sampler = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut snaps = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    snaps.push(service.metrics());
                    std::thread::yield_now();
                }
                snaps
            })
        };
        let handles: Vec<_> = session_specs
            .iter()
            .map(|(backend, reads)| {
                let service = Arc::clone(&service);
                scope.spawn(move || run_session(&service, *backend, reads))
            })
            .collect();
        let per_session: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        (per_session, sampler.join().unwrap())
    });

    // Per-session counters sum exactly to the global registry.
    let global = service.metrics();
    let sum = |f: fn(&genasm_pipeline::SessionMetrics) -> u64| {
        per_session.iter().map(|(_, m)| f(m)).sum::<u64>()
    };
    assert_eq!(global.reads_in, sum(|m| m.reads_in));
    assert_eq!(global.reads_mapped, sum(|m| m.reads_mapped));
    assert_eq!(global.tasks_generated, sum(|m| m.tasks));
    assert_eq!(global.task_bases, sum(|m| m.task_bases));
    assert_eq!(global.records_out, sum(|m| m.records_out));
    assert_eq!(global.read_latency.count, global.reads_in);

    // Every mid-run snapshot is `<=` the final state, and consecutive
    // snapshots are pairwise monotonic.
    for (i, snap) in mid_snapshots.iter().enumerate() {
        snap.le_monotonic(&global)
            .unwrap_or_else(|e| panic!("snapshot {i} exceeds the final state: {e}"));
    }
    for (i, pair) in mid_snapshots.windows(2).enumerate() {
        pair[0]
            .le_monotonic(&pair[1])
            .unwrap_or_else(|e| panic!("snapshots {i}->{} not monotonic: {e}", i + 1));
    }
    assert!(!mid_snapshots.is_empty(), "sampler never ran");

    // The expositions render the same registry: spot-check one counter
    // through all three surfaces.
    let json = service.stats_json();
    assert!(
        json.contains(&format!("\"reads_in\":{}", global.reads_in)),
        "{json}"
    );
    let prom = service.stats_prometheus();
    assert!(
        prom.contains(&format!("genasm_reads_in_total {}", global.reads_in)),
        "{prom}"
    );
    // All four sessions ran to completion, so the live per-session
    // list is empty again (closed sessions drop out of the registry).
    assert!(service.session_stats().is_empty());
    service.shutdown();
}

/// Simulate `count` named reads over a raw contig (for sessions that
/// need their own read set distinct from [`workload`]'s).
fn extra_reads(seq: &Seq, count: usize, length: usize, seed: u64) -> Vec<(String, Seq)> {
    let genome = Genome {
        seq: seq.clone(),
        planted: Vec::new(),
    };
    simulate_reads(
        &genome,
        &ReadConfig {
            count,
            length,
            errors: ErrorModel::pacbio_clr(0.08),
            rc_fraction: 0.5,
            seed,
        },
    )
    .into_iter()
    .enumerate()
    .map(|(i, r)| (format!("x{seed}read{i}"), r.seq))
    .collect()
}

/// The largest single read's rendered output across an expected
/// one-shot transcript — the `max_read_output_bytes` term of
/// [`ServiceConfig::session_output_bound`].
fn max_read_output_bytes(expected: &str) -> usize {
    let mut per_read = std::collections::HashMap::new();
    for line in expected.lines() {
        let name = line.split('\t').next().unwrap().to_string();
        *per_read.entry(name).or_insert(0usize) += line.len() + 1;
    }
    per_read.values().copied().max().unwrap_or(0)
}

#[test]
fn slow_receiver_buffered_output_stays_within_the_session_bound() {
    // A receiver that drains far slower than the backend produces:
    // the throttle gate must keep buffered output within the provable
    // bound (the sink never blocks; *submit* does), and once the
    // receiver catches up the output is still byte-identical.
    let w = workload(70_000, 48, 700, 21);
    let expected = one_shot(&w.reads, &w.reference, BackendKind::Cpu);
    let max_read_bytes = max_read_output_bytes(&expected);

    let cfg = ServiceConfig {
        max_session_output_bytes: 2 * 1024,
        max_session_inflight_reads: 4,
        ..ServiceConfig::default()
    };
    let bound = cfg.session_output_bound(max_read_bytes);
    assert!(
        expected.len() > bound,
        "workload too small to exercise the output cap: {} <= {bound}",
        expected.len()
    );

    let service = PipelineService::start("ref", w.reference.clone(), cfg);
    let (mut session, receiver) = service.open_session(BackendKind::Cpu).expect("admission");
    let reads = w.reads.clone();
    let submitter = std::thread::spawn(move || {
        for (name, seq) in &reads {
            session
                .submit(ReadInput {
                    name: name.clone(),
                    seq: seq.clone(),
                })
                .expect("submit");
        }
        session.finish();
    });

    // Drain deliberately slowly, so the gate has to throttle.
    let mut got = String::new();
    let mut metrics = None;
    while let Some(event) = receiver.recv() {
        std::thread::sleep(std::time::Duration::from_millis(1));
        match event {
            SessionEvent::Rows(rows) => {
                for r in &rows {
                    got.push_str(&r.to_tsv());
                    got.push('\n');
                }
            }
            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
            SessionEvent::Explain(_) => {}
            SessionEvent::Overflow {
                buffered_bytes,
                cap,
            } => {
                panic!("throttle policy must never evict: {buffered_bytes}/{cap}")
            }
            SessionEvent::End(m) => {
                metrics = Some(m);
                break;
            }
        }
    }
    submitter.join().unwrap();
    assert!(metrics.is_some(), "End event delivered");
    assert_eq!(got, expected, "slow-receiver session output diverged");

    let global = service.metrics();
    assert!(
        global.max_session_output_buffered_bytes as usize <= bound,
        "peak buffered output {} exceeded the session bound {bound} \
         (cap 2048, 4 in-flight reads of at most {max_read_bytes} bytes)",
        global.max_session_output_buffered_bytes
    );
    assert!(
        global.sessions_throttled >= 1,
        "the output cap never bit: sessions_throttled == 0"
    );
    assert_eq!(global.session_output_buffered_bytes, 0, "fully drained");
    service.shutdown();
}

#[test]
fn greedy_slow_reader_does_not_starve_a_light_session() {
    // A greedy session that uploads fast but reads nothing must be
    // throttled by its own caps — not by hogging the shared queues —
    // so a concurrent light session keeps its latency and its bytes.
    let w = workload(70_000, 40, 700, 22);
    let greedy_expected = one_shot(&w.reads, &w.reference, BackendKind::Cpu);
    let light_reads = extra_reads(&w.seq, 3, 700, 91);
    let light_expected = one_shot(&light_reads, &w.reference, BackendKind::Cpu);

    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 2 * 1024,
            queue_depth: 2,
            dispatchers: 1,
            ..PipelineConfig::default()
        },
        max_session_output_bytes: 4 * 1024,
        max_session_inflight_reads: 2,
        ..ServiceConfig::default()
    };
    let service = PipelineService::start("ref", w.reference.clone(), cfg);

    let (mut greedy, greedy_rx) = service.open_session(BackendKind::Cpu).expect("admission");
    let reads = w.reads.clone();
    let submitter = std::thread::spawn(move || {
        for (name, seq) in &reads {
            greedy
                .submit(ReadInput {
                    name: name.clone(),
                    seq: seq.clone(),
                })
                .expect("submit");
        }
        greedy.finish();
    });

    // Let the greedy session saturate its caps (its receiver is not
    // being drained, so its submitter is soon blocked on the gate).
    while service.metrics().sessions_throttled == 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // The light session must complete promptly and byte-identically.
    let (mut light, light_rx) = service.open_session(BackendKind::Cpu).expect("admission");
    for (name, seq) in &light_reads {
        light
            .submit(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            })
            .expect("submit");
    }
    light.finish();
    let mut light_got = String::new();
    let deadline = std::time::Duration::from_secs(20);
    loop {
        match light_rx.recv_timeout(deadline) {
            Some(SessionEvent::Rows(rows)) => {
                for r in &rows {
                    light_got.push_str(&r.to_tsv());
                    light_got.push('\n');
                }
            }
            Some(SessionEvent::ReadFailed { read }) => panic!("read {read} failed"),
            Some(SessionEvent::Explain(_)) => {}
            Some(SessionEvent::Overflow { .. }) => panic!("light session evicted"),
            Some(SessionEvent::End(_)) => break,
            None => panic!("light session starved: no event within {deadline:?}"),
        }
    }
    assert_eq!(light_got, light_expected, "light session output diverged");

    // Now drain the greedy session; its bytes must be intact too.
    let mut greedy_got = String::new();
    while let Some(event) = greedy_rx.recv() {
        match event {
            SessionEvent::Rows(rows) => {
                for r in &rows {
                    greedy_got.push_str(&r.to_tsv());
                    greedy_got.push('\n');
                }
            }
            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
            SessionEvent::Explain(_) => {}
            SessionEvent::Overflow { .. } => panic!("throttle policy must never evict"),
            SessionEvent::End(_) => break,
        }
    }
    submitter.join().unwrap();
    assert_eq!(
        greedy_got, greedy_expected,
        "greedy session output diverged"
    );
    service.shutdown();
}

#[test]
fn evict_policy_sends_one_overflow_then_end_and_fails_further_submits() {
    let w = workload(60_000, 0, 0, 23);
    let reads = extra_reads(&w.seq, 48, 700, 95);
    let cap = 2 * 1024usize;
    let cfg = ServiceConfig {
        max_session_output_bytes: cap,
        overflow: OverflowPolicy::Evict,
        max_session_inflight_reads: 2,
        ..ServiceConfig::default()
    };
    let service = PipelineService::start("ref", w.reference.clone(), cfg);
    let (mut session, receiver) = service.open_session(BackendKind::Cpu).expect("admission");

    // Nobody drains the receiver, so the buffered output crosses the
    // cap after a few reads and the session is evicted. The in-flight
    // read cap keeps submit in lockstep with the sink, so the typed
    // error is observed by the submitter (not just the receiver).
    let mut evicted = false;
    'submit: for _ in 0..64 {
        for (name, seq) in &reads {
            match session.submit(ReadInput {
                name: name.clone(),
                seq: seq.clone(),
            }) {
                Ok(_) => {}
                Err(SubmitError::SessionEvicted) => {
                    evicted = true;
                    break 'submit;
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    assert!(evicted, "submit never observed the eviction");
    session.finish();

    let mut delivered_bytes = 0usize;
    let mut overflows = 0usize;
    let mut rows_after_overflow = false;
    let mut ended = false;
    while let Some(event) = receiver.recv() {
        match event {
            SessionEvent::Rows(rows) => {
                if overflows > 0 {
                    rows_after_overflow = true;
                }
                delivered_bytes += rows.iter().map(|r| r.to_tsv().len() + 1).sum::<usize>();
            }
            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
            SessionEvent::Explain(_) => {}
            SessionEvent::Overflow {
                buffered_bytes,
                cap: evt_cap,
            } => {
                overflows += 1;
                assert_eq!(evt_cap as usize, cap);
                assert!(
                    buffered_bytes as usize > cap,
                    "overflow reported below the cap: {buffered_bytes} <= {cap}"
                );
            }
            SessionEvent::End(_) => {
                ended = true;
                break;
            }
        }
    }
    assert_eq!(overflows, 1, "exactly one Overflow event");
    assert!(!rows_after_overflow, "rows delivered after eviction");
    assert!(ended, "End still closes an evicted session");
    assert!(
        delivered_bytes <= cap,
        "delivered {delivered_bytes} bytes despite the {cap}-byte cap"
    );
    service.shutdown();
}

/// Adversarial concurrent sessions: unmappable reads, hostile names
/// needing JSON escaping, and explain opt-in, all at once. The
/// decision funnel must partition `reads_in` exactly — globally and
/// per session — and each session's explain stream must cover every
/// submitted read exactly once without perturbing record output.
#[test]
fn funnel_partitions_reads_under_adversarial_concurrent_sessions() {
    let base = workload(90_000, 0, 0, 3);
    let reference = base.reference;
    let sessions: Vec<(BackendKind, Vec<(String, Seq)>)> = [
        (BackendKind::Cpu, 31u64),
        (BackendKind::Edlib, 32),
        (BackendKind::Cpu, 33),
        (BackendKind::Ksw2, 34),
    ]
    .iter()
    .map(|&(backend, seed)| {
        let genome = Genome {
            seq: base.seq.clone(),
            planted: Vec::new(),
        };
        let sim = simulate_reads(
            &genome,
            &ReadConfig {
                count: 4,
                length: 700,
                errors: ErrorModel::pacbio_clr(0.08),
                rc_fraction: 0.5,
                seed,
            },
        );
        let mut named: Vec<(String, Seq)> = sim
            .into_iter()
            .enumerate()
            .map(|(i, r)| (format!("s{seed}\t\"read\"\n{i}"), r.seq))
            .collect();
        // An empty read can never anchor: per-session unmapped count.
        named.push((format!("s{seed} ghost"), Seq::new()));
        (backend, named)
    })
    .collect();

    let expected: Vec<String> = sessions
        .iter()
        .map(|(backend, reads)| one_shot(reads, &reference, *backend))
        .collect();

    let cfg = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: 4 * 1024,
            queue_depth: 4,
            dispatchers: 2,
            ..PipelineConfig::default()
        },
        ..ServiceConfig::default()
    };
    let service = Arc::new(PipelineService::start("ref", reference.clone(), cfg));
    type SessionRun = (String, Vec<String>, genasm_pipeline::SessionMetrics);
    let outputs: Vec<SessionRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .iter()
            .map(|(backend, reads)| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let (mut session, receiver) =
                        service.open_session(*backend).expect("admission");
                    session.set_explain(true);
                    for (name, seq) in reads.iter() {
                        session
                            .submit(ReadInput {
                                name: name.clone(),
                                seq: seq.clone(),
                            })
                            .expect("submit");
                    }
                    session.finish();
                    let mut out = String::new();
                    let mut explain = Vec::new();
                    let mut metrics = None;
                    while let Some(event) = receiver.recv() {
                        match event {
                            SessionEvent::Rows(rows) => {
                                for r in &rows {
                                    out.push_str(&r.to_tsv());
                                    out.push('\n');
                                }
                            }
                            SessionEvent::ReadFailed { read } => panic!("read {read} failed"),
                            SessionEvent::Explain(line) => explain.push(line),
                            SessionEvent::Overflow { .. } => panic!("unexpected overflow"),
                            SessionEvent::End(m) => {
                                metrics = Some(m);
                                break;
                            }
                        }
                    }
                    (out, explain, metrics.expect("End event delivered"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (i, ((got, explain, m), (want, (_, reads)))) in outputs
        .iter()
        .zip(expected.iter().zip(&sessions))
        .enumerate()
    {
        assert_eq!(got, want, "session {i}: explain perturbed record output");
        assert_eq!(m.reads_in, 5, "session {i}");
        assert_eq!(
            m.reads_in,
            m.reads_mapped + m.reads_unmapped,
            "session {i}: session accounting does not partition reads_in"
        );
        assert_eq!(m.reads_unmapped, 1, "session {i}");
        assert_eq!(
            explain.len(),
            reads.len(),
            "session {i}: one explain line per read"
        );
        for line in explain {
            assert!(
                line.starts_with("{\"schema\":\"genasm-explain/v1\""),
                "{line}"
            );
            assert_eq!(line.lines().count(), 1, "forged line boundary: {line}");
        }
        for (name, _) in reads {
            let needle = format!("\"read\":\"{}\"", genasm_telemetry::json::escape(name));
            assert_eq!(
                explain.iter().filter(|l| l.contains(&needle)).count(),
                1,
                "session {i}: read {name:?} not explained exactly once"
            );
        }
        assert!(
            explain
                .iter()
                .any(|l| l.contains("\"disposition\":\"unmapped:no_anchors\"")),
            "session {i}: the ghost read's disposition is missing"
        );
    }

    // The live stat-frame surface carries the same funnel.
    let frame = service.stat_frame_json(1000, 1.5, 0.0);
    assert!(
        frame.starts_with("{\"schema\":\"genasm-stat-frame/v1\""),
        "{frame}"
    );
    assert!(frame.contains("\"funnel\":{\"reads_in\":20"), "{frame}");
    assert!(
        frame.contains("\"rates\":{\"reads_per_sec\":1.5"),
        "{frame}"
    );
    assert_eq!(frame.lines().count(), 1, "stat frame must be one line");

    let metrics = service.shutdown();
    let f = metrics.funnel;
    assert_eq!(f.reads_in, 20);
    assert_eq!(
        f.reads_in,
        f.aligned + f.unmapped_total() + f.failed,
        "global funnel does not partition reads_in: {f:?}"
    );
    assert_eq!(f.unmapped_no_anchors, 4);
    assert_eq!(f.candidates, f.aligned + f.failed);
    assert!(f.reads_in >= f.anchored && f.anchored >= f.chained && f.chained >= f.candidates);
    assert!(f.rescued <= f.aligned);
}
