//! The PAF-like output record shared by `genasm align` and
//! `genasm pipeline`.
//!
//! Both subcommands must produce *byte-identical* output on the same
//! workload, so there is exactly one formatter: this one. The row is
//! tab-separated:
//!
//! ```text
//! qname  qlen  tname  tstart  tend  edit_distance  cigar  identity
//! ```
//!
//! `identity` is matches / alignment columns ([`Alignment::column_identity`])
//! printed with four decimals. [`AlignRecord::parse_tsv`] inverts the
//! formatter (used by tests and any downstream tooling).
//!
//! Name columns (`qname`, `tname`) are backslash-escaped on write
//! (`\t`, `\n`, `\r`, `\\`) so a read name containing a tab or newline
//! cannot corrupt the row structure; `parse_tsv` unescapes them and
//! rejects malformed escapes. Names without those characters are
//! emitted byte-for-byte unchanged, so the escaping is invisible to
//! the determinism contract.

use align_core::{Alignment, Cigar};

/// Escape a name field for TSV: `\` → `\\`, tab → `\t`, newline →
/// `\n`, carriage return → `\r`. Ordinary names (no specials) are
/// returned unchanged.
fn escape_field(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains(['\\', '\t', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// Invert [`escape_field`]; rejects dangling or unknown escapes with a
/// clear error.
fn unescape_field(s: &str) -> Result<String, String> {
    if !s.contains('\\') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(format!(
                    "bad escape sequence '\\{other}' in name field {s:?}"
                ))
            }
            None => return Err(format!("dangling backslash in name field {s:?}")),
        }
    }
    Ok(out)
}

/// One output row of `align` / `pipeline`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignRecord {
    /// Read name.
    pub qname: String,
    /// Read length in bases.
    pub qlen: usize,
    /// Reference name.
    pub tname: String,
    /// Window start on the reference.
    pub tstart: usize,
    /// Window end on the reference (exclusive).
    pub tend: usize,
    /// Unit edit distance of the alignment.
    pub edit_distance: usize,
    /// The alignment path.
    pub cigar: Cigar,
    /// Matches / alignment columns.
    pub identity: f64,
}

impl AlignRecord {
    /// Build a record from an alignment and its task coordinates.
    pub fn new(
        qname: &str,
        qlen: usize,
        tname: &str,
        tstart: usize,
        tlen: usize,
        aln: &Alignment,
    ) -> AlignRecord {
        AlignRecord {
            qname: qname.to_string(),
            qlen,
            tname: tname.to_string(),
            tstart,
            tend: tstart + tlen,
            edit_distance: aln.edit_distance,
            identity: aln.column_identity(),
            cigar: aln.cigar.clone(),
        }
    }

    /// The deterministic per-read ordering: best distance first, then
    /// reference position, then the CIGAR as a tiebreak so equal-cost
    /// candidates have a total order.
    pub fn sort_key(&self) -> (usize, usize, usize, String) {
        (
            self.edit_distance,
            self.tstart,
            self.tend,
            self.cigar.to_string(),
        )
    }

    /// Format as one TSV row (no trailing newline). Name columns are
    /// escaped so tabs/newlines in read names cannot break the row.
    pub fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}",
            escape_field(&self.qname),
            self.qlen,
            escape_field(&self.tname),
            self.tstart,
            self.tend,
            self.edit_distance,
            self.cigar,
            self.identity
        )
    }

    /// Parse a row produced by [`AlignRecord::to_tsv`].
    pub fn parse_tsv(line: &str) -> Result<AlignRecord, String> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 8 {
            return Err(format!("expected 8 columns, got {}", cols.len()));
        }
        let num = |i: usize| -> Result<usize, String> {
            cols[i]
                .parse()
                .map_err(|_| format!("bad number in column {}: {:?}", i + 1, cols[i]))
        };
        let cigar = Cigar::parse(cols[6]).map_err(|e| format!("bad CIGAR: {e}"))?;
        let identity: f64 = cols[7]
            .parse()
            .map_err(|_| format!("bad identity: {:?}", cols[7]))?;
        Ok(AlignRecord {
            qname: unescape_field(cols[0])?,
            qlen: num(1)?,
            tname: unescape_field(cols[2])?,
            tstart: num(3)?,
            tend: num(4)?,
            edit_distance: num(5)?,
            cigar,
            identity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn aligned(q: &str, t: &str) -> Alignment {
        let q = Seq::from_ascii(q.as_bytes()).unwrap();
        let t = Seq::from_ascii(t.as_bytes()).unwrap();
        align_core::nw_align(&q, &t)
    }

    #[test]
    fn tsv_round_trip() {
        let aln = aligned("ACGTACGT", "ACGAACGT");
        let rec = AlignRecord::new("read1", 8, "chr1", 100, 8, &aln);
        let line = rec.to_tsv();
        let back = AlignRecord::parse_tsv(&line).unwrap();
        assert_eq!(back.qname, "read1");
        assert_eq!(back.qlen, 8);
        assert_eq!(back.tname, "chr1");
        assert_eq!(back.tstart, 100);
        assert_eq!(back.tend, 108);
        assert_eq!(back.edit_distance, aln.edit_distance);
        assert_eq!(back.cigar, aln.cigar);
        assert!((back.identity - aln.column_identity()).abs() < 1e-3);
    }

    #[test]
    fn identity_formats_with_four_decimals() {
        let aln = aligned("ACGT", "ACGT");
        let rec = AlignRecord::new("r", 4, "t", 0, 4, &aln);
        assert!(rec.to_tsv().ends_with("\t1.0000"));
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(AlignRecord::parse_tsv("too\tfew").is_err());
        let aln = aligned("ACGT", "ACGT");
        let mut line = AlignRecord::new("r", 4, "t", 0, 4, &aln).to_tsv();
        line = line.replace("4M", "4Q");
        assert!(AlignRecord::parse_tsv(&line).is_err());
    }

    #[test]
    fn names_with_tabs_and_spaces_round_trip() {
        let aln = aligned("ACGTACGT", "ACGAACGT");
        for name in [
            "plain name with spaces",
            "tab\tseparated\tname",
            "newline\nname",
            "cr\rname",
            "back\\slash\\t-literal",
            "all\t\n\r\\of them",
        ] {
            let rec = AlignRecord::new(name, 8, "chr 1\twith tab", 100, 8, &aln);
            let line = rec.to_tsv();
            // The row structure survives: still exactly 8 columns, one line.
            assert_eq!(line.split('\t').count(), 8, "{name:?} broke the row");
            assert_eq!(line.lines().count(), 1, "{name:?} broke the row");
            let back = AlignRecord::parse_tsv(&line)
                .unwrap_or_else(|e| panic!("{name:?} failed to parse back: {e}"));
            assert_eq!(back.qname, name);
            assert_eq!(back.tname, "chr 1\twith tab");
        }
    }

    #[test]
    fn plain_names_are_unescaped_bytes() {
        // The escaping must be invisible for ordinary names (the
        // determinism contract compares raw output bytes).
        let aln = aligned("ACGT", "ACGT");
        let rec = AlignRecord::new("read_1 suffix", 4, "chr1", 0, 4, &aln);
        assert!(rec.to_tsv().starts_with("read_1 suffix\t4\tchr1\t"));
    }

    #[test]
    fn malformed_escapes_are_rejected_with_clear_errors() {
        let aln = aligned("ACGT", "ACGT");
        let line = AlignRecord::new("r", 4, "t", 0, 4, &aln).to_tsv();
        let bad = line.replacen("r\t", "bad\\x\t", 1);
        let err = AlignRecord::parse_tsv(&bad).unwrap_err();
        assert!(err.contains("bad escape sequence"), "{err}");
        let dangling = line.replacen("r\t", "trailing\\\t", 1);
        let err = AlignRecord::parse_tsv(&dangling).unwrap_err();
        assert!(err.contains("dangling backslash"), "{err}");
    }

    #[test]
    fn sort_key_orders_best_first() {
        let good = AlignRecord::new("r", 8, "t", 5, 8, &aligned("ACGTACGT", "ACGTACGT"));
        let bad = AlignRecord::new("r", 8, "t", 0, 8, &aligned("ACGTACGT", "ACCTACGA"));
        let mut rows = [bad.clone(), good.clone()];
        rows.sort_by_key(AlignRecord::sort_key);
        assert_eq!(rows[0], good);
        assert_eq!(rows[1], bad);
    }
}
