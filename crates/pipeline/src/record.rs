//! The output record shared by `genasm align`, `genasm pipeline`, and
//! the alignment server.
//!
//! All paths must produce *byte-identical* output on the same
//! workload, so there is exactly one formatter per format: this
//! module. The native TSV row is tab-separated:
//!
//! ```text
//! qname  qlen  tname  tstart  tend  edit_distance  cigar  identity
//! ```
//!
//! `identity` is matches / alignment columns ([`Alignment::column_identity`])
//! printed with four decimals. [`AlignRecord::parse_tsv`] inverts the
//! formatter (used by tests and any downstream tooling).
//!
//! [`AlignRecord::to_paf`] renders the same record as a standard PAF
//! row (minimap2 convention: 12 mandatory columns plus `NM:i:` and
//! `cg:Z:` tags), selected via [`OutputFormat`] on every front end
//! (`--format tsv|paf` on the CLI, `SET format` on the server
//! protocol). [`AlignRecord::parse_paf`] inverts it. Coordinates in
//! both formats refer to the *oriented* query (the mapper
//! reverse-complements reverse-strand reads before alignment); the PAF
//! strand column records which orientation that was.
//!
//! Name columns (`qname`, `tname`) are backslash-escaped on write
//! (`\t`, `\n`, `\r`, `\\`) so a read name containing a tab or newline
//! cannot corrupt the row structure; the parsers unescape them and
//! reject malformed escapes. Names without those characters are
//! emitted byte-for-byte unchanged, so the escaping is invisible to
//! the determinism contract.

use align_core::{Alignment, Cigar};

/// Escape a name field for TSV: `\` → `\\`, tab → `\t`, newline →
/// `\n`, carriage return → `\r`. Ordinary names (no specials) are
/// returned unchanged.
pub fn escape_name(s: &str) -> std::borrow::Cow<'_, str> {
    if !s.contains(['\\', '\t', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 4);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// Invert [`escape_name`]; rejects dangling or unknown escapes with a
/// clear error.
pub fn unescape_name(s: &str) -> Result<String, String> {
    if !s.contains('\\') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                return Err(format!(
                    "bad escape sequence '\\{other}' in name field {s:?}"
                ))
            }
            None => return Err(format!("dangling backslash in name field {s:?}")),
        }
    }
    Ok(out)
}

/// One output row of `align` / `pipeline`.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignRecord {
    /// Read name.
    pub qname: String,
    /// Read length in bases.
    pub qlen: usize,
    /// Reference name.
    pub tname: String,
    /// Total reference length in bases (PAF column 7; not part of the
    /// TSV row, so [`AlignRecord::parse_tsv`] cannot recover it).
    pub tsize: usize,
    /// Window start on the reference.
    pub tstart: usize,
    /// Window end on the reference (exclusive).
    pub tend: usize,
    /// True when the aligned query was the reverse complement of the
    /// original read (PAF strand `-`; not part of the TSV row).
    pub reverse: bool,
    /// Unit edit distance of the alignment.
    pub edit_distance: usize,
    /// The alignment path.
    pub cigar: Cigar,
    /// Matches / alignment columns.
    pub identity: f64,
}

impl AlignRecord {
    /// Build a record from an alignment and its task coordinates.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        qname: &str,
        qlen: usize,
        tname: &str,
        tsize: usize,
        tstart: usize,
        tlen: usize,
        reverse: bool,
        aln: &Alignment,
    ) -> AlignRecord {
        AlignRecord {
            qname: qname.to_string(),
            qlen,
            tname: tname.to_string(),
            tsize,
            tstart,
            tend: tstart + tlen,
            reverse,
            edit_distance: aln.edit_distance,
            identity: aln.column_identity(),
            cigar: aln.cigar.clone(),
        }
    }

    /// The deterministic per-read ordering: best distance first, then
    /// reference position, then the CIGAR as a tiebreak so equal-cost
    /// candidates have a total order.
    pub fn sort_key(&self) -> (usize, usize, usize, String) {
        (
            self.edit_distance,
            self.tstart,
            self.tend,
            self.cigar.to_string(),
        )
    }

    /// Format as one TSV row (no trailing newline). Name columns are
    /// escaped so tabs/newlines in read names cannot break the row.
    pub fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.4}",
            escape_name(&self.qname),
            self.qlen,
            escape_name(&self.tname),
            self.tstart,
            self.tend,
            self.edit_distance,
            self.cigar,
            self.identity
        )
    }

    /// Parse a row produced by [`AlignRecord::to_tsv`]. The TSV row
    /// does not carry `tsize` or strand, so those come back as `0` and
    /// forward; use PAF when they matter downstream.
    pub fn parse_tsv(line: &str) -> Result<AlignRecord, String> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 8 {
            return Err(format!("expected 8 columns, got {}", cols.len()));
        }
        let num = |i: usize| -> Result<usize, String> {
            cols[i]
                .parse()
                .map_err(|_| format!("bad number in column {}: {:?}", i + 1, cols[i]))
        };
        let cigar = Cigar::parse(cols[6]).map_err(|e| format!("bad CIGAR: {e}"))?;
        let identity: f64 = cols[7]
            .parse()
            .map_err(|_| format!("bad identity: {:?}", cols[7]))?;
        Ok(AlignRecord {
            qname: unescape_name(cols[0])?,
            qlen: num(1)?,
            tname: unescape_name(cols[2])?,
            tsize: 0,
            tstart: num(3)?,
            tend: num(4)?,
            reverse: false,
            edit_distance: num(5)?,
            cigar,
            identity,
        })
    }

    /// Format as one PAF row (no trailing newline), minimap2
    /// convention: 12 mandatory columns, then `NM:i:` (edit distance)
    /// and `cg:Z:` (CIGAR) tags. Query coordinates refer to the
    /// oriented query; the strand column records the orientation.
    /// Mapping quality is not computed by this suite, so column 12 is
    /// the PAF "missing" value 255.
    pub fn to_paf(&self) -> String {
        let (m, x, i, d) = self.cigar.op_counts();
        format!(
            "{}\t{}\t0\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t255\tNM:i:{}\tcg:Z:{}",
            escape_name(&self.qname),
            self.qlen,
            self.cigar.query_len(),
            if self.reverse { '-' } else { '+' },
            escape_name(&self.tname),
            self.tsize,
            self.tstart,
            self.tend,
            m,
            m + x + i + d,
            self.edit_distance,
            self.cigar
        )
    }

    /// Parse a row produced by [`AlignRecord::to_paf`]. Requires the
    /// `cg:Z:` tag (the CIGAR carries the alignment path); `NM:i:`
    /// falls back to the CIGAR's edit cost when absent.
    pub fn parse_paf(line: &str) -> Result<AlignRecord, String> {
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 12 {
            return Err(format!(
                "expected at least 12 PAF columns, got {}",
                cols.len()
            ));
        }
        let num = |i: usize| -> Result<usize, String> {
            cols[i]
                .parse()
                .map_err(|_| format!("bad number in column {}: {:?}", i + 1, cols[i]))
        };
        let reverse = match cols[4] {
            "+" => false,
            "-" => true,
            other => return Err(format!("bad strand column: {other:?}")),
        };
        let mut cigar = None;
        let mut nm = None;
        for tag in &cols[12..] {
            if let Some(cg) = tag.strip_prefix("cg:Z:") {
                cigar = Some(Cigar::parse(cg).map_err(|e| format!("bad cg tag: {e}"))?);
            } else if let Some(v) = tag.strip_prefix("NM:i:") {
                nm = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad NM tag: {v:?}"))?,
                );
            }
        }
        let cigar = cigar.ok_or_else(|| "missing cg:Z: tag".to_string())?;
        let matches = num(9)?;
        let block = num(10)?;
        if block == 0 {
            return Err("zero alignment block length".to_string());
        }
        Ok(AlignRecord {
            qname: unescape_name(cols[0])?,
            qlen: num(1)?,
            tname: unescape_name(cols[5])?,
            tsize: num(6)?,
            tstart: num(7)?,
            tend: num(8)?,
            reverse,
            edit_distance: nm.unwrap_or_else(|| cigar.edit_cost()),
            identity: matches as f64 / block as f64,
            cigar,
        })
    }
}

/// The output formats every front end (CLI `--format`, server
/// `SET format`) can render an [`AlignRecord`] in. Exactly one
/// formatter exists per format, so any two paths configured the same
/// way are byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// The suite's native 8-column TSV ([`AlignRecord::to_tsv`]).
    #[default]
    Tsv,
    /// Standard PAF with `NM:i:`/`cg:Z:` tags ([`AlignRecord::to_paf`]).
    Paf,
}

impl OutputFormat {
    /// Every format with its CLI/protocol name.
    pub const ALL: [(OutputFormat, &'static str); 2] =
        [(OutputFormat::Tsv, "tsv"), (OutputFormat::Paf, "paf")];

    /// Render one record as a line in this format (no newline).
    pub fn line(&self, rec: &AlignRecord) -> String {
        match self {
            OutputFormat::Tsv => rec.to_tsv(),
            OutputFormat::Paf => rec.to_paf(),
        }
    }
}

impl std::str::FromStr for OutputFormat {
    type Err = ParseFormatError;

    fn from_str(s: &str) -> Result<OutputFormat, ParseFormatError> {
        OutputFormat::ALL
            .iter()
            .find(|(_, name)| *name == s)
            .map(|&(fmt, _)| fmt)
            .ok_or_else(|| ParseFormatError {
                given: s.to_string(),
            })
    }
}

impl std::fmt::Display for OutputFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (_, name) = OutputFormat::ALL
            .iter()
            .find(|(fmt, _)| fmt == self)
            .expect("every format is in OutputFormat::ALL");
        f.write_str(name)
    }
}

/// Error for an unrecognized output format name; lists the valid ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError {
    /// What the user typed.
    pub given: String,
}

impl std::fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown format '{}'; valid formats are ", self.given)?;
        for (i, (_, name)) in OutputFormat::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "'{name}'")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseFormatError {}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn aligned(q: &str, t: &str) -> Alignment {
        let q = Seq::from_ascii(q.as_bytes()).unwrap();
        let t = Seq::from_ascii(t.as_bytes()).unwrap();
        align_core::nw_align(&q, &t)
    }

    /// Shorthand for the tests that don't care about tsize/strand.
    fn rec(
        qname: &str,
        qlen: usize,
        tname: &str,
        tstart: usize,
        tlen: usize,
        aln: &Alignment,
    ) -> AlignRecord {
        AlignRecord::new(qname, qlen, tname, 5_000, tstart, tlen, false, aln)
    }

    #[test]
    fn tsv_round_trip() {
        let aln = aligned("ACGTACGT", "ACGAACGT");
        let rec = rec("read1", 8, "chr1", 100, 8, &aln);
        let line = rec.to_tsv();
        let back = AlignRecord::parse_tsv(&line).unwrap();
        assert_eq!(back.qname, "read1");
        assert_eq!(back.qlen, 8);
        assert_eq!(back.tname, "chr1");
        assert_eq!(back.tstart, 100);
        assert_eq!(back.tend, 108);
        assert_eq!(back.edit_distance, aln.edit_distance);
        assert_eq!(back.cigar, aln.cigar);
        assert!((back.identity - aln.column_identity()).abs() < 1e-3);
    }

    #[test]
    fn identity_formats_with_four_decimals() {
        let aln = aligned("ACGT", "ACGT");
        let rec = rec("r", 4, "t", 0, 4, &aln);
        assert!(rec.to_tsv().ends_with("\t1.0000"));
    }

    #[test]
    fn malformed_rows_are_rejected() {
        assert!(AlignRecord::parse_tsv("too\tfew").is_err());
        let aln = aligned("ACGT", "ACGT");
        let mut line = rec("r", 4, "t", 0, 4, &aln).to_tsv();
        line = line.replace("4M", "4Q");
        assert!(AlignRecord::parse_tsv(&line).is_err());
    }

    #[test]
    fn names_with_tabs_and_spaces_round_trip() {
        let aln = aligned("ACGTACGT", "ACGAACGT");
        for name in [
            "plain name with spaces",
            "tab\tseparated\tname",
            "newline\nname",
            "cr\rname",
            "back\\slash\\t-literal",
            "all\t\n\r\\of them",
        ] {
            let rec = rec(name, 8, "chr 1\twith tab", 100, 8, &aln);
            let line = rec.to_tsv();
            // The row structure survives: still exactly 8 columns, one line.
            assert_eq!(line.split('\t').count(), 8, "{name:?} broke the row");
            assert_eq!(line.lines().count(), 1, "{name:?} broke the row");
            let back = AlignRecord::parse_tsv(&line)
                .unwrap_or_else(|e| panic!("{name:?} failed to parse back: {e}"));
            assert_eq!(back.qname, name);
            assert_eq!(back.tname, "chr 1\twith tab");
        }
    }

    #[test]
    fn plain_names_are_unescaped_bytes() {
        // The escaping must be invisible for ordinary names (the
        // determinism contract compares raw output bytes).
        let aln = aligned("ACGT", "ACGT");
        let rec = rec("read_1 suffix", 4, "chr1", 0, 4, &aln);
        assert!(rec.to_tsv().starts_with("read_1 suffix\t4\tchr1\t"));
    }

    #[test]
    fn malformed_escapes_are_rejected_with_clear_errors() {
        let aln = aligned("ACGT", "ACGT");
        let line = rec("r", 4, "t", 0, 4, &aln).to_tsv();
        let bad = line.replacen("r\t", "bad\\x\t", 1);
        let err = AlignRecord::parse_tsv(&bad).unwrap_err();
        assert!(err.contains("bad escape sequence"), "{err}");
        let dangling = line.replacen("r\t", "trailing\\\t", 1);
        let err = AlignRecord::parse_tsv(&dangling).unwrap_err();
        assert!(err.contains("dangling backslash"), "{err}");
    }

    #[test]
    fn paf_round_trip_preserves_every_field() {
        let aln = aligned("ACGTACGT", "ACGAACGT");
        for reverse in [false, true] {
            let rec = AlignRecord::new("read1", 8, "chr1", 90_000, 100, 8, reverse, &aln);
            let line = rec.to_paf();
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 14, "12 mandatory + NM + cg: {line}");
            assert_eq!(cols[2], "0", "qstart");
            assert_eq!(cols[4], if reverse { "-" } else { "+" });
            assert_eq!(cols[6], "90000", "tsize is PAF column 7");
            assert_eq!(cols[11], "255", "mapq is the PAF missing value");
            let back = AlignRecord::parse_paf(&line).unwrap();
            assert_eq!(back, rec, "PAF round trip must be lossless");
        }
    }

    #[test]
    fn paf_columns_are_cigar_consistent() {
        let aln = aligned("ACGTACGT", "ACGAACGGT");
        let rec = AlignRecord::new("r", 8, "t", 500, 10, 9, false, &aln);
        let cols_line = rec.to_paf();
        let cols: Vec<&str> = cols_line.split('\t').collect();
        let (m, x, i, d) = rec.cigar.op_counts();
        assert_eq!(cols[3], rec.cigar.query_len().to_string(), "qend");
        assert_eq!(cols[9], m.to_string(), "matches");
        assert_eq!(cols[10], (m + x + i + d).to_string(), "block length");
        assert_eq!(cols[12], format!("NM:i:{}", rec.edit_distance));
        assert_eq!(cols[13], format!("cg:Z:{}", rec.cigar));
    }

    #[test]
    fn malformed_paf_rejected_with_clear_errors() {
        let aln = aligned("ACGT", "ACGT");
        let good = AlignRecord::new("r", 4, "t", 100, 0, 4, false, &aln).to_paf();
        assert!(AlignRecord::parse_paf("a\tb\tc")
            .unwrap_err()
            .contains("12"));
        let bad_strand = good.replacen("\t+\t", "\t?\t", 1);
        assert!(AlignRecord::parse_paf(&bad_strand)
            .unwrap_err()
            .contains("strand"));
        let no_cg = good.replace("cg:Z:", "xx:Z:");
        assert!(AlignRecord::parse_paf(&no_cg)
            .unwrap_err()
            .contains("cg:Z:"));
    }

    #[test]
    fn paf_names_are_escaped_like_tsv() {
        let aln = aligned("ACGTACGT", "ACGAACGT");
        let rec = AlignRecord::new("tab\tname", 8, "chr\t1", 1_000, 100, 8, true, &aln);
        let line = rec.to_paf();
        assert_eq!(line.split('\t').count(), 14, "escaping kept the row intact");
        let back = AlignRecord::parse_paf(&line).unwrap();
        assert_eq!(back.qname, "tab\tname");
        assert_eq!(back.tname, "chr\t1");
    }

    #[test]
    fn output_format_parses_and_lists_choices() {
        use std::str::FromStr;
        for (fmt, name) in OutputFormat::ALL {
            assert_eq!(OutputFormat::from_str(name).unwrap(), fmt);
            assert_eq!(fmt.to_string(), name);
        }
        let err = OutputFormat::from_str("sam").unwrap_err().to_string();
        assert!(err.contains("'sam'"), "{err}");
        assert!(err.contains("'tsv'") && err.contains("'paf'"), "{err}");

        let aln = aligned("ACGT", "ACGT");
        let r = rec("r", 4, "t", 0, 4, &aln);
        assert_eq!(OutputFormat::Tsv.line(&r), r.to_tsv());
        assert_eq!(OutputFormat::Paf.line(&r), r.to_paf());
    }

    #[test]
    fn sort_key_orders_best_first() {
        let good = rec("r", 8, "t", 5, 8, &aligned("ACGTACGT", "ACGTACGT"));
        let bad = rec("r", 8, "t", 0, 8, &aligned("ACGTACGT", "ACCTACGA"));
        let mut rows = [bad.clone(), good.clone()];
        rows.sort_by_key(AlignRecord::sort_key);
        assert_eq!(rows[0], good);
        assert_eq!(rows[1], bad);
    }
}
