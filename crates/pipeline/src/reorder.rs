//! Reorder buffer: restores dispatch order at the sink.
//!
//! With more than one dispatch worker (or a backend that completes
//! batches out of order) results arrive permuted. The sink pushes every
//! completed batch here; the buffer releases batches strictly in their
//! scheduler-assigned sequence order, which makes pipeline output
//! deterministic regardless of batch size, queue depth, or thread
//! count.
//!
//! Capacity is implicitly bounded: at most
//! `batch_queue_depth + result_queue_depth + dispatchers` batches can
//! exist past the scheduler at once, so the buffer can never hold more
//! than that many out-of-order entries.

use std::collections::BTreeMap;

/// In-order release of sequence-numbered items.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> ReorderBuffer<T> {
        ReorderBuffer::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer expecting sequence 0 first.
    pub fn new() -> ReorderBuffer<T> {
        ReorderBuffer {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Insert item `seq` and drain everything now contiguous from the
    /// front, in order.
    pub fn push(&mut self, seq: u64, item: T) -> Vec<T> {
        debug_assert!(
            seq >= self.next && !self.pending.contains_key(&seq),
            "duplicate or stale sequence {seq}"
        );
        self.pending.insert(seq, item);
        let mut ready = Vec::new();
        while let Some(item) = self.pending.remove(&self.next) {
            ready.push(item);
            self.next += 1;
        }
        ready
    }

    /// Items buffered waiting for an earlier sequence.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_passes_through() {
        let mut rb = ReorderBuffer::new();
        assert_eq!(rb.push(0, 'a'), vec!['a']);
        assert_eq!(rb.push(1, 'b'), vec!['b']);
        assert!(rb.is_empty());
    }

    #[test]
    fn out_of_order_is_held_then_released() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(2, 'c').is_empty());
        assert!(rb.push(1, 'b').is_empty());
        assert_eq!(rb.pending(), 2);
        assert_eq!(rb.push(0, 'a'), vec!['a', 'b', 'c']);
        assert!(rb.is_empty());
    }

    #[test]
    fn interleaved_gaps() {
        let mut rb = ReorderBuffer::new();
        assert!(rb.push(1, 1).is_empty());
        assert_eq!(rb.push(0, 0), vec![0, 1]);
        assert!(rb.push(3, 3).is_empty());
        assert_eq!(rb.push(2, 2), vec![2, 3]);
    }
}
