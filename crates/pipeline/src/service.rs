//! The long-lived pipeline service: the batch pipeline of
//! [`crate::run_pipeline`] restructured as a resident, multi-session
//! alignment engine.
//!
//! ```text
//!  session A ──┐                                       ┌──► session A rows
//!  session B ──┼─► shared task queue ─► scheduler ─► dispatchers ─► ordered sink ─┼──► session B rows
//!  session C ──┘   (bounded, weighted    (per-backend     (N threads,  (global reorder,└──► session C rows
//!                   by bases)             batches)         any Backend) per-session routing)
//! ```
//!
//! [`run_pipeline`](crate::run_pipeline) spins up stages per call and
//! tears them down when the read iterator ends. A server cannot afford
//! that: the reference index must stay hot, and *admission control
//! must span clients* — ten greedy sessions must share one memory
//! budget, not multiply it. [`PipelineService`] therefore owns the
//! stages for its whole lifetime and lets any number of concurrent
//! [`Session`]s feed the same bounded task queue:
//!
//! * **Shared ingest.** [`Session::submit`] runs candidate generation
//!   on the calling thread (against one shared [`ShardedIndex`]) and
//!   pushes the read's tasks contiguously into the shared task queue
//!   under a global sequence number. The queue's weighted capacity is
//!   the *server-wide* admission valve: when it is full, every
//!   submitting session blocks, so peak resident bases obey
//!   [`ServiceConfig::resident_bases_bound`] no matter how many
//!   clients are connected.
//! * **Per-session determinism.** Each session has a fixed backend and
//!   its reads keep their submission order in the global sequence, so
//!   the sink (global reorder by batch sequence, per-read completion,
//!   per-read [`AlignRecord::sort_key`] ordering) delivers every
//!   session's rows in exactly the order — and with exactly the bytes
//!   — that a one-shot `genasm align` over that session's reads would
//!   produce.
//! * **Per-backend batching.** Sessions may pick different backends;
//!   the scheduler keeps one building batch per backend so a batch is
//!   never mixed across engines, while batch sequence numbers stay
//!   globally ordered for the sink's reorder buffer. A partial batch
//!   is flushed once it is [`ServiceConfig::linger`] old — an *age*
//!   bound, not an idle bound, so one session's small batch cannot be
//!   starved by another session's steady traffic to a different
//!   backend (flush timing never changes output — the pipeline is
//!   batch-geometry deterministic).
//! * **Failure isolation.** A task that exceeds its backend's edit
//!   budget fails *that read for that session*
//!   ([`SessionEvent::ReadFailed`]); a poisoned batch fails only the
//!   reads it contained. The service itself keeps running — unlike the
//!   one-shot pipeline, where the first failure aborts the run.
//! * **Graceful drain.** [`PipelineService::shutdown`] stops admitting
//!   sessions, waits for the open ones to finish, drains every queue,
//!   joins the stages, and returns the final [`PipelineMetrics`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use align_core::{AlignTask, Alignment, Reference};
use genasm_telemetry::TraceRecorder;
use mapper::ShardedIndex;

use crate::backend::{Backend, BackendChoice, BackendError, BackendKind};
use crate::batcher::{Batch, BatchBuilder, TaskMeta};
use crate::explain::{disposition, ExplainRecord, ReadProvenance, TaskExplain};
use crate::metrics::{BackendLat, PipelineMetrics, QueueMetrics, StageCounters};
use crate::queue::{BoundedQueue, PopTimeout};
use crate::record::AlignRecord;
use crate::reorder::ReorderBuffer;
use crate::route::{Router, RouterConfig};
use crate::{tids, trace_lanes, PipelineConfig, ReadInput};

/// Tuning for the long-lived service.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The shared pipeline geometry (queues, batching, sharding).
    pub pipeline: PipelineConfig,
    /// Maximum concurrently open sessions; further
    /// [`PipelineService::open_session`] calls get
    /// [`AdmissionError::Busy`]. `0` means unlimited.
    pub max_sessions: usize,
    /// Maximum age of a building batch before the scheduler flushes it
    /// regardless of size (so a lightly-loaded session's batch is
    /// never starved by other sessions' traffic). Only affects
    /// latency; output is identical for every value.
    pub linger: Duration,
    /// Cap on one session's buffered, not-yet-received output, in
    /// bytes (each delivered row is accounted as its TSV rendering
    /// plus a newline). When a session's receiver falls behind by more
    /// than this, [`ServiceConfig::overflow`] decides what happens —
    /// the sink itself never blocks on a slow receiver. `0` means
    /// unlimited.
    pub max_session_output_bytes: usize,
    /// What happens to a session whose buffered output exceeds
    /// [`ServiceConfig::max_session_output_bytes`].
    pub overflow: OverflowPolicy,
    /// Cap on one session's in-flight reads (submitted, not yet fully
    /// delivered). [`Session::submit`] blocks the submitting thread —
    /// and only it — while the session is at the cap, so a greedy
    /// client cannot monopolize the shared task queue. `0` means
    /// unlimited.
    pub max_session_inflight_reads: usize,
    /// Cap on one session's in-flight task bases, enforced like
    /// [`ServiceConfig::max_session_inflight_reads`]. `0` means
    /// unlimited.
    pub max_session_inflight_bases: usize,
    /// Tuning for the adaptive router behind
    /// [`BackendChoice::Auto`] sessions (exploration floor, pinned
    /// deterministic mode). Ignored by fixed-backend sessions.
    pub router: RouterConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            pipeline: PipelineConfig::default(),
            max_sessions: 64,
            linger: Duration::from_millis(2),
            max_session_output_bytes: 64 << 20,
            overflow: OverflowPolicy::Throttle,
            max_session_inflight_reads: 1024,
            max_session_inflight_bases: 0,
            router: RouterConfig::default(),
        }
    }
}

/// What the sink does when a session's buffered output exceeds
/// [`ServiceConfig::max_session_output_bytes`]. Either way the sink
/// keeps draining the shared reorder path — one slow receiver never
/// stalls other sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Stop admitting the session's *own* reads: [`Session::submit`]
    /// blocks until the receiver catches up. In the server, the
    /// blocked submit stops the connection thread reading the socket,
    /// so backpressure reaches the client's TCP window — the same path
    /// a full task queue uses. Output bytes stay bounded by
    /// [`ServiceConfig::session_output_bound`].
    #[default]
    Throttle,
    /// Evict the session: the receiver gets one
    /// [`SessionEvent::Overflow`], the overflowing read's rows (and
    /// everything after) are dropped, and further submits fail with
    /// [`SubmitError::SessionEvicted`]. The session still ends with
    /// [`SessionEvent::End`] once its in-flight reads drain.
    Evict,
}

impl core::fmt::Display for OverflowPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OverflowPolicy::Throttle => write!(f, "throttle"),
            OverflowPolicy::Evict => write!(f, "evict"),
        }
    }
}

impl core::str::FromStr for OverflowPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<OverflowPolicy, String> {
        match s {
            "throttle" => Ok(OverflowPolicy::Throttle),
            "evict" => Ok(OverflowPolicy::Evict),
            other => Err(format!(
                "unknown overflow policy {other:?} (expected throttle|evict)"
            )),
        }
    }
}

impl ServiceConfig {
    /// Server-wide upper bound on bases resident in the service at
    /// once. Sessions share every queue, so the one-shot bound of
    /// [`PipelineConfig::resident_bases_bound`] carries over unchanged
    /// — except that the scheduler keeps one building batch per
    /// *distinct backend in use* (`active_backends`), each able to
    /// hold up to a batch target plus one oversized task.
    pub fn resident_bases_bound(&self, max_task_bases: usize, active_backends: usize) -> usize {
        let per_batch = self.pipeline.batch_bases + max_task_bases;
        self.pipeline.resident_bases_bound(max_task_bases)
            + active_backends.saturating_sub(1) * per_batch
    }

    /// Upper bound on one session's buffered output bytes under
    /// [`OverflowPolicy::Throttle`], given the largest rendered output
    /// of any single read. The throttle gate admits a read only while
    /// buffered output is *below* the cap, and at most
    /// [`ServiceConfig::max_session_inflight_reads`] already-admitted
    /// reads can still deliver after the gate closes, so:
    ///
    /// ```text
    /// peak buffered ≤ max_session_output_bytes
    ///               + max_session_inflight_reads × max_read_output_bytes
    /// ```
    ///
    /// Unbounded (`usize::MAX`) when either cap is disabled (`0`) —
    /// the bound needs both the gate and the in-flight read cap.
    pub fn session_output_bound(&self, max_read_output_bytes: usize) -> usize {
        if self.max_session_output_bytes == 0 || self.max_session_inflight_reads == 0 {
            return usize::MAX;
        }
        self.max_session_output_bytes + self.max_session_inflight_reads * max_read_output_bytes
    }
}

/// Why [`PipelineService::open_session`] refused a session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The service is shutting down and admits no new sessions.
    Draining,
    /// The concurrent-session cap is reached.
    Busy {
        /// Sessions currently open.
        active: usize,
        /// The configured cap.
        max: usize,
    },
}

impl core::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AdmissionError::Draining => write!(f, "service is draining"),
            AdmissionError::Busy { active, max } => {
                write!(f, "service is busy: {active} sessions active (max {max})")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why [`Session::submit`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The service's queues closed underneath the session.
    ServiceStopped,
    /// The session's buffered output exceeded
    /// [`ServiceConfig::max_session_output_bytes`] under
    /// [`OverflowPolicy::Evict`]; the receiver got
    /// [`SessionEvent::Overflow`] and no further reads are accepted.
    SessionEvicted,
    /// The session's [`SessionReceiver`] was dropped before the
    /// session finished — there is no one left to deliver to, so
    /// submitting more work would only be wasted backend time.
    ReceiverGone,
}

impl core::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SubmitError::ServiceStopped => write!(f, "pipeline service stopped"),
            SubmitError::SessionEvicted => {
                write!(f, "session evicted: buffered output exceeded the cap")
            }
            SubmitError::ReceiverGone => {
                write!(f, "session receiver dropped; no consumer for results")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counters for one session, reported in [`SessionEvent::End`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Reads submitted.
    pub reads_in: u64,
    /// Reads that produced at least one candidate task.
    pub reads_mapped: u64,
    /// Reads that produced no candidate task (they complete
    /// immediately with no rows; `reads_in == reads_mapped +
    /// reads_unmapped` for every session).
    pub reads_unmapped: u64,
    /// Candidate tasks generated.
    pub tasks: u64,
    /// Total bases (query + target) across the session's tasks.
    pub task_bases: u64,
    /// Alignment records delivered.
    pub records_out: u64,
    /// Reads that failed (a task found no alignment in budget).
    pub reads_failed: u64,
}

/// What the sink delivers to a session's receiver.
#[derive(Debug)]
pub enum SessionEvent {
    /// One completed read's records, already in deterministic order.
    Rows(Vec<AlignRecord>),
    /// A read whose candidates all reported but at least one found no
    /// alignment within the backend's edit budget; no rows are emitted
    /// for it (the one-shot `align` path would have errored out).
    ReadFailed {
        /// Name of the failed read.
        read: String,
    },
    /// The session's buffered output exceeded its cap under
    /// [`OverflowPolicy::Evict`]. Sent at most once; the overflowing
    /// read's rows and everything after it are dropped, and the
    /// session still closes with [`SessionEvent::End`].
    Overflow {
        /// Buffered bytes the overflowing delivery would have reached.
        buffered_bytes: u64,
        /// The configured [`ServiceConfig::max_session_output_bytes`].
        cap: u64,
    },
    /// One read's `genasm-explain/v1` provenance line. Sent only when
    /// the session opted in via [`Session::set_explain`]; follows the
    /// read's [`SessionEvent::Rows`] / [`SessionEvent::ReadFailed`]
    /// (unmapped reads, which get neither, still get their explain
    /// line). Purely informational — record delivery is unchanged.
    Explain(String),
    /// The session is fully drained; always the final event.
    End(SessionMetrics),
}

/// What the sink should do with one event it wants to deliver.
enum BufferOutcome {
    /// Deliver: the bytes were debited against the session's budget.
    Deliver,
    /// The event would blow the cap under [`OverflowPolicy::Evict`]:
    /// drop it and send [`SessionEvent::Overflow`] instead.
    Evict {
        /// Buffered bytes the delivery would have reached.
        buffered_bytes: u64,
    },
    /// The session is already evicted or its receiver is gone: drop
    /// the event (completion accounting still runs).
    Drop,
}

/// Per-session flow-control gate, shared by the submitter (admission),
/// the sink (output accounting — never blocking), and the receiver
/// (drain credits). This is what turns the formerly unbounded event
/// channel into a budgeted one: the channel itself stays unbounded,
/// but every byte in it is debited here, and the *ingest* side blocks
/// when the budget runs out.
struct SessionGate {
    st: Mutex<GateState>,
    cv: Condvar,
    /// Byte cap on buffered output (0 = unlimited).
    out_cap: u64,
    /// In-flight read cap (0 = unlimited).
    read_cap: u64,
    /// In-flight task-base cap (0 = unlimited).
    base_cap: u64,
    /// Evict instead of throttling when the output cap is exceeded.
    evict_on_overflow: bool,
    /// Service-wide gauge of buffered output bytes (all sessions).
    buffered_gauge: Arc<genasm_telemetry::Gauge>,
    /// High water of `buffered_gauge`.
    max_buffered_gauge: Arc<genasm_telemetry::Gauge>,
    /// Service-wide count of submits that blocked on a session cap.
    throttled: Arc<genasm_telemetry::Counter>,
}

#[derive(Default)]
struct GateState {
    buffered_bytes: u64,
    inflight_reads: u64,
    inflight_bases: u64,
    evicted: bool,
    receiver_gone: bool,
}

impl SessionGate {
    fn new(cfg: &ServiceConfig, counters: &StageCounters) -> SessionGate {
        SessionGate {
            st: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            out_cap: cfg.max_session_output_bytes as u64,
            read_cap: cfg.max_session_inflight_reads as u64,
            base_cap: cfg.max_session_inflight_bases as u64,
            evict_on_overflow: cfg.overflow == OverflowPolicy::Evict,
            buffered_gauge: Arc::clone(&counters.session_output_buffered),
            max_buffered_gauge: Arc::clone(&counters.max_session_output_buffered),
            throttled: Arc::clone(&counters.sessions_throttled),
        }
    }

    /// Submit-side admission: block the submitting thread (only) while
    /// the session is at any of its caps. Errors once the session is
    /// evicted or its receiver is gone — both of which also wake any
    /// blocked waiter, so a dead client cannot deadlock a drain.
    fn admit(&self) -> Result<(), SubmitError> {
        let mut st = self.st.lock().unwrap();
        let mut waited = false;
        loop {
            if st.evicted {
                return Err(SubmitError::SessionEvicted);
            }
            if st.receiver_gone {
                return Err(SubmitError::ReceiverGone);
            }
            let at_cap = (self.read_cap > 0 && st.inflight_reads >= self.read_cap)
                || (self.base_cap > 0 && st.inflight_bases >= self.base_cap)
                || (!self.evict_on_overflow
                    && self.out_cap > 0
                    && st.buffered_bytes >= self.out_cap);
            if !at_cap {
                return Ok(());
            }
            if !waited {
                waited = true;
                self.throttled.inc();
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// A mapped read passed admission and is entering the pipeline.
    fn register_read(&self, bases: u64) {
        let mut st = self.st.lock().unwrap();
        st.inflight_reads += 1;
        st.inflight_bases += bases;
    }

    /// A registered read fully completed (its delivery, if any, was
    /// already debited — ordering matters for the output bound).
    fn read_done(&self, bases: u64) {
        let mut st = self.st.lock().unwrap();
        st.inflight_reads = st.inflight_reads.saturating_sub(1);
        st.inflight_bases = st.inflight_bases.saturating_sub(bases);
        drop(st);
        self.cv.notify_all();
    }

    /// Sink-side accounting for one event carrying `bytes` of payload.
    /// Takes the brief gate mutex but never waits: the shared reorder
    /// path must not stall on one slow receiver.
    fn buffer(&self, bytes: u64) -> BufferOutcome {
        let mut st = self.st.lock().unwrap();
        if st.receiver_gone || st.evicted {
            return BufferOutcome::Drop;
        }
        if self.evict_on_overflow
            && self.out_cap > 0
            && bytes > 0
            && st.buffered_bytes + bytes > self.out_cap
        {
            let buffered_bytes = st.buffered_bytes + bytes;
            st.evicted = true;
            drop(st);
            self.cv.notify_all(); // a throttled submitter must see the eviction
            return BufferOutcome::Evict { buffered_bytes };
        }
        st.buffered_bytes += bytes;
        drop(st);
        let total = self.buffered_gauge.add(bytes);
        self.max_buffered_gauge.set_max(total);
        BufferOutcome::Deliver
    }

    /// Receiver-side: one event of `bytes` payload was consumed.
    fn drained(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let mut st = self.st.lock().unwrap();
        if st.receiver_gone {
            return; // already written off by receiver_dropped
        }
        st.buffered_bytes = st.buffered_bytes.saturating_sub(bytes);
        drop(st);
        self.buffered_gauge.sub(bytes);
        self.cv.notify_all();
    }

    /// The receiver was dropped: write off whatever it never consumed
    /// and unblock any throttled submitter (which will then get
    /// [`SubmitError::ReceiverGone`]).
    fn receiver_dropped(&self) {
        let mut st = self.st.lock().unwrap();
        st.receiver_gone = true;
        let orphaned = std::mem::take(&mut st.buffered_bytes);
        drop(st);
        self.buffered_gauge.sub(orphaned);
        self.cv.notify_all();
    }

    /// Bytes currently buffered for this session (status reporting).
    fn buffered_bytes(&self) -> u64 {
        self.st.lock().unwrap().buffered_bytes
    }
}

/// Per-session bookkeeping shared between submitters and the sink.
/// Channel items carry their accounted byte weight so the receiver can
/// credit the gate on consumption.
struct SessionState {
    tx: Sender<(SessionEvent, u64)>,
    /// Flow control shared with the session's submitter and receiver.
    gate: Arc<SessionGate>,
    /// The backend choice this session dispatches to (status
    /// reporting).
    backend: BackendChoice,
    /// When the session was admitted (session-span telemetry).
    opened_at: Instant,
    /// Mapped reads submitted (reads with ≥ 1 task).
    mapped_submitted: u64,
    /// Mapped reads whose rows the sink has delivered.
    completed: u64,
    /// The submit side called finish (no more reads coming).
    finished: bool,
    /// The session opted into per-read [`SessionEvent::Explain`]
    /// events ([`Session::set_explain`]).
    explain_on: bool,
    metrics: SessionMetrics,
}

/// One open session's identity and counters, reported by
/// [`PipelineService::session_stats`].
#[derive(Debug, Clone)]
pub struct SessionStat {
    /// Service-assigned session id.
    pub id: u64,
    /// The session's backend choice (`auto` or a fixed kind).
    pub backend: BackendChoice,
    /// Live counters (monotonic while the session is open).
    pub metrics: SessionMetrics,
    /// Output bytes buffered for this session's receiver right now.
    pub buffered_out_bytes: u64,
}

/// Global ingest state: sequence numbering and admission.
struct Ingest {
    next_read_seq: u64,
    next_session: u64,
    open_sessions: usize,
    draining: bool,
}

/// A batch travelling from dispatch to the sink.
struct SvcDone {
    seq: u64,
    metas: Vec<TaskMeta>,
    alignments: Vec<Option<Alignment>>,
    /// Name of the backend that executed the batch (per-read
    /// provenance; under `auto` routing this is the router's pick).
    backend_name: &'static str,
    completed_at: Instant,
}

struct Shared {
    /// Display label for the loaded reference (banner / status lines);
    /// record contig names come from the index's contig table.
    ref_label: String,
    index: ShardedIndex,
    cfg: ServiceConfig,
    backends: Vec<(BackendKind, Box<dyn Backend>)>,
    task_q: BoundedQueue<(AlignTask, TaskMeta, BackendChoice)>,
    batch_q: BoundedQueue<(Batch, BackendKind)>,
    result_q: BoundedQueue<SvcDone>,
    counters: StageCounters,
    router: Router,
    ingest: Mutex<Ingest>,
    drained_cv: Condvar,
    sessions: Mutex<HashMap<u64, SessionState>>,
    live_dispatchers: AtomicU64,
    backend_errors: AtomicU64,
    last_backend_error: Mutex<Option<BackendError>>,
    started: Instant,
}

impl Shared {
    fn trace(&self) -> Option<&TraceRecorder> {
        self.cfg.pipeline.trace.as_deref()
    }

    /// Trace lane for backend `kind` (stable: index into the resident
    /// backend table).
    fn backend_tid(&self, kind: BackendKind) -> u64 {
        tids::BACKEND0
            + self
                .backends
                .iter()
                .position(|(k, _)| *k == kind)
                .unwrap_or(0) as u64
    }
}

/// The resident alignment service. See the module docs for the
/// architecture; see [`PipelineService::open_session`] for the client
/// side.
pub struct PipelineService {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PipelineService {
    /// Build the index once — consuming the reference, so the only
    /// resident reference bytes for the service's whole lifetime are
    /// the index's shard-local slices — spawn the resident stages, and
    /// return the running service.
    pub fn start(ref_label: &str, reference: Reference, cfg: ServiceConfig) -> PipelineService {
        let backends: Vec<(BackendKind, Box<dyn Backend>)> = BackendKind::ALL
            .iter()
            .map(|&(kind, _)| (kind, kind.create()))
            .collect();
        PipelineService::start_with_backends(ref_label, reference, cfg, backends)
    }

    /// [`PipelineService::start`] with an explicit backend table
    /// (kind tag → implementation). Sessions can only pick backends
    /// present in the table; the one-shot wrapper uses this to run
    /// against a caller-borrowed backend. The `auto` router routes
    /// over the table's bit-identical engines (`cpu`, `gpu-sim`), or
    /// over the whole table when neither is present.
    pub fn start_with_backends(
        ref_label: &str,
        reference: Reference,
        cfg: ServiceConfig,
        backends: Vec<(BackendKind, Box<dyn Backend>)>,
    ) -> PipelineService {
        assert!(!backends.is_empty(), "service needs at least one backend");
        let pcfg = &cfg.pipeline;
        let index = ShardedIndex::build(reference, pcfg.shards, pcfg.shard_overlap);
        // `auto` may only route among backends that produce identical
        // bytes for the same task — the improved-GenASM pair — so
        // routing can never change output. A custom table without
        // that pair degenerates to routing over whatever is there.
        let mut auto_kinds: Vec<BackendKind> = backends
            .iter()
            .map(|(kind, _)| *kind)
            .filter(|kind| matches!(kind, BackendKind::Cpu | BackendKind::GpuSim))
            .collect();
        if auto_kinds.is_empty() {
            auto_kinds = backends.iter().map(|(kind, _)| *kind).collect();
        }
        let router = Router::new(auto_kinds, cfg.router);
        let lane_names: Vec<&str> = backends.iter().map(|(_, b)| b.name()).collect();
        let shared = Arc::new(Shared {
            ref_label: ref_label.to_string(),
            index,
            backends,
            task_q: BoundedQueue::new(pcfg.queue_depth.max(1) * pcfg.batch_bases.max(1)),
            batch_q: BoundedQueue::new(pcfg.queue_depth.max(1)),
            result_q: BoundedQueue::new(pcfg.queue_depth.max(1)),
            counters: StageCounters::default(),
            router,
            ingest: Mutex::new(Ingest {
                next_read_seq: 0,
                next_session: 0,
                open_sessions: 0,
                draining: false,
            }),
            drained_cv: Condvar::new(),
            sessions: Mutex::new(HashMap::new()),
            live_dispatchers: AtomicU64::new(pcfg.dispatchers.max(1) as u64),
            backend_errors: AtomicU64::new(0),
            last_backend_error: Mutex::new(None),
            started: Instant::now(),
            cfg,
        });
        if let Some(t) = shared.trace() {
            trace_lanes(t, &lane_names);
        }

        let mut handles = Vec::new();
        let sh = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || scheduler_loop(&sh)));
        for _ in 0..shared.cfg.pipeline.dispatchers.max(1) {
            let sh = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || dispatch_loop(&sh)));
        }
        let sh = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || sink_loop(&sh)));

        PipelineService {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Display label of the reference the service aligns against.
    pub fn ref_name(&self) -> &str {
        &self.shared.ref_label
    }

    /// Total reference length in bases, across all contigs.
    pub fn ref_len(&self) -> usize {
        self.shared.index.total_len()
    }

    /// Number of contigs in the loaded reference.
    pub fn ref_contigs(&self) -> usize {
        self.shared.index.num_contigs()
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.shared.ingest.lock().unwrap().open_sessions
    }

    /// True once [`PipelineService::shutdown`] has begun.
    pub fn is_draining(&self) -> bool {
        self.shared.ingest.lock().unwrap().draining
    }

    /// Batches poisoned by a backend error so far (their reads fail
    /// individually; the service keeps running).
    pub fn backend_errors(&self) -> u64 {
        self.shared.backend_errors.load(Ordering::Relaxed)
    }

    /// The most recent backend error message, if any.
    pub fn last_backend_error(&self) -> Option<String> {
        self.last_backend_error_detail().map(|e| e.to_string())
    }

    /// The most recent backend error with its structured detail
    /// (backend name + reason) — what the one-shot wrapper needs to
    /// reconstruct its typed abort error.
    pub fn last_backend_error_detail(&self) -> Option<BackendError> {
        self.shared.last_backend_error.lock().unwrap().clone()
    }

    /// Record one session aborted by the serving layer's idle timeout
    /// (surfaces as `sessions_timed_out` in metrics and Prometheus
    /// exposition). The pipeline has no sockets of its own; the server
    /// seam calls this so the count lives next to the other
    /// session-robustness telemetry.
    pub fn note_session_timeout(&self) {
        self.shared.counters.sessions_timed_out.inc();
    }

    /// Open a session. Admission control: fails while draining or when
    /// [`ServiceConfig::max_sessions`] sessions are already open. The
    /// returned halves are independent — submit from one thread while
    /// another drains the receiver.
    pub fn open_session(
        &self,
        backend: impl Into<BackendChoice>,
    ) -> Result<(Session, SessionReceiver), AdmissionError> {
        let backend = backend.into();
        let id = {
            let mut ing = self.shared.ingest.lock().unwrap();
            if ing.draining {
                return Err(AdmissionError::Draining);
            }
            let max = self.shared.cfg.max_sessions;
            if max > 0 && ing.open_sessions >= max {
                return Err(AdmissionError::Busy {
                    active: ing.open_sessions,
                    max,
                });
            }
            ing.open_sessions += 1;
            let id = ing.next_session;
            ing.next_session += 1;
            id
        };
        let (tx, rx) = channel();
        let gate = Arc::new(SessionGate::new(&self.shared.cfg, &self.shared.counters));
        self.shared.sessions.lock().unwrap().insert(
            id,
            SessionState {
                tx,
                gate: Arc::clone(&gate),
                backend,
                opened_at: Instant::now(),
                mapped_submitted: 0,
                completed: 0,
                finished: false,
                explain_on: false,
                metrics: SessionMetrics::default(),
            },
        );
        Ok((
            Session {
                shared: Arc::clone(&self.shared),
                gate: Arc::clone(&gate),
                id,
                backend,
                local_reads: 0,
                closed: false,
            },
            SessionReceiver { rx, gate },
        ))
    }

    /// Live service-wide metrics snapshot (the counters keep running;
    /// `wall` is the service uptime).
    pub fn metrics(&self) -> PipelineMetrics {
        let sh = &self.shared;
        PipelineMetrics::snapshot(
            &sh.counters,
            sh.started.elapsed(),
            sh.index.metrics(),
            QueueMetrics {
                capacity: sh.task_q.capacity(),
                pushed: sh.task_q.total_pushed(),
                high_water: sh.task_q.high_water(),
            },
            QueueMetrics {
                capacity: sh.batch_q.capacity(),
                pushed: sh.batch_q.total_pushed(),
                high_water: sh.batch_q.high_water(),
            },
            QueueMetrics {
                capacity: sh.result_q.capacity(),
                pushed: sh.result_q.total_pushed(),
                high_water: sh.result_q.high_water(),
            },
            {
                // Merge engine instrumentation across every resident
                // backend (sessions may use different ones).
                let mut engine = genasm_core::MemStats::new();
                let mut any = false;
                for (_, b) in &sh.backends {
                    if let Some(s) = b.engine_stats() {
                        engine.merge(&s);
                        any = true;
                    }
                }
                any.then_some(engine)
            },
        )
    }

    /// Per-session live counters for every open session, id-sorted.
    pub fn session_stats(&self) -> Vec<SessionStat> {
        let reg = self.shared.sessions.lock().unwrap();
        let mut out: Vec<SessionStat> = reg
            .iter()
            .map(|(&id, st)| SessionStat {
                id,
                backend: st.backend,
                metrics: st.metrics.clone(),
                buffered_out_bytes: st.gate.buffered_bytes(),
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// One-line JSON status document: server state, per-session
    /// counters, and the full live [`PipelineMetrics`] snapshot
    /// (server `STATS JSON`).
    pub fn stats_json(&self) -> String {
        use std::fmt::Write;
        let sh = &self.shared;
        let ing = sh.ingest.lock().unwrap();
        let (active, draining) = (ing.open_sessions, ing.draining);
        drop(ing);
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"genasm-stats/v1\",\"server\":{{\"sessions\":{active},\
             \"draining\":{draining},\"backend_errors\":{},\"uptime_ms\":{},\
             \"ref\":{{\"label\":\"{}\",\"contigs\":{},\"total_len\":{}}}}}",
            self.backend_errors(),
            sh.started.elapsed().as_millis(),
            genasm_telemetry::json::escape(&sh.ref_label),
            sh.index.num_contigs(),
            sh.index.total_len(),
        );
        s.push_str(",\"sessions\":[");
        for (i, st) in self.session_stats().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"backend\":\"{}\",\"reads_in\":{},\"reads_mapped\":{},\
                 \"reads_unmapped\":{},\"tasks\":{},\"task_bases\":{},\"records_out\":{},\
                 \"reads_failed\":{},\"buffered_out_bytes\":{}}}",
                st.id,
                st.backend,
                st.metrics.reads_in,
                st.metrics.reads_mapped,
                st.metrics.reads_unmapped,
                st.metrics.tasks,
                st.metrics.task_bases,
                st.metrics.records_out,
                st.metrics.reads_failed,
                st.buffered_out_bytes,
            );
        }
        s.push(']');
        let _ = write!(s, ",\"pipeline\":{}}}", self.metrics().to_json());
        s
    }

    /// Prometheus text exposition: the full pipeline registry plus
    /// server-level series (server `STATS PROM`).
    pub fn stats_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = self.metrics().to_prometheus();
        let _ = writeln!(out, "# TYPE genasm_sessions_active gauge");
        let _ = writeln!(out, "genasm_sessions_active {}", self.active_sessions());
        let _ = writeln!(out, "# TYPE genasm_backend_errors_total counter");
        let _ = writeln!(out, "genasm_backend_errors_total {}", self.backend_errors());
        let _ = writeln!(out, "# TYPE genasm_uptime_ms gauge");
        let _ = writeln!(
            out,
            "genasm_uptime_ms {}",
            self.shared.started.elapsed().as_millis()
        );
        out
    }

    /// One `genasm-stat-frame/v1` JSON object for the server's
    /// `STATS STREAM` push feed: uptime, open sessions, the decision
    /// funnel, caller-computed interval rates, per-backend batch
    /// counts and execute-latency quantiles, buffered session output,
    /// and the slowest-reads ring. Single line, no trailing newline.
    pub fn stat_frame_json(
        &self,
        interval_ms: u64,
        reads_per_sec: f64,
        records_per_sec: f64,
    ) -> String {
        use std::fmt::Write;
        let sh = &self.shared;
        let m = self.metrics();
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"genasm-stat-frame/v1\",\"uptime_ms\":{},\"interval_ms\":{},\
             \"sessions\":{},\"records_out\":{},\"funnel\":{},\
             \"rates\":{{\"reads_per_sec\":{},\"records_per_sec\":{}}}",
            sh.started.elapsed().as_millis(),
            interval_ms,
            self.active_sessions(),
            m.records_out,
            m.funnel.to_json(),
            genasm_telemetry::json::number(reads_per_sec),
            genasm_telemetry::json::number(records_per_sec),
        );
        s.push_str(",\"backends\":{");
        for (i, b) in m.backends.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"batches\":{},\"tasks\":{},\"execute_p50_ns\":{},\
                 \"execute_p99_ns\":{},\"execute_max_ns\":{}}}",
                genasm_telemetry::json::escape(&b.name),
                b.batches,
                b.tasks,
                b.execute.p50(),
                b.execute.p99(),
                b.execute.max,
            );
        }
        s.push('}');
        let _ = write!(
            s,
            ",\"buffered_out_bytes\":{},\"slowest\":{}}}",
            m.session_output_buffered_bytes,
            sh.counters.slow_reads.to_json(),
        );
        s
    }

    /// Stop admitting new sessions immediately (open ones keep
    /// running). [`PipelineService::shutdown`] implies this; calling
    /// it first lets a server refuse work the moment a shutdown is
    /// *requested*, before the drain itself begins.
    pub fn begin_drain(&self) {
        self.shared.ingest.lock().unwrap().draining = true;
    }

    /// Graceful drain: refuse new sessions, wait for open sessions to
    /// finish, flush and close every queue, join the stages, and
    /// return the final metrics. Idempotent — later calls just return
    /// a fresh snapshot.
    pub fn shutdown(&self) -> PipelineMetrics {
        {
            let mut ing = self.shared.ingest.lock().unwrap();
            ing.draining = true;
            while ing.open_sessions > 0 {
                ing = self.shared.drained_cv.wait(ing).unwrap();
            }
        }
        self.shared.task_q.close();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        self.metrics()
    }
}

impl Drop for PipelineService {
    fn drop(&mut self) {
        // Close the queues so stage threads exit even if the owner
        // never called shutdown; detached sessions will see
        // `SubmitError::ServiceStopped`.
        self.shared.task_q.close();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The submitting half of a session. Dropping without
/// [`Session::finish`] finishes it implicitly.
pub struct Session {
    shared: Arc<Shared>,
    gate: Arc<SessionGate>,
    id: u64,
    backend: BackendChoice,
    local_reads: u64,
    closed: bool,
}

impl Session {
    /// The service-assigned session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The backend choice this session's tasks are dispatched to.
    pub fn backend(&self) -> BackendChoice {
        self.backend
    }

    /// Map one read and push its candidate tasks into the shared
    /// pipeline. Blocks while the task queue is full (the server-wide
    /// admission valve) or while this session is at one of its own
    /// caps (in-flight reads/bases, or buffered output under
    /// [`OverflowPolicy::Throttle`]) — per-session backpressure that
    /// blocks only the submitting thread. Returns the number of tasks
    /// generated (0 = unmapped read; it completes immediately with no
    /// rows).
    pub fn submit(&mut self, read: ReadInput) -> Result<usize, SubmitError> {
        self.gate.admit()?;
        let sh = &self.shared;
        let t0 = Instant::now();
        let (tasks, map_stats) = sh.index.candidates_for_read_stats(
            self.local_reads as u32,
            &read.seq,
            &sh.cfg.pipeline.params,
        );
        self.local_reads += 1;
        let map_ns = t0.elapsed();
        StageCounters::add_ns(&sh.counters.mapper_ns, map_ns);
        sh.counters.reads_in.inc();
        if let Some(t) = sh.trace() {
            t.span(
                "map",
                "service",
                tids::INGEST,
                t0,
                map_ns,
                &[
                    ("read", read.name.as_str().into()),
                    ("session", self.id.into()),
                    ("tasks", tasks.len().into()),
                ],
            );
        }
        let unmapped_reason = sh.counters.note_funnel(&map_stats);
        let provenance = Arc::new(ReadProvenance {
            anchors: map_stats.anchors,
            chains: map_stats.chains,
            candidates: map_stats.candidates,
            map_ns: map_ns.as_nanos() as u64,
        });
        let n = tasks.len();
        let total_bases: usize = tasks.iter().map(AlignTask::bases).sum();
        {
            let mut reg = sh.sessions.lock().unwrap();
            let st = reg.get_mut(&self.id).expect("open session is registered");
            st.metrics.reads_in += 1;
            if n > 0 {
                st.metrics.reads_mapped += 1;
                st.metrics.tasks += n as u64;
                st.metrics.task_bases += total_bases as u64;
                // Counted before the push so the sink can never observe
                // completed > mapped_submitted.
                st.mapped_submitted += 1;
            } else {
                // Zero-candidate reads used to vanish without a trace;
                // now they are accounted per session and per reason,
                // and get their explain line like every other read.
                st.metrics.reads_unmapped += 1;
                let reason = unmapped_reason.unwrap_or("no_candidates");
                let disp = disposition::unmapped(reason);
                // The read never reaches the sink, so record its
                // end-to-end latency (= mapping time) here to keep the
                // one-sample-per-read histogram invariant.
                sh.counters.read_latency_ns.record(provenance.map_ns);
                sh.counters
                    .slow_reads
                    .observe(&read.name, provenance.map_ns, &disp);
                let rec = ExplainRecord {
                    read: &read.name,
                    disposition: &disp,
                    backend: None,
                    provenance: *provenance,
                    tasks: &[],
                    align_ns: 0,
                };
                if let Some(x) = sh.cfg.pipeline.explain.as_deref() {
                    x.emit(&rec);
                }
                if st.explain_on {
                    let _ = st.tx.send((SessionEvent::Explain(rec.to_json()), 0));
                }
            }
        }
        if n == 0 {
            return Ok(0);
        }
        // Registered before the pushes so the read counts against the
        // session's in-flight caps from the moment it can occupy queue
        // space; the sink's `read_done` is the matching credit.
        self.gate.register_read(total_bases as u64);
        let qname: Arc<str> = Arc::from(read.name.as_str());
        let qlen = read.seq.len();
        // Hold the ingest lock across all pushes: a read's tasks must
        // be contiguous in the shared task stream (the sink's per-read
        // accumulation depends on it), and the global read sequence
        // must match push order. Backpressure from a full task queue
        // therefore stalls every submitting session — that is the
        // shared admission control working as intended.
        let mut ing = sh.ingest.lock().unwrap();
        let read_seq = ing.next_read_seq;
        ing.next_read_seq += 1;
        for task in tasks {
            let bases = task.bases();
            let meta = TaskMeta {
                read_seq,
                session: self.id,
                qname: Arc::clone(&qname),
                qlen,
                read_tasks: n as u32,
                tname: sh.index.contig_name_shared(task.contig),
                tsize: sh.index.contig_len(task.contig),
                tstart: task.ref_pos,
                tlen: task.target.len(),
                reverse: task.reverse,
                max_edits: task.max_edits,
                provenance: Arc::clone(&provenance),
                submitted_at: t0,
                enqueued_at: Instant::now(),
            };
            sh.counters.task_in(bases);
            sh.counters.query_bases.add(task.query.len() as u64);
            if sh.task_q.push((task, meta, self.backend), bases).is_err() {
                return Err(SubmitError::ServiceStopped);
            }
        }
        Ok(n)
    }

    /// Opt this session in (or out) of per-read provenance events:
    /// while on, every read is followed by a [`SessionEvent::Explain`]
    /// carrying its `genasm-explain/v1` JSON line. Strictly passive —
    /// record delivery and ordering are unchanged.
    pub fn set_explain(&mut self, on: bool) {
        if let Some(st) = self.shared.sessions.lock().unwrap().get_mut(&self.id) {
            st.explain_on = on;
        }
    }

    /// Declare the session finished: once its in-flight reads drain,
    /// the receiver gets [`SessionEvent::End`] and the session slot is
    /// released for admission.
    pub fn finish(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let sh = &self.shared;
        {
            let mut reg = sh.sessions.lock().unwrap();
            if let Some(st) = reg.get_mut(&self.id) {
                st.finished = true;
                if st.completed == st.mapped_submitted {
                    let st = reg.remove(&self.id).unwrap();
                    trace_session_end(sh, self.id, &st);
                    let _ = st.tx.send((SessionEvent::End(st.metrics.clone()), 0));
                }
            }
        }
        let mut ing = sh.ingest.lock().unwrap();
        ing.open_sessions -= 1;
        drop(ing);
        sh.drained_cv.notify_all();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.close_inner();
    }
}

/// The receiving half of a session: completed reads stream out in
/// submission order, closed by [`SessionEvent::End`]. Consuming an
/// event credits the session's output budget; dropping the receiver
/// before `End` writes the budget off and makes further submits fail
/// with [`SubmitError::ReceiverGone`] — a vanished consumer must not
/// pin buffered output or deadlock a throttled submitter.
pub struct SessionReceiver {
    rx: Receiver<(SessionEvent, u64)>,
    gate: Arc<SessionGate>,
}

impl SessionReceiver {
    fn credit(&self, (event, bytes): (SessionEvent, u64)) -> SessionEvent {
        self.gate.drained(bytes);
        event
    }

    /// Next event; `None` if the service died before the session ended
    /// (after [`SessionEvent::End`] this also returns `None`).
    pub fn recv(&self) -> Option<SessionEvent> {
        self.rx.recv().ok().map(|item| self.credit(item))
    }

    /// Next event if one is already buffered; never blocks (`None`
    /// both when the session is quiet and when it is over).
    pub fn try_recv(&self) -> Option<SessionEvent> {
        self.rx.try_recv().ok().map(|item| self.credit(item))
    }

    /// Like [`SessionReceiver::recv`] with a deadline; `None` on
    /// timeout or service death.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<SessionEvent> {
        self.rx
            .recv_timeout(timeout)
            .ok()
            .map(|item| self.credit(item))
    }

    /// Like [`SessionReceiver::recv_timeout`], but distinguishes a
    /// quiet session from a dead service — what a serving loop needs
    /// to choose between emitting a heartbeat and giving up.
    pub fn recv_deadline(&self, timeout: Duration) -> RecvOutcome {
        use std::sync::mpsc::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(item) => RecvOutcome::Event(self.credit(item)),
            Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
        }
    }

    /// Iterate events until `End` (inclusive) or service death.
    pub fn iter(&self) -> impl Iterator<Item = SessionEvent> + '_ {
        self.rx.iter().map(move |item| self.credit(item))
    }
}

impl Drop for SessionReceiver {
    fn drop(&mut self) {
        self.gate.receiver_dropped();
    }
}

/// Outcome of [`SessionReceiver::recv_deadline`].
#[derive(Debug)]
pub enum RecvOutcome {
    /// An event arrived.
    Event(SessionEvent),
    /// Nothing arrived within the window; the session is still live.
    TimedOut,
    /// The service died before the session ended ([`SessionEvent::End`]
    /// will never come).
    Closed,
}

/// One per-choice building batch in the scheduler: the shared
/// [`BatchBuilder`] accumulation rules plus an age stamp for the
/// linger flush. An `auto` session gets one slot of its own (keyed by
/// [`BackendChoice::Auto`]) whose flushed batches are routed to a
/// concrete backend at dispatch time, so a read's tasks still occupy
/// one FIFO building batch and complete in submission order. Batch
/// sequence numbers are assigned globally at dispatch so the sink's
/// reorder buffer sees one ordered stream.
struct Slot {
    choice: BackendChoice,
    builder: BatchBuilder,
    /// When the oldest task of the building batch arrived.
    since: Instant,
}

/// Hand one finished batch to the dispatchers — resolving an `auto`
/// batch to a concrete backend via the router first; false when the
/// batch queue closed (service shutting down).
fn dispatch_batch(
    sh: &Shared,
    choice: BackendChoice,
    mut batch: Batch,
    next_seq: &mut u64,
) -> bool {
    let kind = match choice.fixed() {
        Some(kind) => kind,
        None => sh.router.route(
            &sh.counters,
            batch.bases as u64,
            batch.tasks.len() as u64,
            sh.counters.max_task_bases.get(),
        ),
    };
    batch.seq = *next_seq;
    *next_seq += 1;
    sh.counters.batch_dispatched(batch.tasks.len(), batch.bases);
    let build = batch.ready_at.duration_since(batch.build_started);
    sh.counters.batch_build_ns.record_duration(build);
    if let Some(t) = sh.trace() {
        t.span(
            "batch-build",
            "service",
            tids::SCHED,
            batch.build_started,
            build,
            &[
                ("batch", batch.seq.into()),
                ("backend", kind.to_string().into()),
                ("tasks", batch.tasks.len().into()),
                ("bases", batch.bases.into()),
            ],
        );
    }
    sh.batch_q.push((batch, kind), 1).is_ok()
}

fn scheduler_loop(sh: &Shared) {
    let target = sh.cfg.pipeline.batch_bases.max(1);
    // A zero linger would busy-spin pop_timeout on an idle queue.
    let linger = sh.cfg.linger.max(Duration::from_millis(1));
    let mut slots: Vec<Slot> = Vec::new();
    let mut next_seq: u64 = 0;
    loop {
        match sh.task_q.pop_timeout(linger) {
            PopTimeout::Item((task, meta, choice)) => {
                let t0 = Instant::now();
                sh.counters
                    .task_queue_wait_ns
                    .record_duration(t0.duration_since(meta.enqueued_at));
                let idx = match slots.iter().position(|s| s.choice == choice) {
                    Some(i) => i,
                    None => {
                        slots.push(Slot {
                            choice,
                            builder: BatchBuilder::new(target),
                            since: Instant::now(),
                        });
                        slots.len() - 1
                    }
                };
                let slot = &mut slots[idx];
                if slot.builder.is_empty() {
                    slot.since = Instant::now();
                }
                let flushed = slot.builder.push(task, meta);
                StageCounters::add_ns(&sh.counters.scheduler_ns, t0.elapsed());
                if let Some(batch) = flushed {
                    if !dispatch_batch(sh, choice, batch, &mut next_seq) {
                        return;
                    }
                }
            }
            PopTimeout::TimedOut => {}
            PopTimeout::Closed => break,
        }
        // Age-based flush on every iteration: a partial batch waits at
        // most `linger` even while *other* backends' steady traffic
        // keeps the queue from ever going idle — one slow session must
        // not be starved by another's throughput. Flush timing never
        // changes output (batch-geometry determinism).
        for slot in &mut slots {
            if !slot.builder.is_empty() && slot.since.elapsed() >= linger {
                if let Some(batch) = slot.builder.take() {
                    if !dispatch_batch(sh, slot.choice, batch, &mut next_seq) {
                        return;
                    }
                }
            }
        }
    }
    for slot in &mut slots {
        if let Some(batch) = slot.builder.take() {
            if !dispatch_batch(sh, slot.choice, batch, &mut next_seq) {
                return;
            }
        }
    }
    sh.batch_q.close();
}

fn dispatch_loop(sh: &Shared) {
    let mut lats: Vec<(BackendKind, BackendLat)> = Vec::new();
    while let Some((batch, kind)) = sh.batch_q.pop() {
        let t0 = Instant::now();
        let backend = sh
            .backends
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, b)| b.as_ref())
            .expect("every BackendKind is instantiated at start");
        let lat_idx = match lats.iter().position(|(k, _)| *k == kind) {
            Some(i) => i,
            None => {
                lats.push((kind, sh.counters.backend_lat(backend.name())));
                lats.len() - 1
            }
        };
        let lat = &lats[lat_idx].1;
        let queue_wait = t0.duration_since(batch.ready_at);
        lat.queue_wait_ns.record_duration(queue_wait);
        let alignments = match backend.align_batch(&batch.tasks) {
            Ok(a) => a,
            Err(e) => {
                // Poisoned batch: fail its reads individually, keep
                // serving everyone else. Stored before the results are
                // pushed so a consumer that sees a failed read always
                // finds the error that caused it.
                sh.backend_errors.fetch_add(1, Ordering::Relaxed);
                *sh.last_backend_error.lock().unwrap() = Some(e);
                batch.tasks.iter().map(|_| None).collect()
            }
        };
        let execute = t0.elapsed();
        StageCounters::add_ns(&sh.counters.backend_ns, execute);
        lat.execute_ns.record_duration(execute);
        lat.batches.inc();
        lat.tasks.add(batch.tasks.len() as u64);
        lat.bases.add(batch.bases as u64);
        if let Some(t) = sh.trace() {
            let tid = sh.backend_tid(kind);
            let args = [
                ("batch", batch.seq.into()),
                ("tasks", batch.tasks.len().into()),
                ("bases", batch.bases.into()),
            ];
            t.span(
                "queue-wait",
                "service",
                tid,
                batch.ready_at,
                queue_wait,
                &args,
            );
            t.span("execute", "service", tid, t0, execute, &args);
        }
        let done = SvcDone {
            seq: batch.seq,
            metas: batch.metas,
            alignments,
            backend_name: backend.name(),
            completed_at: Instant::now(),
        };
        if sh.result_q.push(done, 1).is_err() {
            return;
        }
    }
    if sh.live_dispatchers.fetch_sub(1, Ordering::AcqRel) == 1 {
        sh.result_q.close();
    }
}

/// A read whose tasks are still arriving at the sink.
struct ReadAcc {
    session: u64,
    qname: Arc<str>,
    expected: u32,
    got: u32,
    rows: Vec<AlignRecord>,
    /// Hint-vs-actual accounting per accepted candidate (explain and
    /// rescue telemetry).
    tasks: Vec<TaskExplain>,
    failed: bool,
    submitted_at: Instant,
    /// Funnel counts captured at candidate generation.
    provenance: Arc<ReadProvenance>,
    /// Task bases accumulated as the read's tasks arrive — the credit
    /// handed back to the session gate at completion.
    bases: u64,
    /// Backend that executed the read's tasks (explain provenance).
    /// When a read spans batches routed to different — bit-identical —
    /// backends, the last batch wins.
    backend: Option<&'static str>,
}

/// Deliver one completed read to its session and update completion
/// accounting (possibly emitting the session's `End`).
fn finalize_read(sh: &Shared, acc: ReadAcc) {
    let latency = acc.submitted_at.elapsed();
    sh.counters.read_latency_ns.record_duration(latency);
    // Funnel disposition is global telemetry: it runs even when the
    // session (and its receiver) is already gone.
    let disp = if acc.failed {
        sh.counters.reads_failed.inc();
        disposition::FAILED_NO_ALIGNMENT
    } else {
        sh.counters.reads_aligned.inc();
        if acc.tasks.iter().any(|t| t.rescued) {
            sh.counters.reads_rescued.inc();
            disposition::RESCUED
        } else {
            disposition::ALIGNED
        }
    };
    sh.counters
        .slow_reads
        .observe(&acc.qname, latency.as_nanos() as u64, disp);
    let rec = ExplainRecord {
        read: &acc.qname,
        disposition: disp,
        backend: acc.backend,
        provenance: *acc.provenance,
        tasks: &acc.tasks,
        align_ns: latency.as_nanos() as u64,
    };
    if let Some(x) = sh.cfg.pipeline.explain.as_deref() {
        x.emit(&rec);
    }
    if let Some(t) = sh.trace() {
        t.span(
            "read",
            "service",
            tids::READS,
            acc.submitted_at,
            latency,
            &[
                ("read", (&*acc.qname).into()),
                ("session", acc.session.into()),
            ],
        );
    }
    let mut reg = sh.sessions.lock().unwrap();
    let Some(st) = reg.get_mut(&acc.session) else {
        return; // receiver side vanished; nothing to deliver to
    };
    st.completed += 1;
    if acc.failed {
        st.metrics.reads_failed += 1;
        match st.gate.buffer(0) {
            BufferOutcome::Deliver => {
                let _ = st.tx.send((
                    SessionEvent::ReadFailed {
                        read: acc.qname.to_string(),
                    },
                    0,
                ));
            }
            // A zero-byte event can never overflow the cap.
            BufferOutcome::Evict { .. } | BufferOutcome::Drop => {}
        }
    } else {
        let mut rows = acc.rows;
        rows.sort_by_cached_key(AlignRecord::sort_key);
        // Accounted as the TSV rendering plus a newline per row — the
        // bytes a server would buffer for this delivery.
        let bytes: u64 = rows.iter().map(|r| r.to_tsv().len() as u64 + 1).sum();
        match st.gate.buffer(bytes) {
            BufferOutcome::Deliver => {
                st.metrics.records_out += rows.len() as u64;
                sh.counters.records_out.add(rows.len() as u64);
                let _ = st.tx.send((SessionEvent::Rows(rows), bytes));
            }
            BufferOutcome::Evict { buffered_bytes } => {
                let _ = st.tx.send((
                    SessionEvent::Overflow {
                        buffered_bytes,
                        cap: sh.cfg.max_session_output_bytes as u64,
                    },
                    0,
                ));
            }
            BufferOutcome::Drop => {}
        }
    }
    if st.explain_on {
        let _ = st.tx.send((SessionEvent::Explain(rec.to_json()), 0));
    }
    // Debit before credit: the read's output is on the books before
    // its in-flight slot frees, so a throttled submitter can never be
    // admitted in a window where completed output is unaccounted —
    // that ordering is what makes `session_output_bound` exact.
    st.gate.read_done(acc.bases);
    if st.finished && st.completed == st.mapped_submitted {
        let st = reg.remove(&acc.session).unwrap();
        trace_session_end(sh, acc.session, &st);
        let _ = st.tx.send((SessionEvent::End(st.metrics.clone()), 0));
    }
}

/// Emit the session-lifecycle span when a session fully drains.
fn trace_session_end(sh: &Shared, id: u64, st: &SessionState) {
    if let Some(t) = sh.trace() {
        t.span(
            "session",
            "service",
            tids::SESSION,
            st.opened_at,
            st.opened_at.elapsed(),
            &[
                ("session", id.into()),
                ("backend", st.backend.to_string().into()),
                ("reads", st.metrics.reads_in.into()),
                ("records", st.metrics.records_out.into()),
            ],
        );
    }
}

fn sink_loop(sh: &Shared) {
    let mut reorder: ReorderBuffer<SvcDone> = ReorderBuffer::new();
    // Keyed by global read sequence: with per-backend batches, another
    // backend's batch can land between two batches carrying one read's
    // tasks, so (unlike the one-shot sink) a single "current read"
    // accumulator is not enough. Reads still *complete* in per-session
    // submission order — one session means one backend, so its tasks
    // flow FIFO through one building batch.
    let mut accs: HashMap<u64, ReadAcc> = HashMap::new();
    while let Some(done) = sh.result_q.pop() {
        for batch in reorder.push(done.seq, done) {
            let t0 = Instant::now();
            let batch_seq = batch.seq;
            let backend_name = batch.backend_name;
            sh.counters
                .reorder_wait_ns
                .record_duration(t0.duration_since(batch.completed_at));
            for (meta, aln) in batch.metas.iter().zip(batch.alignments) {
                sh.counters.task_out(meta.qlen + meta.tlen);
                let acc = accs.entry(meta.read_seq).or_insert_with(|| ReadAcc {
                    session: meta.session,
                    qname: Arc::clone(&meta.qname),
                    expected: meta.read_tasks,
                    got: 0,
                    rows: Vec::with_capacity(meta.read_tasks as usize),
                    tasks: Vec::with_capacity(meta.read_tasks as usize),
                    failed: false,
                    submitted_at: meta.submitted_at,
                    provenance: Arc::clone(&meta.provenance),
                    bases: 0,
                    backend: None,
                });
                acc.bases += (meta.qlen + meta.tlen) as u64;
                acc.backend = Some(backend_name);
                match aln {
                    Some(aln) => {
                        let rescued = meta
                            .max_edits
                            .is_some_and(|k| aln.edit_distance > k as usize);
                        if rescued {
                            sh.counters.tasks_rescued.inc();
                        }
                        acc.tasks.push(TaskExplain {
                            hint: meta.max_edits,
                            edits: aln.edit_distance as u64,
                            rescued,
                        });
                        acc.rows.push(AlignRecord::new(
                            &meta.qname,
                            meta.qlen,
                            &meta.tname,
                            meta.tsize,
                            meta.tstart,
                            meta.tlen,
                            meta.reverse,
                            &aln,
                        ))
                    }
                    None => acc.failed = true,
                }
                acc.got += 1;
                if acc.got == acc.expected {
                    let acc = accs.remove(&meta.read_seq).unwrap();
                    finalize_read(sh, acc);
                }
            }
            StageCounters::add_ns(&sh.counters.sink_ns, t0.elapsed());
            if let Some(t) = sh.trace() {
                t.span(
                    "sink",
                    "service",
                    tids::SINK,
                    t0,
                    t0.elapsed(),
                    &[("batch", batch_seq.into())],
                );
            }
        }
    }
    debug_assert!(reorder.is_empty(), "reorder buffer drained at shutdown");
    debug_assert!(accs.is_empty(), "no partial reads left at shutdown");
}
