//! Per-stage pipeline telemetry.
//!
//! Every stage updates a shared [`StageCounters`] — a set of named
//! handles into a [`genasm_telemetry::Registry`] — through relaxed
//! atomics (the numbers are telemetry, not synchronization), and
//! [`PipelineMetrics`] is the immutable snapshot taken on demand: at
//! the end of a batch run, or live from the resident service while
//! sessions are in flight. Counters answer the production questions:
//! *where is the time going* (per-stage busy nanos, backend
//! utilization, latency histograms), *is batching working*
//! (batch-size histogram, mean bases per batch), *is memory bounded*
//! (queue high-waters, peak in-flight bases), and *where do reads
//! wait* (task-queue wait, backend queue wait, reorder wait).
//!
//! # Snapshot ordering contract
//!
//! [`StageCounters`] may be snapshotted at any instant of a live run.
//! The guarantees, in decreasing strength:
//!
//! * **Per-field monotonicity.** Every counter and every histogram
//!   bucket only ever increases, so for two snapshots taken in order
//!   the earlier is field-by-field `≤` the later
//!   ([`PipelineMetrics::le_monotonic`] checks exactly this). Gauges
//!   (`inflight_*`) move both ways and are exempt; their `max_*`
//!   high-water companions are monotonic.
//! * **Eventual cross-field consistency.** Fields are updated by
//!   different stages without a global lock, so relations like
//!   `reads_mapped ≤ reads_in` or `batch_tasks ≤ tasks_generated`
//!   hold *at rest* (after [`drain`](crate::PipelineService::drain) or
//!   run end) but may be transiently off by in-flight updates in a
//!   mid-run snapshot. Within one histogram, `count == Σ buckets`
//!   holds in every snapshot by construction; `sum` may lag.
//! * **Engine stats are batch-atomic.** Backends merge
//!   [`genasm_core::MemStats`] under a per-backend mutex once per
//!   completed batch (see [`crate::Backend::engine_stats`]), so a
//!   snapshot never observes a half-merged batch — the engine
//!   counters are always a consistent prefix of completed batches.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use genasm_telemetry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SlowRead, SlowReads, Snapshot, BUCKETS,
};
use mapper::{ReadMapStats, ShardIndexMetrics};

/// Entries retained by the slow-read ring (name, latency, disposition
/// of the slowest reads seen so far), surfaced in `STATS JSON` and the
/// server's `# stat-frame` stream.
pub const SLOW_READS_CAPACITY: usize = 8;

/// Number of power-of-two buckets in the legacy batch-size histogram
/// view ([`PipelineMetrics::batch_size_hist`]). Bucket `i > 0` counts
/// batches with total bases in `[2^(i-1), 2^i)`, bucket 0 counts empty
/// batches; the last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 32;

/// Latency handles for one backend: batch/task counts plus queue-wait
/// and execute histograms, all labeled `backend="<name>"` in the
/// registry.
#[derive(Debug, Clone)]
pub struct BackendLat {
    /// Batches executed by this backend.
    pub batches: Arc<Counter>,
    /// Tasks across those batches.
    pub tasks: Arc<Counter>,
    /// Bases across those batches (the denominator the adaptive
    /// router's per-base cost model divides `execute_ns.sum` by).
    pub bases: Arc<Counter>,
    /// Nanoseconds each batch waited between scheduler dispatch and
    /// the backend picking it up.
    pub queue_wait_ns: Arc<Histogram>,
    /// Nanoseconds inside `align_batch` per batch.
    pub execute_ns: Arc<Histogram>,
}

/// Live counters shared by the pipeline stages: named handles into
/// one [`Registry`]. Recording is wait-free; see the module docs for
/// the snapshot ordering contract.
#[derive(Debug)]
pub struct StageCounters {
    registry: Arc<Registry>,
    // Reader / candidate generation.
    pub reads_in: Arc<Counter>,
    pub reads_mapped: Arc<Counter>,
    // Decision funnel: how far each read got before it stopped
    // producing anything. `reads_anchored ≥ reads_chained ≥
    // reads_mapped`; at rest `reads_in == reads_aligned +
    // Σ reads_unmapped{reason} + reads_failed`.
    pub reads_anchored: Arc<Counter>,
    pub reads_chained: Arc<Counter>,
    pub reads_aligned: Arc<Counter>,
    pub reads_rescued: Arc<Counter>,
    pub reads_failed: Arc<Counter>,
    pub unmapped_no_anchors: Arc<Counter>,
    pub unmapped_no_chain: Arc<Counter>,
    pub unmapped_no_candidates: Arc<Counter>,
    /// Accepted candidate alignments whose edit distance exceeded
    /// their banding hint — the tight band came up empty and the
    /// engine's full-budget rescue produced the result.
    pub tasks_rescued: Arc<Counter>,
    /// Ring of the slowest completed reads (not a registry metric:
    /// entries carry names, so it is rendered separately).
    pub slow_reads: Arc<SlowReads>,
    pub tasks_generated: Arc<Counter>,
    pub task_bases: Arc<Counter>,
    pub query_bases: Arc<Counter>,
    pub max_task_bases: Arc<Gauge>,
    // Scheduler.
    pub batches: Arc<Counter>,
    pub batch_tasks: Arc<Counter>,
    pub batch_bases: Arc<Counter>,
    pub max_batch_bases: Arc<Gauge>,
    pub batch_size_bases: Arc<Histogram>,
    // Sink.
    pub records_out: Arc<Counter>,
    // Per-session output buffering (service only): bytes delivered to
    // session event channels but not yet consumed by the receivers,
    // its high water, and how often submitters were throttled or
    // connections timed out by the serving layer.
    pub session_output_buffered: Arc<Gauge>,
    pub max_session_output_buffered: Arc<Gauge>,
    pub sessions_throttled: Arc<Counter>,
    pub sessions_timed_out: Arc<Counter>,
    // Residency (bases inside the pipeline between mapper push and
    // sink consumption).
    pub inflight_bases: Arc<Gauge>,
    pub max_inflight_bases: Arc<Gauge>,
    pub inflight_tasks: Arc<Gauge>,
    pub max_inflight_tasks: Arc<Gauge>,
    // Busy time per stage, nanoseconds.
    pub mapper_ns: Arc<Counter>,
    pub scheduler_ns: Arc<Counter>,
    pub backend_ns: Arc<Counter>,
    pub sink_ns: Arc<Counter>,
    // Lifecycle latency histograms, nanoseconds.
    pub read_latency_ns: Arc<Histogram>,
    pub task_queue_wait_ns: Arc<Histogram>,
    pub batch_build_ns: Arc<Histogram>,
    pub reorder_wait_ns: Arc<Histogram>,
    // Per-backend latency handles, created on first dispatch.
    backend_lats: Mutex<BTreeMap<String, BackendLat>>,
    // Adaptive-router decision counters, created on first routed
    // batch: how many batches each backend was chosen for, and how
    // many of those picks were exploration (not cost-model) picks.
    router_batches: Mutex<BTreeMap<String, Arc<Counter>>>,
    pub router_explored: Arc<Counter>,
}

impl Default for StageCounters {
    fn default() -> StageCounters {
        StageCounters::new()
    }
}

impl StageCounters {
    /// Fresh counters over a private registry.
    pub fn new() -> StageCounters {
        let registry = Arc::new(Registry::new());
        StageCounters {
            reads_in: registry.counter("reads_in"),
            reads_mapped: registry.counter("reads_mapped"),
            reads_anchored: registry.counter("reads_anchored"),
            reads_chained: registry.counter("reads_chained"),
            reads_aligned: registry.counter("reads_aligned"),
            reads_rescued: registry.counter("reads_rescued"),
            reads_failed: registry.counter("reads_failed"),
            unmapped_no_anchors: registry.labeled_counter("reads_unmapped", "reason", "no_anchors"),
            unmapped_no_chain: registry.labeled_counter("reads_unmapped", "reason", "no_chain"),
            unmapped_no_candidates: registry.labeled_counter(
                "reads_unmapped",
                "reason",
                "no_candidates",
            ),
            tasks_rescued: registry.counter("tasks_rescued"),
            slow_reads: Arc::new(SlowReads::new(SLOW_READS_CAPACITY)),
            tasks_generated: registry.counter("tasks_generated"),
            task_bases: registry.counter("task_bases"),
            query_bases: registry.counter("query_bases"),
            max_task_bases: registry.gauge("max_task_bases"),
            batches: registry.counter("batches"),
            batch_tasks: registry.counter("batch_tasks"),
            batch_bases: registry.counter("batch_bases"),
            max_batch_bases: registry.gauge("max_batch_bases"),
            batch_size_bases: registry.histogram("batch_size_bases"),
            records_out: registry.counter("records_out"),
            session_output_buffered: registry.gauge("session_output_buffered_bytes"),
            max_session_output_buffered: registry.gauge("max_session_output_buffered_bytes"),
            sessions_throttled: registry.counter("sessions_throttled"),
            sessions_timed_out: registry.counter("sessions_timed_out"),
            inflight_bases: registry.gauge("inflight_bases"),
            max_inflight_bases: registry.gauge("max_inflight_bases"),
            inflight_tasks: registry.gauge("inflight_tasks"),
            max_inflight_tasks: registry.gauge("max_inflight_tasks"),
            mapper_ns: registry.counter("mapper_busy_ns"),
            scheduler_ns: registry.counter("scheduler_busy_ns"),
            backend_ns: registry.counter("backend_busy_ns"),
            sink_ns: registry.counter("sink_busy_ns"),
            read_latency_ns: registry.histogram("read_latency_ns"),
            task_queue_wait_ns: registry.histogram("task_queue_wait_ns"),
            batch_build_ns: registry.histogram("batch_build_ns"),
            reorder_wait_ns: registry.histogram("reorder_wait_ns"),
            backend_lats: Mutex::new(BTreeMap::new()),
            router_batches: Mutex::new(BTreeMap::new()),
            router_explored: registry.counter("router_explored"),
            registry,
        }
    }

    /// The backing registry (for raw snapshots and expositions).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Latency handles for backend `name`, registered on first use.
    pub fn backend_lat(&self, name: &str) -> BackendLat {
        let mut map = self.backend_lats.lock().expect("backend lat mutex");
        map.entry(name.to_string())
            .or_insert_with(|| BackendLat {
                batches: self
                    .registry
                    .labeled_counter("backend_batches", "backend", name),
                tasks: self
                    .registry
                    .labeled_counter("backend_tasks", "backend", name),
                bases: self
                    .registry
                    .labeled_counter("backend_bases", "backend", name),
                queue_wait_ns: self.registry.labeled_histogram(
                    "backend_queue_wait_ns",
                    "backend",
                    name,
                ),
                execute_ns: self
                    .registry
                    .labeled_histogram("backend_execute_ns", "backend", name),
            })
            .clone()
    }

    /// Record one read's pass through the candidate funnel stages
    /// (anchors → chains → candidates). `reads_in` is bumped
    /// separately by the ingest stage; this bumps the stage-survival
    /// counters and, for a read that emptied out, the partitioned
    /// `reads_unmapped{reason}` counter. Returns the unmapped reason
    /// when the read produced no candidates.
    pub fn note_funnel(&self, st: &ReadMapStats) -> Option<&'static str> {
        if st.anchors > 0 {
            self.reads_anchored.inc();
        }
        if st.chains > 0 {
            self.reads_chained.inc();
        }
        match st.unmapped_reason() {
            None => {
                self.reads_mapped.inc();
                None
            }
            Some(reason) => {
                self.note_unmapped(reason);
                Some(reason)
            }
        }
    }

    /// Bump the partitioned unmapped counter for `reason`
    /// (`no_anchors` / `no_chain` / `no_candidates`).
    pub fn note_unmapped(&self, reason: &str) {
        match reason {
            "no_anchors" => self.unmapped_no_anchors.inc(),
            "no_chain" => self.unmapped_no_chain.inc(),
            _ => self.unmapped_no_candidates.inc(),
        }
    }

    /// Sum of the partitioned unmapped counters.
    pub fn reads_unmapped(&self) -> u64 {
        self.unmapped_no_anchors.get()
            + self.unmapped_no_chain.get()
            + self.unmapped_no_candidates.get()
    }

    /// Record `n` bases entering the pipeline as one task.
    pub fn task_in(&self, bases: usize) {
        self.tasks_generated.inc();
        self.task_bases.add(bases as u64);
        self.max_task_bases.set_max(bases as u64);
        let now = self.inflight_bases.add(bases as u64);
        self.max_inflight_bases.set_max(now);
        let tasks = self.inflight_tasks.add(1);
        self.max_inflight_tasks.set_max(tasks);
    }

    /// Record a task leaving the pipeline (its sequences are dropped).
    pub fn task_out(&self, bases: usize) {
        self.inflight_bases.sub(bases as u64);
        self.inflight_tasks.sub(1);
    }

    /// Record one dispatched batch.
    pub fn batch_dispatched(&self, tasks: usize, bases: usize) {
        self.batches.inc();
        self.batch_tasks.add(tasks as u64);
        self.batch_bases.add(bases as u64);
        self.max_batch_bases.set_max(bases as u64);
        self.batch_size_bases.record(bases as u64);
    }

    /// Add busy time to a stage counter.
    pub fn add_ns(counter: &Counter, d: Duration) {
        counter.add(d.as_nanos() as u64);
    }

    /// Router decision counter for backend `name`, registered on first
    /// use (rendered as `genasm_router_batches_total{backend="…"}`).
    pub fn router_batch(&self, name: &str) -> Arc<Counter> {
        let mut map = self.router_batches.lock().expect("router batch mutex");
        map.entry(name.to_string())
            .or_insert_with(|| {
                self.registry
                    .labeled_counter("router_batches", "backend", name)
            })
            .clone()
    }

    fn backend_snapshots(&self) -> Vec<BackendMetrics> {
        let map = self.backend_lats.lock().expect("backend lat mutex");
        map.iter()
            .map(|(name, lat)| BackendMetrics {
                name: name.clone(),
                batches: lat.batches.get(),
                tasks: lat.tasks.get(),
                bases: lat.bases.get(),
                queue_wait: lat.queue_wait_ns.snapshot(),
                execute: lat.execute_ns.snapshot(),
            })
            .collect()
    }

    fn router_snapshots(&self) -> Vec<(String, u64)> {
        let map = self.router_batches.lock().expect("router batch mutex");
        map.iter().map(|(n, c)| (n.clone(), c.get())).collect()
    }
}

/// The decision funnel at snapshot time: how many reads reached each
/// candidate stage and how every finished read was disposed of. At
/// rest, `reads_in == aligned + unmapped_total() + failed` (the
/// per-read accounting invariant the tests assert); mid-run a read
/// counted in `reads_in` may not yet be disposed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunnelCounts {
    /// Reads consumed from the input stream.
    pub reads_in: u64,
    /// Reads with at least one merged anchor.
    pub anchored: u64,
    /// Reads with at least one chain.
    pub chained: u64,
    /// Reads with at least one candidate task (`reads_mapped`).
    pub candidates: u64,
    /// Reads that finished with at least one output record.
    pub aligned: u64,
    /// Aligned reads where at least one accepted candidate needed the
    /// engine's full-budget rescue (a subset of `aligned`).
    pub rescued: u64,
    /// Reads that finished with no record because alignment failed.
    pub failed: u64,
    /// Unmapped reads whose anchor stage came up empty.
    pub unmapped_no_anchors: u64,
    /// Unmapped reads that anchored but produced no chain.
    pub unmapped_no_chain: u64,
    /// Unmapped reads that chained but emitted no candidate task.
    pub unmapped_no_candidates: u64,
}

impl FunnelCounts {
    /// Total unmapped reads across the partitioned reasons.
    pub fn unmapped_total(&self) -> u64 {
        self.unmapped_no_anchors + self.unmapped_no_chain + self.unmapped_no_candidates
    }

    /// Reads with a terminal disposition so far
    /// (`aligned + unmapped + failed`); equals `reads_in` at rest.
    pub fn accounted(&self) -> u64 {
        self.aligned + self.unmapped_total() + self.failed
    }

    /// Snapshot the funnel counters out of live [`StageCounters`].
    pub fn from_counters(c: &StageCounters) -> FunnelCounts {
        FunnelCounts {
            reads_in: c.reads_in.get(),
            anchored: c.reads_anchored.get(),
            chained: c.reads_chained.get(),
            candidates: c.reads_mapped.get(),
            aligned: c.reads_aligned.get(),
            rescued: c.reads_rescued.get(),
            failed: c.reads_failed.get(),
            unmapped_no_anchors: c.unmapped_no_anchors.get(),
            unmapped_no_chain: c.unmapped_no_chain.get(),
            unmapped_no_candidates: c.unmapped_no_candidates.get(),
        }
    }

    /// Compact JSON object (shared by `--metrics json`, `STATS JSON`,
    /// and the `# stat-frame` stream).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"reads_in\":{},\"anchored\":{},\"chained\":{},\"candidates\":{},\
             \"aligned\":{},\"rescued\":{},\"failed\":{},\
             \"unmapped\":{{\"no_anchors\":{},\"no_chain\":{},\"no_candidates\":{}}}}}",
            self.reads_in,
            self.anchored,
            self.chained,
            self.candidates,
            self.aligned,
            self.rescued,
            self.failed,
            self.unmapped_no_anchors,
            self.unmapped_no_chain,
            self.unmapped_no_candidates
        )
    }
}

/// Telemetry for one bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueMetrics {
    /// Configured weight capacity.
    pub capacity: usize,
    /// Items ever pushed.
    pub pushed: u64,
    /// Highest resident weight observed.
    pub high_water: u64,
}

/// Latency snapshot for one backend (name-sorted in
/// [`PipelineMetrics::backends`]).
#[derive(Debug, Clone)]
pub struct BackendMetrics {
    /// Backend name (e.g. `cpu`, `gpu-sim`).
    pub name: String,
    /// Batches executed.
    pub batches: u64,
    /// Tasks across those batches.
    pub tasks: u64,
    /// Bases across those batches.
    pub bases: u64,
    /// Dispatch → pickup wait per batch, nanoseconds.
    pub queue_wait: HistogramSnapshot,
    /// `align_batch` time per batch, nanoseconds.
    pub execute: HistogramSnapshot,
}

/// Immutable snapshot of a pipeline run: a thin view over the metric
/// registry plus run-scoped context (queues, shards, engine stats,
/// wall clock). Taken at run end by `run_pipeline`, or live at any
/// moment by [`crate::PipelineService::metrics`].
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Reads consumed from the input stream.
    pub reads_in: u64,
    /// Reads that produced at least one candidate task.
    pub reads_mapped: u64,
    /// The decision funnel: stage-survival counts and per-reason
    /// disposition of every finished read.
    pub funnel: FunnelCounts,
    /// Ring of the slowest completed reads, slowest first.
    pub slow_reads: Vec<SlowRead>,
    /// Candidate tasks generated by the mapper stage.
    pub tasks_generated: u64,
    /// Total bases (query + target) across generated tasks.
    pub task_bases: u64,
    /// Total query bases (the throughput denominator).
    pub query_bases: u64,
    /// Largest single task, in bases.
    pub max_task_bases: u64,
    /// Batches dispatched to the backend.
    pub batches: u64,
    /// Tasks across all dispatched batches.
    pub batch_tasks: u64,
    /// Bases across all dispatched batches.
    pub batch_bases: u64,
    /// Largest dispatched batch, in bases.
    pub max_batch_bases: u64,
    /// Power-of-two histogram of batch sizes in bases: entry `i`
    /// counts batches in `[2^(i-1), 2^i)` (entry 0 counts empty).
    pub batch_size_hist: Vec<u64>,
    /// Records emitted by the sink.
    pub records_out: u64,
    /// Bytes buffered in session output channels right now (service
    /// only; the one-shot pipeline writes straight to its sink).
    pub session_output_buffered_bytes: u64,
    /// Peak bytes buffered in any moment across session output
    /// channels (service only).
    pub max_session_output_buffered_bytes: u64,
    /// Times a session's `submit` blocked on one of its per-session
    /// caps (in-flight reads/bases or, under the throttle overflow
    /// policy, buffered output bytes).
    pub sessions_throttled: u64,
    /// Sessions aborted by the serving layer's idle timeout.
    pub sessions_timed_out: u64,
    /// Peak bases resident in the pipeline at once.
    pub max_inflight_bases: u64,
    /// Peak tasks resident in the pipeline at once.
    pub max_inflight_tasks: u64,
    /// Sharded-index telemetry: per-shard span/busy-time/anchor
    /// counts, plus how many duplicate anchors the overlap merge
    /// removed (see [`mapper::ShardedIndex`]).
    pub shard_index: ShardIndexMetrics,
    /// Busy time of the read/map stage.
    pub mapper_busy: Duration,
    /// Busy time of the batch scheduler stage.
    pub scheduler_busy: Duration,
    /// Busy time inside backend `align_batch` calls.
    pub backend_busy: Duration,
    /// Busy time of the reorder/format sink stage.
    pub sink_busy: Duration,
    /// End-to-end wall clock of the run.
    pub wall: Duration,
    /// Task queue telemetry (weighted in bases).
    pub task_queue: QueueMetrics,
    /// Batch queue telemetry (weighted per batch).
    pub batch_queue: QueueMetrics,
    /// Result queue telemetry (weighted per batch).
    pub result_queue: QueueMetrics,
    /// Alignment-engine instrumentation drained from the backend after
    /// the run (`None` for backends that collect none, e.g. the
    /// baselines): window counts, DP traffic, and the error-band
    /// counters (`band_cells_skipped`, `windows_early_terminated`,
    /// `windows_rescued`, `peak_band_rows`).
    pub engine: Option<genasm_core::MemStats>,
    /// Per-read end-to-end latency (submit → last record emitted), ns.
    pub read_latency: HistogramSnapshot,
    /// Task wait between mapper push and scheduler pop, ns.
    pub task_queue_wait: HistogramSnapshot,
    /// Batch build time (first task in → dispatch), ns.
    pub batch_build: HistogramSnapshot,
    /// Result wait between backend completion and sink pickup, ns.
    pub reorder_wait: HistogramSnapshot,
    /// Per-backend batch counts and latency histograms, name-sorted.
    pub backends: Vec<BackendMetrics>,
    /// Adaptive-router decisions: batches assigned per backend,
    /// name-sorted. Empty unless a session ran with `--backend auto`.
    pub router_batches: Vec<(String, u64)>,
    /// Router picks made by the exploration floor rather than the
    /// cost model (a subset of the total routed batches).
    pub router_explored: u64,
    /// Raw registry snapshot backing the fields above (the source for
    /// [`PipelineMetrics::to_prometheus`] and `le_monotonic`).
    pub registry: Snapshot,
}

impl PipelineMetrics {
    /// Fraction of wall-clock the backend stage was busy, in `[0, 1]`.
    pub fn backend_utilization(&self) -> f64 {
        if self.wall.as_nanos() == 0 {
            return 0.0;
        }
        (self.backend_busy.as_secs_f64() / self.wall.as_secs_f64()).min(1.0)
    }

    /// Mean bases per dispatched batch.
    pub fn mean_batch_bases(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batch_bases as f64 / self.batches as f64
    }

    /// End-to-end aligned query bases per second.
    pub fn query_bases_per_sec(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.query_bases as f64 / self.wall.as_secs_f64()
    }

    /// Check that `self` could be an earlier snapshot of the same
    /// live pipeline as `later`: every counter and histogram field in
    /// the registry is `≤` its counterpart, and the engine window
    /// counter has not gone backwards. Returns the first offending
    /// metric on failure. See the module docs for what mid-run
    /// snapshots do and do not guarantee.
    pub fn le_monotonic(&self, later: &PipelineMetrics) -> Result<(), String> {
        self.registry.monotonic_le(&later.registry)?;
        let (a, b) = match (&self.engine, &later.engine) {
            (Some(a), Some(b)) => (a, b),
            _ => return Ok(()),
        };
        if a.windows > b.windows {
            return Err(format!(
                "engine.windows went backwards ({} > {})",
                a.windows, b.windows
            ));
        }
        Ok(())
    }

    /// Multi-line human-readable summary (CLI `--metrics` output).
    pub fn summary(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        let _ = writeln!(
            s,
            "pipeline: {} reads in ({} mapped), {} tasks, {} records out",
            self.reads_in, self.reads_mapped, self.tasks_generated, self.records_out
        );
        let f = &self.funnel;
        let _ = writeln!(
            s,
            "funnel:   in={} anchored={} chained={} candidates={} aligned={} (rescued {}) \
             unmapped={} (no_anchors {}, no_chain {}, no_candidates {}) failed={}",
            f.reads_in,
            f.anchored,
            f.chained,
            f.candidates,
            f.aligned,
            f.rescued,
            f.unmapped_total(),
            f.unmapped_no_anchors,
            f.unmapped_no_chain,
            f.unmapped_no_candidates,
            f.failed
        );
        let _ = writeln!(
            s,
            "batches:  {} dispatched, mean {:.0} bases, max {} bases",
            self.batches,
            self.mean_batch_bases(),
            self.max_batch_bases
        );
        let _ = writeln!(
            s,
            "queues:   task {}/{} bases, batch {}/{}, result {}/{} (high-water/capacity)",
            self.task_queue.high_water,
            self.task_queue.capacity,
            self.batch_queue.high_water,
            self.batch_queue.capacity,
            self.result_queue.high_water,
            self.result_queue.capacity
        );
        let _ = writeln!(
            s,
            "memory:   peak {} tasks / {} bases in flight",
            self.max_inflight_tasks, self.max_inflight_bases
        );
        if self.read_latency.count > 0 {
            let fmt = |ns: u64| format!("{:.1?}", Duration::from_nanos(ns));
            let _ = writeln!(
                s,
                "latency:  read p50 {} / p90 {} / p99 {}, task-queue p99 {}, reorder p99 {}",
                fmt(self.read_latency.p50()),
                fmt(self.read_latency.p90()),
                fmt(self.read_latency.p99()),
                fmt(self.task_queue_wait.p99()),
                fmt(self.reorder_wait.p99()),
            );
        }
        for b in &self.backends {
            let fmt = |ns: u64| format!("{:.1?}", Duration::from_nanos(ns));
            let _ = writeln!(
                s,
                "backend:  {} {} batches / {} tasks, queue-wait p50 {} / p99 {}, execute p50 {} / p99 {}",
                b.name,
                b.batches,
                b.tasks,
                fmt(b.queue_wait.p50()),
                fmt(b.queue_wait.p99()),
                fmt(b.execute.p50()),
                fmt(b.execute.p99()),
            );
        }
        if !self.router_batches.is_empty() {
            let picks: Vec<String> = self
                .router_batches
                .iter()
                .map(|(name, n)| format!("{name} {n}"))
                .collect();
            let _ = writeln!(
                s,
                "router:   {} batches routed [{}], {} explored",
                self.router_batches.iter().map(|(_, n)| n).sum::<u64>(),
                picks.join(", "),
                self.router_explored
            );
        }
        if let Some(e) = &self.engine {
            let _ = writeln!(
                s,
                "band:     {} windows ({} early-terminated, {} rescued), \
                 {} cells skipped, peak band {} rows",
                e.windows,
                e.windows_early_terminated,
                e.windows_rescued,
                e.band_cells_skipped,
                e.peak_band_rows
            );
        }
        let shard_busy: Vec<String> = self
            .shard_index
            .shards
            .iter()
            .map(|sm| format!("{:.1?}", sm.busy))
            .collect();
        let _ = writeln!(
            s,
            "shards:   {} over {} contig(s) (overlap {} bases, {} resident ref bytes), \
             busy [{}], {} duplicate anchors merged",
            self.shard_index.shards.len(),
            self.shard_index.contigs,
            self.shard_index.overlap,
            self.shard_index.reference_bytes,
            shard_busy.join(" "),
            self.shard_index.dup_anchors_merged
        );
        let _ = writeln!(
            s,
            "busy:     map {:.1?}, schedule {:.1?}, backend {:.1?} ({:.0}% util), sink {:.1?}, wall {:.1?}",
            self.mapper_busy,
            self.scheduler_busy,
            self.backend_busy,
            100.0 * self.backend_utilization(),
            self.sink_busy,
            self.wall
        );
        let _ = writeln!(
            s,
            "rate:     {:.0} query bases/s end-to-end",
            self.query_bases_per_sec()
        );
        s
    }

    /// Single-line machine-readable JSON — a superset of
    /// [`PipelineMetrics::summary`] (CLI `--metrics json`, server
    /// `STATS JSON`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema\":\"genasm-pipeline-metrics/v1\",\
             \"reads_in\":{},\"reads_mapped\":{},\"tasks_generated\":{},\
             \"task_bases\":{},\"query_bases\":{},\"max_task_bases\":{},\
             \"batches\":{},\"batch_tasks\":{},\"batch_bases\":{},\
             \"max_batch_bases\":{},\"records_out\":{},\
             \"max_inflight_bases\":{},\"max_inflight_tasks\":{},\
             \"wall_ns\":{},\
             \"query_bases_per_sec\":{},\"backend_utilization\":{}",
            self.reads_in,
            self.reads_mapped,
            self.tasks_generated,
            self.task_bases,
            self.query_bases,
            self.max_task_bases,
            self.batches,
            self.batch_tasks,
            self.batch_bases,
            self.max_batch_bases,
            self.records_out,
            self.max_inflight_bases,
            self.max_inflight_tasks,
            self.wall.as_nanos(),
            genasm_telemetry::json::number(self.query_bases_per_sec()),
            genasm_telemetry::json::number(self.backend_utilization()),
        );
        let _ = write!(s, ",\"funnel\":{}", self.funnel.to_json());
        s.push_str(",\"slow_reads\":[");
        for (i, e) in self.slow_reads.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"read\":\"{}\",\"latency_ns\":{},\"disposition\":\"{}\"}}",
                genasm_telemetry::json::escape(&e.name),
                e.latency_ns,
                genasm_telemetry::json::escape(&e.disposition)
            );
        }
        s.push(']');
        let _ = write!(
            s,
            ",\"busy_ns\":{{\"mapper\":{},\"scheduler\":{},\"backend\":{},\"sink\":{}}}",
            self.mapper_busy.as_nanos(),
            self.scheduler_busy.as_nanos(),
            self.backend_busy.as_nanos(),
            self.sink_busy.as_nanos()
        );
        let queue = |q: &QueueMetrics| {
            format!(
                "{{\"capacity\":{},\"pushed\":{},\"high_water\":{}}}",
                q.capacity, q.pushed, q.high_water
            )
        };
        let _ = write!(
            s,
            ",\"queues\":{{\"task\":{},\"batch\":{},\"result\":{}}}",
            queue(&self.task_queue),
            queue(&self.batch_queue),
            queue(&self.result_queue)
        );
        let _ = write!(
            s,
            ",\"shards\":{{\"count\":{},\"contigs\":{},\"overlap\":{},\
             \"reference_bytes\":{},\"dup_anchors_merged\":{}}}",
            self.shard_index.shards.len(),
            self.shard_index.contigs,
            self.shard_index.overlap,
            self.shard_index.reference_bytes,
            self.shard_index.dup_anchors_merged
        );
        match &self.engine {
            Some(e) => {
                let _ = write!(s, ",\"engine\":{}", e.to_json());
            }
            None => s.push_str(",\"engine\":null"),
        }
        let _ = write!(
            s,
            ",\"latency\":{{\"read\":{},\"task_queue_wait\":{},\
             \"batch_build\":{},\"reorder_wait\":{},\"batch_size_bases\":{}}}",
            self.read_latency.to_json(),
            self.task_queue_wait.to_json(),
            self.batch_build.to_json(),
            self.reorder_wait.to_json(),
            self.batch_size_snapshot().to_json(),
        );
        s.push_str(",\"backends\":{");
        for (i, b) in self.backends.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"batches\":{},\"tasks\":{},\"bases\":{},\"queue_wait\":{},\"execute\":{}}}",
                genasm_telemetry::json::escape(&b.name),
                b.batches,
                b.tasks,
                b.bases,
                b.queue_wait.to_json(),
                b.execute.to_json()
            );
        }
        s.push('}');
        let _ = write!(s, ",\"router\":{{\"explored\":{},", self.router_explored);
        s.push_str("\"batches\":{");
        for (i, (name, n)) in self.router_batches.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", genasm_telemetry::json::escape(name), n);
        }
        s.push_str("}}}");
        s
    }

    /// Prometheus text exposition: every registry metric under the
    /// `genasm_` prefix, plus run-scoped context (queues, shards,
    /// engine counters, wall clock) rendered as gauges/counters.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        fn line(out: &mut String, name: &str, kind: &str, v: u64) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {v}");
        }
        let mut out = self.registry.to_prometheus("genasm_");
        line(
            &mut out,
            "genasm_wall_ns",
            "counter",
            self.wall.as_nanos() as u64,
        );
        for (q, qname) in [
            (&self.task_queue, "task"),
            (&self.batch_queue, "batch"),
            (&self.result_queue, "result"),
        ] {
            let _ = writeln!(out, "# TYPE genasm_queue_high_water gauge");
            let _ = writeln!(
                out,
                "genasm_queue_high_water{{queue=\"{qname}\"}} {}",
                q.high_water
            );
            let _ = writeln!(out, "# TYPE genasm_queue_capacity gauge");
            let _ = writeln!(
                out,
                "genasm_queue_capacity{{queue=\"{qname}\"}} {}",
                q.capacity
            );
        }
        line(
            &mut out,
            "genasm_shards",
            "gauge",
            self.shard_index.shards.len() as u64,
        );
        if let Some(e) = &self.engine {
            line(
                &mut out,
                "genasm_engine_windows_total",
                "counter",
                e.windows,
            );
            line(
                &mut out,
                "genasm_engine_windows_early_terminated_total",
                "counter",
                e.windows_early_terminated,
            );
            line(
                &mut out,
                "genasm_engine_windows_rescued_total",
                "counter",
                e.windows_rescued,
            );
            line(
                &mut out,
                "genasm_engine_band_cells_skipped_total",
                "counter",
                e.band_cells_skipped,
            );
            line(
                &mut out,
                "genasm_engine_peak_band_rows",
                "gauge",
                e.peak_band_rows,
            );
        }
        out
    }

    /// The batch-size histogram as a [`HistogramSnapshot`] (full
    /// 64-bucket resolution, unlike the legacy 32-bucket
    /// `batch_size_hist` view).
    fn batch_size_snapshot(&self) -> HistogramSnapshot {
        match self.registry.get("batch_size_bases") {
            Some(genasm_telemetry::MetricValue::Histogram(h)) => h.clone(),
            _ => HistogramSnapshot::default(),
        }
    }

    pub(crate) fn snapshot(
        c: &StageCounters,
        wall: Duration,
        shard_index: ShardIndexMetrics,
        task_queue: QueueMetrics,
        batch_queue: QueueMetrics,
        result_queue: QueueMetrics,
        engine: Option<genasm_core::MemStats>,
    ) -> PipelineMetrics {
        // Fold the 64-bucket histogram into the legacy 32-bucket view
        // (same bucket boundaries; the last legacy bucket absorbs the
        // tail, exactly as the old fixed array did).
        let batch_snapshot = c.batch_size_bases.snapshot();
        let mut batch_size_hist = vec![0u64; HIST_BUCKETS];
        for (i, &n) in batch_snapshot.buckets.iter().enumerate().take(BUCKETS) {
            batch_size_hist[i.min(HIST_BUCKETS - 1)] += n;
        }
        PipelineMetrics {
            reads_in: c.reads_in.get(),
            reads_mapped: c.reads_mapped.get(),
            funnel: FunnelCounts::from_counters(c),
            slow_reads: c.slow_reads.snapshot(),
            tasks_generated: c.tasks_generated.get(),
            task_bases: c.task_bases.get(),
            query_bases: c.query_bases.get(),
            max_task_bases: c.max_task_bases.get(),
            batches: c.batches.get(),
            batch_tasks: c.batch_tasks.get(),
            batch_bases: c.batch_bases.get(),
            max_batch_bases: c.max_batch_bases.get(),
            batch_size_hist,
            records_out: c.records_out.get(),
            session_output_buffered_bytes: c.session_output_buffered.get(),
            max_session_output_buffered_bytes: c.max_session_output_buffered.get(),
            sessions_throttled: c.sessions_throttled.get(),
            sessions_timed_out: c.sessions_timed_out.get(),
            max_inflight_bases: c.max_inflight_bases.get(),
            max_inflight_tasks: c.max_inflight_tasks.get(),
            shard_index,
            mapper_busy: Duration::from_nanos(c.mapper_ns.get()),
            scheduler_busy: Duration::from_nanos(c.scheduler_ns.get()),
            backend_busy: Duration::from_nanos(c.backend_ns.get()),
            sink_busy: Duration::from_nanos(c.sink_ns.get()),
            wall,
            task_queue,
            batch_queue,
            result_queue,
            engine,
            read_latency: c.read_latency_ns.snapshot(),
            task_queue_wait: c.task_queue_wait_ns.snapshot(),
            batch_build: c.batch_build_ns.snapshot(),
            reorder_wait: c.reorder_wait_ns.snapshot(),
            backends: c.backend_snapshots(),
            router_batches: c.router_snapshots(),
            router_explored: c.router_explored.get(),
            registry: c.registry.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_shards() -> ShardIndexMetrics {
        ShardIndexMetrics {
            shards: Vec::new(),
            contigs: 0,
            dup_anchors_merged: 0,
            overlap: 0,
            reference_bytes: 0,
        }
    }

    fn q1() -> QueueMetrics {
        QueueMetrics {
            capacity: 1,
            pushed: 0,
            high_water: 0,
        }
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let c = StageCounters::default();
        c.batch_dispatched(1, 0); // bucket 0
        c.batch_dispatched(1, 1); // 2^0 -> bucket 1
        c.batch_dispatched(1, 2); // bucket 2
        c.batch_dispatched(1, 3); // bucket 2
        c.batch_dispatched(4, 4096); // bucket 13
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        assert_eq!(m.batch_size_hist[0], 1);
        assert_eq!(m.batch_size_hist[1], 1);
        assert_eq!(m.batch_size_hist[2], 2);
        assert_eq!(m.batch_size_hist[13], 1);
        assert_eq!(m.batches, 5);
        assert_eq!(m.max_batch_bases, 4096);
        assert!((m.mean_batch_bases() - 4102.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn inflight_peaks_track_residency() {
        let c = StageCounters::default();
        c.task_in(100);
        c.task_in(50);
        c.task_out(100);
        c.task_in(10);
        assert_eq!(c.max_inflight_bases.get(), 150);
        assert_eq!(c.max_inflight_tasks.get(), 2);
        assert_eq!(c.inflight_bases.get(), 60);
    }

    #[test]
    fn utilization_is_clamped() {
        let c = StageCounters::default();
        StageCounters::add_ns(&c.backend_ns, Duration::from_secs(10));
        let q = q1();
        let m = PipelineMetrics::snapshot(&c, Duration::from_secs(2), no_shards(), q, q, q, None);
        assert_eq!(m.backend_utilization(), 1.0);
        assert!(!m.summary().is_empty());
        // Without engine stats the band line is absent entirely.
        assert!(!m.summary().contains("band:"), "{}", m.summary());
    }

    #[test]
    fn summary_renders_band_counters_when_present() {
        let c = StageCounters::default();
        let q = q1();
        let engine = genasm_core::MemStats {
            windows: 10,
            windows_early_terminated: 7,
            windows_rescued: 1,
            band_cells_skipped: 1234,
            peak_band_rows: 65,
            ..genasm_core::MemStats::default()
        };
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q,
            q,
            q,
            Some(engine),
        );
        let s = m.summary();
        assert!(
            s.contains("band:     10 windows (7 early-terminated, 1 rescued)"),
            "{s}"
        );
        assert!(s.contains("1234 cells skipped, peak band 65 rows"), "{s}");
    }

    #[test]
    fn summary_reports_shard_telemetry() {
        let c = StageCounters::default();
        let q = q1();
        let shard_index = ShardIndexMetrics {
            shards: vec![
                mapper::ShardMetrics {
                    contig: 0,
                    start: 0,
                    end: 600,
                    busy: Duration::from_millis(3),
                    anchors: 11,
                },
                mapper::ShardMetrics {
                    contig: 0,
                    start: 500,
                    end: 1_000,
                    busy: Duration::from_millis(2),
                    anchors: 7,
                },
            ],
            contigs: 1,
            dup_anchors_merged: 4,
            overlap: 100,
            reference_bytes: 250,
        };
        let m = PipelineMetrics::snapshot(&c, Duration::from_secs(1), shard_index, q, q, q, None);
        let s = m.summary();
        assert!(
            s.contains("shards:   2 over 1 contig(s) (overlap 100 bases, 250 resident ref bytes)"),
            "{s}"
        );
        assert!(s.contains("4 duplicate anchors merged"), "{s}");
        assert_eq!(m.shard_index.shards.len(), 2);
    }

    #[test]
    fn summary_and_json_render_latency_and_backends() {
        let c = StageCounters::default();
        c.read_latency_ns.record(1_000_000);
        c.task_queue_wait_ns.record(10_000);
        c.reorder_wait_ns.record(20_000);
        let lat = c.backend_lat("cpu");
        lat.batches.inc();
        lat.tasks.add(8);
        lat.queue_wait_ns.record(5_000);
        lat.execute_ns.record(2_000_000);
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        let s = m.summary();
        assert!(s.contains("latency:  read p50"), "{s}");
        assert!(s.contains("backend:  cpu 1 batches / 8 tasks"), "{s}");
        let j = m.to_json();
        assert!(
            j.starts_with("{\"schema\":\"genasm-pipeline-metrics/v1\""),
            "{j}"
        );
        assert!(
            j.contains("\"backends\":{\"cpu\":{\"batches\":1,\"tasks\":8"),
            "{j}"
        );
        assert!(j.contains("\"engine\":null"), "{j}");
        assert!(j.contains("\"latency\":{\"read\":{\"count\":1"), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }

    #[test]
    fn router_counters_render_in_summary_json_and_prometheus() {
        let c = StageCounters::default();
        // No routed batches: the summary line is absent, the JSON
        // block renders empty.
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        assert!(!m.summary().contains("router:"), "{}", m.summary());
        assert!(
            m.to_json()
                .contains("\"router\":{\"explored\":0,\"batches\":{}}"),
            "{}",
            m.to_json()
        );
        c.router_batch("cpu").add(3);
        c.router_batch("gpu-sim").add(5);
        c.router_explored.add(2);
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        let s = m.summary();
        assert!(
            s.contains("router:   8 batches routed [cpu 3, gpu-sim 5], 2 explored"),
            "{s}"
        );
        let j = m.to_json();
        assert!(
            j.contains("\"router\":{\"explored\":2,\"batches\":{\"cpu\":3,\"gpu-sim\":5}}"),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        let p = m.to_prometheus();
        assert!(
            p.contains("genasm_router_batches_total{backend=\"cpu\"} 3"),
            "{p}"
        );
        assert!(
            p.contains("genasm_router_batches_total{backend=\"gpu-sim\"} 5"),
            "{p}"
        );
        assert!(p.contains("genasm_router_explored_total 2"), "{p}");
    }

    #[test]
    fn prometheus_exposition_covers_registry_and_context() {
        let c = StageCounters::default();
        c.reads_in.add(3);
        c.backend_lat("cpu").execute_ns.record(100);
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            Some(genasm_core::MemStats {
                windows: 2,
                ..genasm_core::MemStats::default()
            }),
        );
        let p = m.to_prometheus();
        assert!(p.contains("genasm_reads_in_total 3"), "{p}");
        assert!(
            p.contains("genasm_backend_execute_ns_count{backend=\"cpu\"} 1"),
            "{p}"
        );
        assert!(
            p.contains("genasm_queue_high_water{queue=\"task\"} 0"),
            "{p}"
        );
        assert!(p.contains("genasm_engine_windows_total 2"), "{p}");
    }

    #[test]
    fn funnel_counts_render_in_summary_json_and_prometheus() {
        let c = StageCounters::default();
        // Three reads: mapped+aligned (rescued), unmapped(no_chain),
        // mapped+failed.
        c.reads_in.add(3);
        assert_eq!(
            c.note_funnel(&ReadMapStats {
                anchors: 4,
                chains: 2,
                candidates: 2,
            }),
            None
        );
        c.reads_aligned.inc();
        c.reads_rescued.inc();
        c.tasks_rescued.inc();
        assert_eq!(
            c.note_funnel(&ReadMapStats {
                anchors: 1,
                chains: 0,
                candidates: 0,
            }),
            Some("no_chain")
        );
        assert_eq!(
            c.note_funnel(&ReadMapStats {
                anchors: 2,
                chains: 1,
                candidates: 1,
            }),
            None
        );
        c.reads_failed.inc();
        c.slow_reads.observe("slow\"one", 9_999, "aligned");
        assert_eq!(c.reads_unmapped(), 1);
        let m = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        let f = &m.funnel;
        assert_eq!(f.reads_in, 3);
        assert_eq!(f.anchored, 3);
        assert_eq!(f.chained, 2);
        assert_eq!(f.candidates, 2);
        assert_eq!(f.aligned, 1);
        assert_eq!(f.rescued, 1);
        assert_eq!(f.failed, 1);
        assert_eq!(f.unmapped_total(), 1);
        assert_eq!(f.accounted(), f.reads_in);
        let s = m.summary();
        assert!(
            s.contains(
                "funnel:   in=3 anchored=3 chained=2 candidates=2 aligned=1 (rescued 1) \
                 unmapped=1 (no_anchors 0, no_chain 1, no_candidates 0) failed=1"
            ),
            "{s}"
        );
        let j = m.to_json();
        assert!(
            j.contains("\"funnel\":{\"reads_in\":3,\"anchored\":3,\"chained\":2"),
            "{j}"
        );
        assert!(
            j.contains("\"unmapped\":{\"no_anchors\":0,\"no_chain\":1,\"no_candidates\":0}"),
            "{j}"
        );
        assert!(
            j.contains("\"slow_reads\":[{\"read\":\"slow\\\"one\",\"latency_ns\":9999"),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        let p = m.to_prometheus();
        assert!(
            p.contains("genasm_reads_unmapped_total{reason=\"no_chain\"} 1"),
            "{p}"
        );
        assert!(p.contains("genasm_reads_aligned_total 1"), "{p}");
        assert!(p.contains("genasm_tasks_rescued_total 1"), "{p}");
    }

    #[test]
    fn snapshots_are_monotonic_under_progress() {
        let c = StageCounters::default();
        c.task_in(10);
        c.read_latency_ns.record(100);
        let a = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(1),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        c.task_in(20);
        c.read_latency_ns.record(300);
        c.records_out.inc();
        let b = PipelineMetrics::snapshot(
            &c,
            Duration::from_secs(2),
            no_shards(),
            q1(),
            q1(),
            q1(),
            None,
        );
        assert!(a.le_monotonic(&b).is_ok());
        let err = b.le_monotonic(&a).unwrap_err();
        assert!(!err.is_empty());
    }
}
