//! The batch scheduler: coalesces tasks into size-targeted batches.
//!
//! Batches are sized by **total aligned bases** (query + target), not
//! task count — alignment cost scales with bases, so base-targeted
//! batches keep backend launches evenly loaded whether the input is
//! many short candidates or few long ones. A batch is flushed as soon
//! as it reaches the target; a single task larger than the target
//! travels as a batch of one. Task order is preserved: batch `n`
//! contains a contiguous run of tasks, and concatenating batches
//! `0..n` reconstructs the input stream exactly.

use std::time::Instant;

use align_core::AlignTask;

/// Metadata carried alongside each task so the sink can reassemble
/// per-read output without holding whole reads.
#[derive(Debug, Clone)]
pub struct TaskMeta {
    /// 0-based index of the read in the input stream. In the
    /// long-lived service this is the *global* submission order across
    /// sessions (each session's reads keep their relative order).
    pub read_seq: u64,
    /// Owning session for output routing (0 for the one-shot
    /// pipeline, which has a single implicit session).
    pub session: u64,
    /// Read name (shared across the read's tasks).
    pub qname: std::sync::Arc<str>,
    /// Read length in bases.
    pub qlen: usize,
    /// How many candidate tasks this read generated in total.
    pub read_tasks: u32,
    /// Name of the contig the task's window was cut from (shared with
    /// the index's contig table).
    pub tname: std::sync::Arc<str>,
    /// Length of that contig in bases (PAF column 7).
    pub tsize: usize,
    /// Window start on its contig (contig-local coordinates).
    pub tstart: usize,
    /// Window length on the contig.
    pub tlen: usize,
    /// Strand the task's query was oriented to (for PAF output).
    pub reverse: bool,
    /// Banding hint the task was dispatched with
    /// ([`align_core::AlignTask::max_edits`]); an accepted alignment
    /// whose edit distance exceeds it was produced by the engine's
    /// full-budget rescue.
    pub max_edits: Option<u32>,
    /// Funnel counts captured at candidate generation, shared across
    /// the read's tasks (the sink's half of the `--explain` record).
    pub provenance: std::sync::Arc<crate::explain::ReadProvenance>,
    /// When the owning read entered the pipeline (read-latency
    /// telemetry origin; identical across a read's tasks).
    pub submitted_at: Instant,
    /// When this task was pushed onto the task queue (task-queue-wait
    /// telemetry origin).
    pub enqueued_at: Instant,
}

/// A scheduled batch: a contiguous run of tasks plus their metadata.
#[derive(Debug)]
pub struct Batch {
    /// Scheduler-assigned sequence number (reorder key).
    pub seq: u64,
    /// The alignment tasks, contiguous for backend dispatch.
    pub tasks: Vec<AlignTask>,
    /// `metas[i]` describes `tasks[i]`.
    pub metas: Vec<TaskMeta>,
    /// Total bases across `tasks`.
    pub bases: usize,
    /// When the first task entered the builder (batch-build telemetry).
    pub build_started: Instant,
    /// When the batch was flushed — the scheduler dispatch moment, the
    /// origin for per-backend queue-wait telemetry.
    pub ready_at: Instant,
}

/// Accumulates tasks and emits batches at the base target.
#[derive(Debug)]
pub struct BatchBuilder {
    target_bases: usize,
    next_seq: u64,
    tasks: Vec<AlignTask>,
    metas: Vec<TaskMeta>,
    bases: usize,
    started: Option<Instant>,
}

impl BatchBuilder {
    /// A builder targeting `target_bases` per batch (at least 1).
    pub fn new(target_bases: usize) -> BatchBuilder {
        BatchBuilder {
            target_bases: target_bases.max(1),
            next_seq: 0,
            tasks: Vec::new(),
            metas: Vec::new(),
            bases: 0,
            started: None,
        }
    }

    /// Add one task; returns the finished batch if this push reached
    /// the target.
    pub fn push(&mut self, task: AlignTask, meta: TaskMeta) -> Option<Batch> {
        self.started.get_or_insert_with(Instant::now);
        self.bases += task.bases();
        self.tasks.push(task);
        self.metas.push(meta);
        if self.bases >= self.target_bases {
            self.take()
        } else {
            None
        }
    }

    /// True when nothing is accumulated.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Flush whatever is accumulated (end of stream).
    pub fn take(&mut self) -> Option<Batch> {
        if self.tasks.is_empty() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let now = Instant::now();
        Some(Batch {
            seq,
            tasks: std::mem::take(&mut self.tasks),
            metas: std::mem::take(&mut self.metas),
            bases: std::mem::replace(&mut self.bases, 0),
            build_started: self.started.take().unwrap_or(now),
            ready_at: now,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;
    use std::sync::Arc;

    fn task(n: usize) -> (AlignTask, TaskMeta) {
        let s: Seq = std::iter::repeat_n(align_core::Base::A, n).collect();
        (
            AlignTask::new(0, 0, s.clone(), s),
            TaskMeta {
                read_seq: 0,
                session: 0,
                qname: Arc::from("r"),
                qlen: n,
                read_tasks: 1,
                tname: Arc::from("t"),
                tsize: n,
                tstart: 0,
                tlen: n,
                reverse: false,
                max_edits: None,
                provenance: Arc::new(crate::explain::ReadProvenance::default()),
                submitted_at: Instant::now(),
                enqueued_at: Instant::now(),
            },
        )
    }

    #[test]
    fn flushes_at_base_target() {
        let mut b = BatchBuilder::new(100);
        let (t, m) = task(20); // 40 bases
        assert!(b.push(t, m).is_none());
        let (t, m) = task(20);
        assert!(b.push(t, m).is_none());
        let (t, m) = task(20); // 120 bases total -> flush
        let batch = b.push(t, m).unwrap();
        assert_eq!(batch.seq, 0);
        assert_eq!(batch.tasks.len(), 3);
        assert_eq!(batch.bases, 120);
        assert!(b.take().is_none(), "builder was drained");
    }

    #[test]
    fn oversized_task_is_a_batch_of_one() {
        let mut b = BatchBuilder::new(10);
        let (t, m) = task(500);
        let batch = b.push(t, m).unwrap();
        assert_eq!(batch.tasks.len(), 1);
        assert_eq!(batch.bases, 1000);
    }

    #[test]
    fn sequences_are_consecutive_and_order_preserved() {
        let mut b = BatchBuilder::new(1); // every task its own batch
        let mut seqs = Vec::new();
        for i in 1..=5 {
            let (t, m) = task(i);
            let batch = b.push(t, m).unwrap();
            assert_eq!(batch.tasks[0].query.len(), i);
            seqs.push(batch.seq);
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn trailing_remainder_flushes_on_take() {
        let mut b = BatchBuilder::new(1_000_000);
        let (t, m) = task(10);
        assert!(b.push(t, m).is_none());
        let batch = b.take().unwrap();
        assert_eq!(batch.tasks.len(), 1);
        assert_eq!(batch.seq, 0);
    }
}
