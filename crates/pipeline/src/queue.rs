//! Bounded MPMC queues with weighted capacity and backpressure.
//!
//! Every stage boundary in the pipeline is one of these queues. The
//! capacity is a *weight* budget, not an item count: the task queue
//! weighs items by their total bases so the resident-memory bound is
//! expressed in the same unit the batch scheduler targets, while the
//! batch and result queues use weight 1 per item (plain depth).
//!
//! Backpressure semantics: [`BoundedQueue::push`] blocks while the
//! queue is at capacity, so a slow downstream stage stalls the upstream
//! stage instead of letting it buffer unboundedly. A single oversized
//! item (weight > capacity) is still admitted when the queue is empty
//! — the pipeline must make progress on tasks larger than the
//! configured batch target, it just cannot hold more than one of them.
//!
//! Closing: [`BoundedQueue::close`] wakes all blocked producers and
//! consumers. Consumers drain the remaining items and then see `None`;
//! producers get [`PushError::Closed`] (used to unwind the pipeline on
//! error without deadlocking).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Push failed because the queue was closed (receiver gone or the
/// pipeline is aborting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushError;

/// Outcome of [`BoundedQueue::pop_timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item was dequeued.
    Item(T),
    /// The queue stayed empty (and open) for the whole timeout.
    TimedOut,
    /// The queue is closed and drained.
    Closed,
}

struct State<T> {
    items: VecDeque<(T, usize)>,
    /// Sum of the weights of the queued items.
    used: usize,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Total items ever pushed.
    pushed: AtomicU64,
    /// Highest observed `used` weight (backpressure telemetry).
    high_water: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting up to `capacity` total weight (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                used: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            pushed: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// The weight budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Block until the item fits (or the queue is empty — an oversized
    /// item is admitted alone), then enqueue it.
    pub fn push(&self, item: T, weight: usize) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(PushError);
            }
            if st.used == 0 || st.used + weight <= self.capacity {
                break;
            }
            st = self.not_full.wait(st).unwrap();
        }
        st.used += weight;
        st.items.push_back((item, weight));
        self.pushed.fetch_add(1, Ordering::Relaxed);
        self.high_water.fetch_max(st.used as u64, Ordering::Relaxed);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Like [`BoundedQueue::pop`] but gives up after `timeout` when the
    /// queue is empty and still open. The long-lived service's
    /// scheduler uses this to flush partial batches instead of letting
    /// them linger while traffic is idle.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> PopTimeout<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some((item, weight)) = st.items.pop_front() {
                st.used -= weight;
                drop(st);
                self.not_full.notify_all();
                return PopTimeout::Item(item);
            }
            if st.closed {
                return PopTimeout::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return PopTimeout::TimedOut;
            }
            let (guard, _) = self.not_empty.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Block until an item is available; `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some((item, weight)) = st.items.pop_front() {
                st.used -= weight;
                drop(st);
                self.not_full.notify_all();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Close the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Total items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Highest weight ever resident at once.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_accounting() {
        let q = BoundedQueue::new(100);
        q.push(1, 10).unwrap();
        q.push(2, 10).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.high_water(), 20);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(10);
        q.push(7, 1).unwrap();
        q.close();
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(8, 1), Err(PushError));
    }

    #[test]
    fn oversized_item_admitted_alone() {
        let q = BoundedQueue::new(4);
        q.push("big", 100).unwrap(); // empty queue: admitted
        let q = Arc::new(q);
        let q2 = Arc::clone(&q);
        // A second push must block until the big item is popped.
        let h = std::thread::spawn(move || q2.push("next", 1).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some("big"));
        h.join().unwrap();
        assert_eq!(q.pop(), Some("next"));
    }

    #[test]
    fn backpressure_blocks_producer() {
        let q = Arc::new(BoundedQueue::new(2));
        q.push(0u32, 1).unwrap();
        q.push(1u32, 1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            q2.push(2u32, 1).unwrap(); // blocks until a pop frees space
            q2.high_water()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        let hw = h.join().unwrap();
        assert!(hw <= 2, "capacity was never exceeded, saw {hw}");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.push(9, 1).unwrap();
        assert_eq!(
            q.pop_timeout(std::time::Duration::from_millis(5)),
            PopTimeout::Item(9)
        );
        assert_eq!(
            q.pop_timeout(std::time::Duration::from_millis(5)),
            PopTimeout::TimedOut
        );
        q.close();
        assert_eq!(
            q.pop_timeout(std::time::Duration::from_millis(5)),
            PopTimeout::Closed
        );
    }

    #[test]
    fn pop_timeout_wakes_on_push() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_timeout(std::time::Duration::from_secs(10)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(3, 1).unwrap();
        assert_eq!(h.join().unwrap(), PopTimeout::Item(3));
    }

    #[test]
    fn producers_unblocked_by_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32, 1).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(1u32, 1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PushError));
    }
}
