//! Pluggable alignment backends.
//!
//! The dispatch stage hands each scheduled batch to a [`Backend`]; the
//! trait is the seam where the Rayon CPU batch aligner, the simulated
//! GPU, and the baseline aligners all plug in. Backends are free to
//! parallelize internally (the CPU backend uses one Rayon worker per
//! core with a reused [`genasm_core::AlignWorkspace`] each; the GPU
//! backend launches one block per task), but they must be pure: the
//! alignment of a task depends only on that task, never on batch
//! composition — that is what makes pipeline output independent of
//! batch geometry.

use std::sync::Mutex;

use align_core::{AlignTask, Alignment};
use baselines::{Ksw2Aligner, MyersAligner};
use genasm_core::MemStats;
use genasm_cpu::{align_batch_genasm, align_batch_reusing, CpuBatchAligner};
use genasm_gpu::GpuAligner;
use gpu_sim::Device;

/// A batch alignment engine the dispatch stage can drive.
pub trait Backend: Send + Sync {
    /// Short name used in reports and errors.
    fn name(&self) -> &'static str;

    /// Align every task; entry `i` is the alignment of `tasks[i]` or
    /// `None` when the task exceeded the aligner's edit budget.
    fn align_batch(&self, tasks: &[AlignTask]) -> Result<Vec<Option<Alignment>>, BackendError>;

    /// Engine instrumentation accumulated across every batch this
    /// backend instance has aligned so far (cumulative, like the other
    /// pipeline counters), if the backend collects any, surfaced in
    /// [`crate::PipelineMetrics`]. The one-shot pipeline pulls this
    /// after the dispatch stages join; the resident service may call
    /// it *at any moment of a live run*
    /// ([`crate::PipelineService::metrics`] merges it across
    /// backends), so implementations must be **batch-atomic**: stats
    /// are merged into the accumulator under a lock, once per
    /// completed batch, and a concurrent reader sees either all of a
    /// batch's counts or none of them — never a partial merge. Two
    /// consecutive snapshots are therefore field-by-field monotonic
    /// (including `peak_band_rows`, a max-merged high-water mark,
    /// which is non-decreasing). Backends without GenASM-style
    /// counters (the baselines) return `None`.
    fn engine_stats(&self) -> Option<MemStats> {
        None
    }
}

/// A backend failed in a way that poisons the whole batch.
#[derive(Debug, Clone)]
pub struct BackendError {
    /// Which backend failed.
    pub backend: &'static str,
    /// What went wrong.
    pub reason: String,
}

impl core::fmt::Display for BackendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "backend {}: {}", self.backend, self.reason)
    }
}

impl std::error::Error for BackendError {}

/// The GenASM CPU batch aligner (Rayon, allocation-free hot path).
pub struct CpuBackend {
    aligner: CpuBatchAligner,
    name: &'static str,
    stats: Mutex<MemStats>,
}

impl CpuBackend {
    /// Improved GenASM (the paper's contribution).
    pub fn improved() -> CpuBackend {
        CpuBackend {
            aligner: CpuBatchAligner::improved(),
            name: "cpu",
            stats: Mutex::new(MemStats::new()),
        }
    }

    /// Unimproved GenASM (Senol Cali et al. 2020).
    pub fn baseline() -> CpuBackend {
        CpuBackend {
            aligner: CpuBatchAligner::baseline(),
            name: "cpu-base",
            stats: Mutex::new(MemStats::new()),
        }
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn align_batch(&self, tasks: &[AlignTask]) -> Result<Vec<Option<Alignment>>, BackendError> {
        let res = align_batch_genasm(tasks, &self.aligner.cfg);
        self.stats
            .lock()
            .expect("stats mutex poisoned")
            .merge(&res.stats);
        Ok(res.alignments)
    }

    fn engine_stats(&self) -> Option<MemStats> {
        Some(*self.stats.lock().expect("stats mutex poisoned"))
    }
}

/// The simulated-GPU GenASM kernel (one block per task).
pub struct GpuSimBackend {
    gpu: GpuAligner,
    stats: Mutex<MemStats>,
}

impl GpuSimBackend {
    /// Improved kernel on the paper's RTX A6000 model.
    pub fn a6000() -> GpuSimBackend {
        GpuSimBackend {
            gpu: GpuAligner::improved(Device::a6000()),
            stats: Mutex::new(MemStats::new()),
        }
    }

    /// Any configured GPU aligner.
    pub fn new(gpu: GpuAligner) -> GpuSimBackend {
        GpuSimBackend {
            gpu,
            stats: Mutex::new(MemStats::new()),
        }
    }

    /// Fold per-task kernel outputs into the window/band counters the
    /// kernel reports (a subset of the CPU engine's instrumentation).
    fn absorb(&self, results: &[genasm_gpu::GpuAlignment]) {
        let mut s = self.stats.lock().expect("stats mutex poisoned");
        for r in results {
            s.windows += r.windows as u64;
            s.rows_computed += r.rows_computed;
            s.windows_rescued += r.rescued as u64;
        }
    }
}

impl Backend for GpuSimBackend {
    fn name(&self) -> &'static str {
        "gpu-sim"
    }

    fn align_batch(&self, tasks: &[AlignTask]) -> Result<Vec<Option<Alignment>>, BackendError> {
        match self.gpu.align_batch(tasks) {
            Ok(report) => {
                self.absorb(&report.results);
                Ok(report
                    .results
                    .into_iter()
                    .map(|r| Some(r.alignment))
                    .collect())
            }
            // A data-dependent failure (edit budget exhausted) poisons
            // the whole simulated launch; retry task-by-task so the
            // Backend contract holds — only the offending tasks become
            // `None`, matching the CPU backend. Unreachable with the
            // default `k = W` configuration, so the retry never costs
            // anything in the shipped backends.
            Err(gpu_sim::SimError::KernelFailed { .. }) => tasks
                .iter()
                .map(|t| match self.gpu.align_batch(core::slice::from_ref(t)) {
                    Ok(report) => {
                        self.absorb(&report.results);
                        Ok(report.results.into_iter().next().map(|r| r.alignment))
                    }
                    Err(gpu_sim::SimError::KernelFailed { .. }) => Ok(None),
                    Err(e) => Err(BackendError {
                        backend: "gpu-sim",
                        reason: e.to_string(),
                    }),
                })
                .collect(),
            Err(e) => Err(BackendError {
                backend: "gpu-sim",
                reason: e.to_string(),
            }),
        }
    }

    fn engine_stats(&self) -> Option<MemStats> {
        Some(*self.stats.lock().expect("stats mutex poisoned"))
    }
}

/// Myers' bit-parallel exact aligner (the Edlib baseline).
pub struct EdlibBackend {
    aligner: MyersAligner,
}

impl EdlibBackend {
    /// Fresh baseline aligner.
    pub fn new() -> EdlibBackend {
        EdlibBackend {
            aligner: MyersAligner::new(),
        }
    }
}

impl Default for EdlibBackend {
    fn default() -> EdlibBackend {
        EdlibBackend::new()
    }
}

impl Backend for EdlibBackend {
    fn name(&self) -> &'static str {
        "edlib"
    }

    fn align_batch(&self, tasks: &[AlignTask]) -> Result<Vec<Option<Alignment>>, BackendError> {
        Ok(align_batch_reusing(tasks, &self.aligner).alignments)
    }
}

/// The KSW2-style quadratic DP baseline.
pub struct Ksw2Backend {
    aligner: Ksw2Aligner,
}

impl Ksw2Backend {
    /// Fresh baseline aligner.
    pub fn new() -> Ksw2Backend {
        Ksw2Backend {
            aligner: Ksw2Aligner::new(),
        }
    }
}

impl Default for Ksw2Backend {
    fn default() -> Ksw2Backend {
        Ksw2Backend::new()
    }
}

impl Backend for Ksw2Backend {
    fn name(&self) -> &'static str {
        "ksw2"
    }

    fn align_batch(&self, tasks: &[AlignTask]) -> Result<Vec<Option<Alignment>>, BackendError> {
        Ok(align_batch_reusing(tasks, &self.aligner).alignments)
    }
}

/// The selectable backends, mirroring the CLI `--backend` choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// GenASM on the Rayon CPU batch aligner.
    Cpu,
    /// GenASM on the simulated GPU.
    GpuSim,
    /// Myers/Edlib exact baseline.
    Edlib,
    /// KSW2 quadratic DP baseline.
    Ksw2,
}

impl BackendKind {
    /// Every kind with its CLI name.
    pub const ALL: [(BackendKind, &'static str); 4] = [
        (BackendKind::Cpu, "cpu"),
        (BackendKind::GpuSim, "gpu-sim"),
        (BackendKind::Edlib, "edlib"),
        (BackendKind::Ksw2, "ksw2"),
    ];

    /// Instantiate the backend.
    pub fn create(&self) -> Box<dyn Backend> {
        match self {
            BackendKind::Cpu => Box::new(CpuBackend::improved()),
            BackendKind::GpuSim => Box::new(GpuSimBackend::a6000()),
            BackendKind::Edlib => Box::new(EdlibBackend::new()),
            BackendKind::Ksw2 => Box::new(Ksw2Backend::new()),
        }
    }
}

impl std::str::FromStr for BackendKind {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<BackendKind, ParseBackendError> {
        BackendKind::ALL
            .iter()
            .find(|(_, name)| *name == s)
            .map(|&(kind, _)| kind)
            .ok_or_else(|| ParseBackendError {
                given: s.to_string(),
            })
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (_, name) = BackendKind::ALL
            .iter()
            .find(|(kind, _)| kind == self)
            .expect("every kind is in BackendKind::ALL");
        f.write_str(name)
    }
}

/// Error for an unrecognized backend name; lists the valid ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError {
    /// What the user typed.
    pub given: String,
}

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend '{}'; valid backends are ", self.given)?;
        for (i, (_, name)) in BackendKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "'{name}'")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseBackendError {}

/// What a session (or the CLI `--backend` flag) selects: a pinned
/// [`BackendKind`], or adaptive routing. Under [`BackendChoice::Auto`]
/// the scheduler's [`crate::route::Router`] picks a concrete backend
/// per batch from live telemetry, restricted to the engines that
/// produce bit-identical GenASM output (`cpu`, `gpu-sim`) — so routing
/// never changes output bytes, only where the work runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendChoice {
    /// Adaptive per-batch routing among the bit-identical engines.
    Auto,
    /// A pinned backend.
    Fixed(BackendKind),
}

impl BackendChoice {
    /// The CLI/protocol spelling of [`BackendChoice::Auto`].
    pub const AUTO_NAME: &'static str = "auto";

    /// The pinned kind, or `None` for [`BackendChoice::Auto`].
    pub fn fixed(&self) -> Option<BackendKind> {
        match self {
            BackendChoice::Auto => None,
            BackendChoice::Fixed(kind) => Some(*kind),
        }
    }
}

impl From<BackendKind> for BackendChoice {
    fn from(kind: BackendKind) -> BackendChoice {
        BackendChoice::Fixed(kind)
    }
}

impl std::str::FromStr for BackendChoice {
    type Err = ParseBackendChoiceError;

    fn from_str(s: &str) -> Result<BackendChoice, ParseBackendChoiceError> {
        if s == BackendChoice::AUTO_NAME {
            return Ok(BackendChoice::Auto);
        }
        s.parse::<BackendKind>()
            .map(BackendChoice::Fixed)
            .map_err(|e| ParseBackendChoiceError { given: e.given })
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Auto => f.write_str(BackendChoice::AUTO_NAME),
            BackendChoice::Fixed(kind) => kind.fmt(f),
        }
    }
}

/// Error for an unrecognized backend choice; lists the valid names
/// including `auto`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendChoiceError {
    /// What the user typed.
    pub given: String,
}

impl std::fmt::Display for ParseBackendChoiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown backend '{}'; valid backends are ", self.given)?;
        for (_, name) in BackendKind::ALL.iter() {
            write!(f, "'{name}', ")?;
        }
        write!(f, "'{}'", BackendChoice::AUTO_NAME)
    }
}

impl std::error::Error for ParseBackendChoiceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn task(q: &str, t: &str) -> AlignTask {
        AlignTask::new(
            0,
            0,
            Seq::from_ascii(q.as_bytes()).unwrap(),
            Seq::from_ascii(t.as_bytes()).unwrap(),
        )
    }

    #[test]
    fn every_backend_aligns_and_validates() {
        let tasks = vec![
            task("ACGTACGTACGTACGT", "ACGTACCTACGTACGT"),
            task("ACGTACGTACGTACGT", "ACGTACGTACGTACGT"),
        ];
        for (kind, name) in BackendKind::ALL {
            let backend = kind.create();
            assert_eq!(backend.name(), name);
            let out = backend.align_batch(&tasks).unwrap();
            assert_eq!(out.len(), 2);
            for (t, a) in tasks.iter().zip(&out) {
                let a = a.as_ref().unwrap_or_else(|| panic!("{name} rejected"));
                a.check(&t.query, &t.target).unwrap();
            }
            assert_eq!(out[1].as_ref().unwrap().edit_distance, 0);
        }
    }

    #[test]
    fn kind_round_trips_through_strings() {
        for (kind, name) in BackendKind::ALL {
            assert_eq!(name.parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), name);
        }
    }

    #[test]
    fn unknown_backend_lists_choices() {
        let err = "cuda".parse::<BackendKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("'cuda'"), "{msg}");
        for (_, name) in BackendKind::ALL {
            assert!(msg.contains(name), "missing {name} in {msg}");
        }
    }

    #[test]
    fn gpu_budget_exhaustion_yields_none_not_batch_poisoning() {
        // k = 2 makes the all-mismatch task impossible; the good task
        // in the same batch must still align (per-task None contract).
        let mut cfg = genasm_core::GenAsmConfig::improved();
        cfg.k = 2;
        let backend = GpuSimBackend::new(GpuAligner::with_config(Device::a6000(), cfg));
        let tasks = vec![
            task("ACGTACGTAC", "ACGTACGTAC"),
            task("AAAAAAAAAA", "TTTTTTTTTT"),
        ];
        let out = backend.align_batch(&tasks).unwrap();
        assert_eq!(out[0].as_ref().unwrap().edit_distance, 0);
        assert!(out[1].is_none(), "impossible task must be None");
    }

    #[test]
    fn choice_round_trips_and_accepts_auto() {
        assert_eq!(
            "auto".parse::<BackendChoice>().unwrap(),
            BackendChoice::Auto
        );
        assert_eq!(BackendChoice::Auto.to_string(), "auto");
        assert_eq!(BackendChoice::Auto.fixed(), None);
        for (kind, name) in BackendKind::ALL {
            let choice = name.parse::<BackendChoice>().unwrap();
            assert_eq!(choice, BackendChoice::Fixed(kind));
            assert_eq!(choice, kind.into());
            assert_eq!(choice.to_string(), name);
            assert_eq!(choice.fixed(), Some(kind));
        }
    }

    #[test]
    fn unknown_choice_lists_names_including_auto() {
        let msg = "tpu".parse::<BackendChoice>().unwrap_err().to_string();
        assert!(msg.contains("'tpu'"), "{msg}");
        for (_, name) in BackendKind::ALL {
            assert!(msg.contains(&format!("'{name}'")), "missing {name}: {msg}");
        }
        assert!(msg.contains("'auto'"), "{msg}");
    }

    #[test]
    fn cpu_baseline_has_distinct_name() {
        assert_eq!(CpuBackend::baseline().name(), "cpu-base");
        let out = CpuBackend::baseline()
            .align_batch(&[task("ACGT", "ACGT")])
            .unwrap();
        assert_eq!(out[0].as_ref().unwrap().edit_distance, 0);
    }
}
