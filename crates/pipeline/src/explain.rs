//! Per-read provenance: the `--explain` JSONL stream.
//!
//! Every read that enters the pipeline leaves exactly one line in the
//! explain stream (schema `genasm-explain/v1`): how far it got through
//! the candidate funnel (anchors → chains → candidates), how each
//! accepted candidate's banding hint compared to the edits actually
//! needed (and whether the engine's full-budget rescue produced it),
//! stage timings, and the final disposition from the closed taxonomy
//! in [`disposition`].
//!
//! Explaining is **strictly passive**: the sink is fed from data the
//! pipeline already computes, and enabling it never changes output
//! records or exit codes — the determinism suite asserts the output
//! is byte-identical with explain on and off.

use std::io::Write;
use std::sync::Mutex;

use genasm_telemetry::json;

/// The closed disposition taxonomy. Every read ends in exactly one.
pub mod disposition {
    /// At least one record emitted; no accepted candidate needed
    /// rescue.
    pub const ALIGNED: &str = "aligned";
    /// At least one record emitted, and at least one accepted
    /// candidate exceeded its banding hint — the engine's full-budget
    /// rescue pass produced it.
    pub const RESCUED: &str = "rescued";
    /// No record: alignment failed within the backend's edit budget.
    pub const FAILED_NO_ALIGNMENT: &str = "failed:no_alignment";
    /// No record: the read produced no candidates. `reason` is the
    /// first empty funnel stage (`no_anchors`, `no_chain`,
    /// `no_candidates`).
    pub fn unmapped(reason: &str) -> String {
        format!("unmapped:{reason}")
    }
}

/// Funnel counts for one read, captured at candidate generation and
/// carried (shared) on every one of the read's task metas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadProvenance {
    /// Merged anchors collected for the read.
    pub anchors: u64,
    /// Chains built from those anchors.
    pub chains: u64,
    /// Candidate tasks emitted (after `max_per_read` capping).
    pub candidates: u64,
    /// Nanoseconds spent in candidate generation for this read.
    pub map_ns: u64,
}

/// One accepted candidate's hint-vs-actual accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskExplain {
    /// Banding hint the task was dispatched with (`None` = unbounded).
    pub hint: Option<u32>,
    /// Edit distance of the accepted alignment.
    pub edits: u64,
    /// True when `edits` exceeded `hint`: the tight band came up
    /// empty and the full-budget rescue produced the result.
    pub rescued: bool,
}

impl TaskExplain {
    fn to_json(self) -> String {
        let hint = match self.hint {
            Some(k) => k.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"hint\":{},\"edits\":{},\"rescued\":{}}}",
            hint, self.edits, self.rescued
        )
    }
}

/// One read's fully-assembled provenance, ready to render.
#[derive(Debug, Clone)]
pub struct ExplainRecord<'a> {
    /// Read name (raw; rendering escapes it).
    pub read: &'a str,
    /// Final disposition (see [`disposition`]).
    pub disposition: &'a str,
    /// Name of the backend that aligned the read (`None` for reads
    /// that never reached a backend — unmapped reads — or when the
    /// caller does not track it). Under `--backend auto` this is the
    /// router's pick, making routing visible per read.
    pub backend: Option<&'a str>,
    /// Funnel counts and candidate-generation timing.
    pub provenance: ReadProvenance,
    /// Per-accepted-candidate hint/edits/rescue detail (empty for
    /// unmapped and failed reads).
    pub tasks: &'a [TaskExplain],
    /// Nanoseconds from pipeline entry to the read's last record
    /// (0 for reads that never reached the alignment stage).
    pub align_ns: u64,
}

impl ExplainRecord<'_> {
    /// The read's single `genasm-explain/v1` JSON line (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let backend = match self.backend {
            Some(name) => format!("\"{}\"", json::escape(name)),
            None => "null".to_string(),
        };
        let mut s = format!(
            "{{\"schema\":\"genasm-explain/v1\",\"read\":\"{}\",\"disposition\":\"{}\",\
             \"backend\":{},\
             \"anchors\":{},\"chains\":{},\"candidates\":{},\"rescued_tasks\":{},\
             \"map_ns\":{},\"align_ns\":{},\"tasks\":[",
            json::escape(self.read),
            json::escape(self.disposition),
            backend,
            self.provenance.anchors,
            self.provenance.chains,
            self.provenance.candidates,
            self.tasks.iter().filter(|t| t.rescued).count(),
            self.provenance.map_ns,
            self.align_ns,
        );
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// A shared line-oriented explain writer. One `emit` = one complete
/// line, atomic under the mutex, flushed immediately so readers (and
/// crashed runs) always see whole lines.
pub struct ExplainSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for ExplainSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplainSink").finish_non_exhaustive()
    }
}

impl ExplainSink {
    /// A sink writing JSON lines to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> ExplainSink {
        ExplainSink {
            out: Mutex::new(out),
        }
    }

    /// Write one record as one line. Write errors are swallowed:
    /// explain output must never change the pipeline's outcome.
    pub fn emit(&self, rec: &ExplainRecord<'_>) {
        let mut line = rec.to_json();
        line.push('\n');
        let mut out = self.out.lock().expect("explain sink mutex poisoned");
        let _ = out.write_all(line.as_bytes());
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn record_renders_schema_funnel_and_tasks() {
        let tasks = [
            TaskExplain {
                hint: Some(9),
                edits: 3,
                rescued: false,
            },
            TaskExplain {
                hint: Some(2),
                edits: 7,
                rescued: true,
            },
            TaskExplain {
                hint: None,
                edits: 4,
                rescued: false,
            },
        ];
        let rec = ExplainRecord {
            read: "r\t1",
            disposition: disposition::RESCUED,
            backend: Some("gpu-sim"),
            provenance: ReadProvenance {
                anchors: 5,
                chains: 2,
                candidates: 3,
                map_ns: 1_000,
            },
            tasks: &tasks,
            align_ns: 2_000,
        };
        let j = rec.to_json();
        assert!(j.starts_with("{\"schema\":\"genasm-explain/v1\""), "{j}");
        assert!(j.contains("\"read\":\"r\\t1\""), "{j}");
        assert!(j.contains("\"disposition\":\"rescued\""), "{j}");
        assert!(j.contains("\"backend\":\"gpu-sim\""), "{j}");
        assert!(
            j.contains("\"anchors\":5,\"chains\":2,\"candidates\":3,\"rescued_tasks\":1"),
            "{j}"
        );
        assert!(
            j.contains("\"tasks\":[{\"hint\":9,\"edits\":3,\"rescued\":false}"),
            "{j}"
        );
        assert!(
            j.contains("{\"hint\":null,\"edits\":4,\"rescued\":false}"),
            "{j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
    }

    #[test]
    fn unmapped_disposition_strings_are_closed_taxonomy() {
        assert_eq!(disposition::unmapped("no_anchors"), "unmapped:no_anchors");
        assert_eq!(disposition::unmapped("no_chain"), "unmapped:no_chain");
        assert_eq!(
            disposition::unmapped("no_candidates"),
            "unmapped:no_candidates"
        );
    }

    #[test]
    fn sink_emits_one_flushed_line_per_record() {
        #[derive(Clone, Default)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let shared = Shared::default();
        let sink = ExplainSink::new(Box::new(shared.clone()));
        let rec = ExplainRecord {
            read: "a",
            disposition: disposition::ALIGNED,
            backend: None,
            provenance: ReadProvenance::default(),
            tasks: &[],
            align_ns: 0,
        };
        sink.emit(&rec);
        sink.emit(&rec);
        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\"backend\":null"), "{text}");
        assert!(text.ends_with("\"tasks\":[]}\n"), "{text}");
    }
}
