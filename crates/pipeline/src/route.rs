//! Adaptive backend routing for `--backend auto`.
//!
//! The GenASM GPU work (Lindegger et al., IPPS 2022) gets its
//! throughput from keeping the right engine fed with the right batch
//! shape: wide, homogeneous batches amortize the SIMT launch, while
//! short heterogeneous ones leave the wide engine mostly idle and are
//! better served by the latency-oriented CPU path. The [`Router`]
//! turns that observation into a feedback loop over the live metric
//! registry ([`StageCounters`]): each flushed batch is scored against
//! every enabled backend using
//!
//! * the per-backend **execute-latency** histograms and base counters
//!   (`execute_ns.sum / bases` → an observed ns-per-base cost),
//! * the per-backend **queue-wait** mean (an in-flight congestion
//!   proxy — a backlogged backend pays its queue before it computes),
//! * the **batch shape** (mean task size vs. the largest task seen:
//!   heterogeneous batches penalize the wide engine), and
//! * the funnel **rescue rate** (`tasks_rescued / tasks_generated`:
//!   rescue-heavy workloads defeat the wide engine's early
//!   termination, so its effective cost rises),
//!
//! and dispatched to the cheapest. Two mechanisms keep the loop
//! honest:
//!
//! * an **exploration floor** — any backend not routed to within
//!   [`RouterConfig::explore_every`] decisions is sampled next (the
//!   stalest first), so cost estimates can never go permanently
//!   stale, and a backend with no recorded bases at all is sampled
//!   before the cost model is consulted;
//! * a **pinned mode** ([`RouterConfig::pinned`]) that replaces the
//!   feedback loop with a deterministic round-robin over the enabled
//!   backends, giving reproducibility tests a routing trace that does
//!   not depend on wall-clock timings.
//!
//! Routing never changes output: the auto table only enables backends
//! that are bit-identical implementations of the improved GenASM
//! algorithm (`cpu` and `gpu-sim`), and the service's reorder sink
//! already restores submission order across backends. Every decision
//! is first-class telemetry — `genasm_router_batches_total{backend=…}`
//! and `genasm_router_explored_total` in the registry, a `router:`
//! line in the metrics summary, and the routed backend on each
//! `--explain` provenance line.

use std::sync::Mutex;

use crate::backend::BackendKind;
use crate::metrics::StageCounters;

/// Tuning knobs for the adaptive router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Exploration floor: a backend not routed to within this many
    /// decisions is sampled next, regardless of its modeled cost.
    /// Every enabled backend is therefore routed at least once in any
    /// window of `explore_every + enabled - 1` consecutive decisions.
    pub explore_every: u64,
    /// Deterministic mode: ignore the cost model and round-robin over
    /// the enabled backends, for reproducible routing traces.
    pub pinned: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            explore_every: 16,
            pinned: false,
        }
    }
}

#[derive(Debug)]
struct RouterState {
    /// Decisions made so far (the routing clock).
    seq: u64,
    /// Per-backend clock value of the last decision routed to it.
    last_routed: Vec<u64>,
}

/// Metrics-driven batch router: picks a concrete [`BackendKind`] for
/// each batch flushed by an `auto` scheduler slot. See the module docs
/// for the cost model and the exploration floor.
#[derive(Debug)]
pub struct Router {
    enabled: Vec<(BackendKind, &'static str)>,
    cfg: RouterConfig,
    st: Mutex<RouterState>,
}

impl Router {
    /// Router over `enabled` backends (the order fixes the pinned
    /// round-robin order and exploration tie-breaks).
    pub fn new(enabled: Vec<BackendKind>, cfg: RouterConfig) -> Router {
        assert!(!enabled.is_empty(), "router needs at least one backend");
        let enabled: Vec<(BackendKind, &'static str)> = enabled
            .into_iter()
            .map(|kind| (kind, kind_name(kind)))
            .collect();
        let last_routed = vec![0; enabled.len()];
        Router {
            enabled,
            cfg,
            st: Mutex::new(RouterState {
                seq: 0,
                last_routed,
            }),
        }
    }

    /// The enabled backends, in routing order.
    pub fn enabled(&self) -> impl Iterator<Item = BackendKind> + '_ {
        self.enabled.iter().map(|(kind, _)| *kind)
    }

    /// Route one batch of `bases` total bases across `tasks` tasks
    /// (with `max_task_bases` the largest single task seen so far) to
    /// a backend, recording the decision in `counters`.
    pub fn route(
        &self,
        counters: &StageCounters,
        bases: u64,
        tasks: u64,
        max_task_bases: u64,
    ) -> BackendKind {
        let mut st = self.st.lock().expect("router mutex");
        let seq = st.seq;
        st.seq += 1;
        let idx = if self.enabled.len() == 1 {
            0
        } else if self.cfg.pinned {
            (seq as usize) % self.enabled.len()
        } else {
            match self.stalest_overdue(&st, seq) {
                Some(i) => {
                    counters.router_explored.inc();
                    i
                }
                None => self.cheapest(counters, bases, tasks, max_task_bases),
            }
        };
        st.last_routed[idx] = seq + 1;
        let (kind, name) = self.enabled[idx];
        counters.router_batch(name).inc();
        kind
    }

    /// The backend most overdue for an exploration sample, if any is
    /// past the floor. `last_routed` stores `decision_seq + 1` (0 =
    /// never routed), so the gap below counts decisions since the
    /// backend last ran, treating "never" as "since the beginning".
    fn stalest_overdue(&self, st: &RouterState, seq: u64) -> Option<usize> {
        (0..self.enabled.len())
            .filter(|&i| seq.saturating_sub(st.last_routed[i]) >= self.cfg.explore_every)
            .max_by_key(|&i| seq - st.last_routed[i])
    }

    /// Cost-model pick: expected nanoseconds to finish this batch on
    /// each backend, cheapest wins (ties to routing order). A backend
    /// with no observed execution yet is sampled immediately (counted
    /// as exploration) — the model never guesses about a backend it
    /// has not measured.
    fn cheapest(&self, counters: &StageCounters, bases: u64, tasks: u64, max_task: u64) -> usize {
        let mut lats = Vec::with_capacity(self.enabled.len());
        for (i, (_, name)) in self.enabled.iter().enumerate() {
            let lat = counters.backend_lat(name);
            if lat.bases.get() == 0 {
                counters.router_explored.inc();
                return i;
            }
            lats.push(lat);
        }
        // Batch-shape heterogeneity: how much larger the largest task
        // is than this batch's mean task. 1.0 = perfectly homogeneous;
        // large = one long task serializes a wide engine's lanes.
        let mean_task = if tasks > 0 {
            (bases as f64 / tasks as f64).max(1.0)
        } else {
            bases.max(1) as f64
        };
        let hetero = (max_task as f64 / mean_task).max(1.0);
        let generated = counters.tasks_generated.get();
        let rescue_rate = if generated > 0 {
            counters.tasks_rescued.get() as f64 / generated as f64
        } else {
            0.0
        };
        let mut best = 0;
        let mut best_score = f64::INFINITY;
        for (i, lat) in lats.iter().enumerate() {
            let exec = lat.execute_ns.snapshot();
            let ns_per_base = exec.sum as f64 / lat.bases.get() as f64;
            let wait = lat.queue_wait_ns.snapshot().mean();
            // The wide engine pays for heterogeneity (idle lanes) and
            // for rescue-heavy workloads (no early termination win);
            // the latency-oriented paths do not.
            let shape = match self.enabled[i].0 {
                BackendKind::GpuSim => hetero * (1.0 + rescue_rate),
                _ => 1.0,
            };
            let score = bases as f64 * ns_per_base * shape + wait;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }
}

fn kind_name(kind: BackendKind) -> &'static str {
    BackendKind::ALL
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, name)| *name)
        .expect("backend kind has a name")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed_backend(c: &StageCounters, name: &str, bases: u64, execute_ns: u64) {
        let lat = c.backend_lat(name);
        lat.bases.add(bases);
        lat.execute_ns.record(execute_ns);
    }

    #[test]
    fn pinned_mode_round_robins_deterministically() {
        let c = StageCounters::default();
        let r = Router::new(
            vec![BackendKind::Cpu, BackendKind::GpuSim],
            RouterConfig {
                pinned: true,
                ..RouterConfig::default()
            },
        );
        let picks: Vec<BackendKind> = (0..6).map(|_| r.route(&c, 1000, 2, 500)).collect();
        assert_eq!(
            picks,
            vec![
                BackendKind::Cpu,
                BackendKind::GpuSim,
                BackendKind::Cpu,
                BackendKind::GpuSim,
                BackendKind::Cpu,
                BackendKind::GpuSim,
            ]
        );
        assert_eq!(c.router_batch("cpu").get(), 3);
        assert_eq!(c.router_batch("gpu-sim").get(), 3);
        assert_eq!(c.router_explored.get(), 0);
    }

    #[test]
    fn cost_model_prefers_the_observed_cheaper_backend() {
        let c = StageCounters::default();
        // cpu: 1 ns/base; gpu-sim: 1000 ns/base.
        seed_backend(&c, "cpu", 1_000, 1_000);
        seed_backend(&c, "gpu-sim", 1_000, 1_000_000);
        let r = Router::new(
            vec![BackendKind::Cpu, BackendKind::GpuSim],
            RouterConfig {
                explore_every: 1_000_000,
                pinned: false,
            },
        );
        for _ in 0..8 {
            assert_eq!(r.route(&c, 4_096, 8, 512), BackendKind::Cpu);
        }
        assert_eq!(c.router_batch("cpu").get(), 8);
        assert_eq!(c.router_explored.get(), 0);
    }

    #[test]
    fn heterogeneity_penalizes_the_wide_engine() {
        let c = StageCounters::default();
        // gpu-sim is 4x cheaper per base in isolation…
        seed_backend(&c, "cpu", 1_000, 4_000);
        seed_backend(&c, "gpu-sim", 1_000, 1_000);
        let r = Router::new(
            vec![BackendKind::Cpu, BackendKind::GpuSim],
            RouterConfig {
                explore_every: 1_000_000,
                pinned: false,
            },
        );
        // …and wins on a homogeneous batch (max task ≈ mean task)…
        assert_eq!(r.route(&c, 4_096, 8, 512), BackendKind::GpuSim);
        // …but loses a heterogeneous one (one task 16x the mean).
        assert_eq!(r.route(&c, 4_096, 8, 8_192), BackendKind::Cpu);
    }

    #[test]
    fn unmeasured_backend_is_sampled_before_the_model_guesses() {
        let c = StageCounters::default();
        seed_backend(&c, "cpu", 1_000, 1);
        // gpu-sim has no recorded execution: sampled first even though
        // cpu looks nearly free.
        let r = Router::new(
            vec![BackendKind::Cpu, BackendKind::GpuSim],
            RouterConfig {
                explore_every: 1_000_000,
                pinned: false,
            },
        );
        assert_eq!(r.route(&c, 1_000, 2, 500), BackendKind::GpuSim);
        assert_eq!(c.router_explored.get(), 1);
    }

    #[test]
    fn exploration_floor_samples_every_backend_within_the_window() {
        let c = StageCounters::default();
        // cpu permanently looks far cheaper, so only the floor can
        // ever route to gpu-sim.
        seed_backend(&c, "cpu", 1_000_000, 1);
        seed_backend(&c, "gpu-sim", 1, 1_000_000_000);
        let explore_every = 5u64;
        let r = Router::new(
            vec![BackendKind::Cpu, BackendKind::GpuSim],
            RouterConfig {
                explore_every,
                pinned: false,
            },
        );
        let picks: Vec<BackendKind> = (0..64).map(|_| r.route(&c, 4_096, 8, 512)).collect();
        // Every enabled backend appears in every window of
        // explore_every + enabled - 1 consecutive decisions.
        let window = (explore_every as usize) + 2 - 1;
        for kind in [BackendKind::Cpu, BackendKind::GpuSim] {
            for w in picks.windows(window) {
                assert!(
                    w.contains(&kind),
                    "{kind:?} missing from window {w:?} (floor {explore_every})"
                );
            }
        }
        assert!(c.router_explored.get() > 0);
        assert_eq!(
            c.router_batch("cpu").get() + c.router_batch("gpu-sim").get(),
            64
        );
    }

    #[test]
    fn single_backend_short_circuits() {
        let c = StageCounters::default();
        let r = Router::new(vec![BackendKind::Cpu], RouterConfig::default());
        for _ in 0..4 {
            assert_eq!(r.route(&c, 100, 1, 100), BackendKind::Cpu);
        }
        assert_eq!(c.router_batch("cpu").get(), 4);
        assert_eq!(c.router_explored.get(), 0);
    }
}
