//! # genasm-pipeline
//!
//! A streaming, multi-backend alignment pipeline with **one** stage
//! core — the resident [`service::PipelineService`]:
//!
//! ```text
//!  session(s) ──► candidate generation ──► batch scheduler ──► router ──► dispatchers ──► ordered sink
//!  (submit)       (sharded index fan-out    (one building      (auto:      (N threads,     (global reorder,
//!                  ┌► shard 0 ─┐             batch per          metrics-    any Backend)    per-session rows)
//!                  ├► shard …  ├─ merge)     backend choice)    driven          │
//!                  └► shard S ─┘                 │              pick)      result queue
//!                     │                          ▼                         (bounded)
//!                 task queue                batch queue
//!                (bounded, weighted          (bounded)
//!                 by bases)
//! ```
//!
//! [`run_pipeline`] — the one-shot batch entry point — is a thin
//! wrapper that opens a single session on a private service and pumps
//! the read iterator through it: the scheduler/dispatch/sink stages
//! exist exactly once, in [`service`], so the one-shot path and the
//! server share them *structurally* rather than by byte-equivalence
//! testing. [`run_pipeline_auto`] is the same wrapper with
//! [`BackendChoice::Auto`]: a [`route::Router`] assigns each batch to
//! a backend from live metrics (see the module docs of [`route`]).
//!
//! The paper's evaluation drives GenASM as a one-shot batch: load every
//! read, generate every candidate, align, print. This crate gives the
//! suite the shape a production service needs — a *continuous stream*
//! of alignment work fed to whichever backend is fastest — with three
//! invariants:
//!
//! * **Bounded memory.** Stages communicate over bounded queues
//!   ([`queue::BoundedQueue`]); the task queue is weighted by bases so
//!   peak resident task memory is `O(queue_depth × batch_bases)`
//!   regardless of input size ([`PipelineConfig::resident_bases_bound`]).
//!   A full queue blocks the producer (backpressure) instead of
//!   buffering.
//! * **Deterministic output.** The scheduler numbers batches, a
//!   [`reorder::ReorderBuffer`] restores that order at the sink, and
//!   per-read rows are sorted by [`record::AlignRecord::sort_key`] —
//!   so output is byte-identical for every batch size, queue depth and
//!   thread count, and byte-identical to the one-shot `genasm align`
//!   path.
//! * **Observable stages.** [`metrics::PipelineMetrics`] reports
//!   per-stage busy time and throughput, queue depths, the batch-size
//!   histogram, backend utilization, peak in-flight bases, and
//!   per-shard busy time / merge dedup counts of the sharded index.
//!
//! The candidate-generation stage maps each read against a
//! [`mapper::ShardedIndex`] built from a multi-contig
//! [`align_core::Reference`]: the reference is split into
//! `PipelineConfig::shards` overlapping slices — never straddling a
//! contig boundary — each with its own minimizer index *and the only
//! copy of its slice of the reference* (the monolithic reference is
//! dropped after the build, so `resident_bases_bound` extends to the
//! reference itself). Anchors are collected by a persistent pool of
//! per-shard workers, and the merged stream is deterministic — output
//! stays byte-identical across shard counts and overlap settings.
//! Records report contig names and contig-local coordinates.
//!
//! Backends implement [`backend::Backend`]; the Rayon CPU batch
//! aligner, the simulated GPU, and both baselines ship in
//! [`backend`]. All reuse per-worker workspaces internally, so the hot
//! path stays allocation-free in steady state.

pub mod backend;
pub mod batcher;
pub mod explain;
pub mod metrics;
pub mod queue;
pub mod record;
pub mod reorder;
pub mod route;
pub mod service;

use std::sync::Arc;
use std::time::Duration;

use align_core::{AlignTask, Alignment, Reference, Seq};
use mapper::CandidateParams;

pub use backend::{
    Backend, BackendChoice, BackendError, BackendKind, CpuBackend, EdlibBackend, GpuSimBackend,
    Ksw2Backend, ParseBackendChoiceError, ParseBackendError,
};
pub use batcher::{Batch, BatchBuilder, TaskMeta};
pub use explain::{disposition, ExplainRecord, ExplainSink, ReadProvenance, TaskExplain};
pub use genasm_telemetry::TraceRecorder;
pub use genasm_telemetry::{HistogramSnapshot, Registry, SlowRead, Snapshot};
pub use metrics::{
    BackendLat, BackendMetrics, FunnelCounts, PipelineMetrics, QueueMetrics, StageCounters,
    SLOW_READS_CAPACITY,
};
pub use queue::BoundedQueue;
pub use record::{escape_name, unescape_name, AlignRecord, OutputFormat, ParseFormatError};
pub use reorder::ReorderBuffer;
pub use route::{Router, RouterConfig};
pub use service::{
    AdmissionError, OverflowPolicy, PipelineService, RecvOutcome, ServiceConfig, Session,
    SessionEvent, SessionMetrics, SessionReceiver, SessionStat, SubmitError,
};

/// One read entering the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadInput {
    /// Read name (becomes `qname` in the output records).
    pub name: String,
    /// The read sequence.
    pub seq: Seq,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target total bases (query + target) per dispatched batch.
    pub batch_bases: usize,
    /// Depth of each inter-stage queue: the task queue admits
    /// `queue_depth × batch_bases` bases, the batch and result queues
    /// `queue_depth` batches each.
    pub queue_depth: usize,
    /// Backend dispatch workers. 1 is right for backends that
    /// parallelize internally (CPU/Rayon, GPU); more overlaps batches.
    pub dispatchers: usize,
    /// Reference shards for the candidate-generation stage: the
    /// reference index is split into this many overlapping slices and
    /// anchor collection fans out across them
    /// ([`mapper::ShardedIndex`]). Output is byte-identical for every
    /// shard count.
    pub shards: usize,
    /// Overlap between consecutive reference shards, in bases (clamped
    /// up to the exactness floor `w + k` by the index build).
    pub shard_overlap: usize,
    /// Candidate-generation parameters for the mapper stage.
    pub params: CandidateParams,
    /// Optional structured trace recorder: when set, every stage
    /// emits Chrome trace-event spans covering the read lifecycle
    /// (ingest → batch build → backend queue wait → execute → reorder
    /// wait → sink). Tracing is passive — it never changes output
    /// bytes (the determinism suite asserts this).
    pub trace: Option<Arc<TraceRecorder>>,
    /// Optional per-read provenance stream: when set, every read
    /// leaves exactly one `genasm-explain/v1` JSON line describing its
    /// pass through the decision funnel and its final disposition
    /// ([`explain::ExplainRecord`]). Like tracing, explaining is
    /// passive — output records stay byte-identical with it on or off
    /// (asserted by the determinism suite).
    pub explain: Option<Arc<ExplainSink>>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            batch_bases: 256 * 1024,
            queue_depth: 8,
            dispatchers: 1,
            shards: 1,
            shard_overlap: 256,
            params: CandidateParams::default(),
            trace: None,
            explain: None,
        }
    }
}

/// Fixed trace lane (`tid`) assignment shared by the one-shot
/// pipeline and the resident service, so traces from both render with
/// the same layout in Perfetto.
pub(crate) mod tids {
    /// Per-read end-to-end spans.
    pub const READS: u64 = 0;
    /// Read ingest / candidate generation.
    pub const INGEST: u64 = 1;
    /// Batch scheduler.
    pub const SCHED: u64 = 2;
    /// Ordered sink.
    pub const SINK: u64 = 3;
    /// Session lifecycle (service only).
    pub const SESSION: u64 = 4;
    /// First backend lane; backend `i` uses `BACKEND0 + i`.
    pub const BACKEND0: u64 = 8;
}

/// Emit the lane-name metadata events every trace starts with.
pub(crate) fn trace_lanes(trace: &TraceRecorder, backends: &[&str]) {
    trace.thread_name(tids::READS, "reads");
    trace.thread_name(tids::INGEST, "ingest/map");
    trace.thread_name(tids::SCHED, "scheduler");
    trace.thread_name(tids::SINK, "sink");
    trace.thread_name(tids::SESSION, "sessions");
    for (i, name) in backends.iter().enumerate() {
        trace.thread_name(tids::BACKEND0 + i as u64, &format!("backend:{name}"));
    }
}

impl PipelineConfig {
    /// Upper bound on bases resident in the pipeline at once, given the
    /// largest single task observed. Every stage holds at most one
    /// batch (plus the batch in construction and the reorder backlog),
    /// so residency is linear in `queue_depth × batch_bases` and
    /// independent of workload size — the property the streaming test
    /// asserts.
    pub fn resident_bases_bound(&self, max_task_bases: usize) -> usize {
        let q = self.queue_depth.max(1);
        let d = self.dispatchers.max(1);
        // A batch flushes when it *reaches* the target, so it can
        // overshoot by one task.
        let per_batch = self.batch_bases + max_task_bases;
        // task queue (weighted capacity + one oversized admission)
        q * self.batch_bases + max_task_bases
            // the scheduler's batch under construction
            + per_batch
            // batch queue + batches inside dispatchers + result queue
            + per_batch * (q + d + q)
            // reorder backlog: everything past the scheduler can be
            // waiting on one straggler batch
            + per_batch * (2 * q + d)
    }
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The read stream produced an error.
    Input(String),
    /// A backend poisoned a batch.
    Backend(BackendError),
    /// A task found no alignment within the backend's edit budget.
    NoAlignment {
        /// Name of the read whose candidate failed.
        read: String,
    },
    /// The sink callback failed to write a record.
    Sink(std::io::Error),
}

impl core::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PipelineError::Input(msg) => write!(f, "read input: {msg}"),
            PipelineError::Backend(e) => write!(f, "{e}"),
            PipelineError::NoAlignment { read } => {
                write!(
                    f,
                    "alignment failed for read {read}: no alignment within the edit budget"
                )
            }
            PipelineError::Sink(e) => write!(f, "write error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A caller-borrowed backend adapted into the service's owned-table
/// shape: pure delegation to the wrapped `&dyn Backend`.
struct BorrowedBackend(&'static dyn Backend);

impl Backend for BorrowedBackend {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn align_batch(&self, tasks: &[AlignTask]) -> Result<Vec<Option<Alignment>>, BackendError> {
        self.0.align_batch(tasks)
    }

    fn engine_stats(&self) -> Option<genasm_core::MemStats> {
        self.0.engine_stats()
    }
}

/// Run the pipeline to completion.
///
/// A thin wrapper over [`service::PipelineService`]: it starts a
/// private single-session service around the caller's backend and
/// pumps the read iterator through it, so the scheduler/dispatch/sink
/// stages exist exactly once (in [`service`]) and the one-shot path is
/// *structurally* identical to a server session over the same reads.
///
/// `reads` is consumed incrementally — the whole read set is never
/// materialized. The `reference` is consumed: the sharded index takes
/// ownership of the contig sequences and drops everything but its
/// shard-local slices, so reference residency is bounded by the shard
/// geometry for the whole run. Records are delivered to `on_record`
/// in deterministic order (input read order; within a read, best
/// alignment first — see [`AlignRecord::sort_key`]) and report contig
/// names and contig-local coordinates. The first failure (input error,
/// poisoned batch, task with no alignment in budget, sink write error)
/// aborts the run; the records already emitted are always whole reads
/// in input order. Returns the run's [`PipelineMetrics`].
pub fn run_pipeline<I, E, F>(
    reads: I,
    reference: Reference,
    backend: &dyn Backend,
    cfg: &PipelineConfig,
    mut on_record: F,
) -> Result<PipelineMetrics, PipelineError>
where
    I: Iterator<Item = Result<ReadInput, E>> + Send,
    E: core::fmt::Display,
    F: FnMut(&AlignRecord) -> std::io::Result<()>,
{
    // SAFETY: lifetime-only widening of the borrow handed to the
    // service's backend table. The service's stage threads are the
    // only holders, and `run_oneshot` drops the service — whose Drop
    // joins every stage thread — before returning, including on
    // unwind, so the 'static promise never outlives the real borrow.
    let backend: &'static dyn Backend = unsafe { core::mem::transmute(backend) };
    // The kind is a routing tag for the single-entry table; the
    // session is fixed to it, so it never reaches the auto router.
    let table: Vec<(BackendKind, Box<dyn Backend>)> =
        vec![(BackendKind::Cpu, Box::new(BorrowedBackend(backend)))];
    run_oneshot(
        reads,
        reference,
        table,
        BackendKind::Cpu.into(),
        cfg,
        RouterConfig::default(),
        &mut on_record,
    )
}

/// [`run_pipeline`] under adaptive routing: a one-shot run whose
/// session is [`BackendChoice::Auto`], so each dispatched batch is
/// assigned to `cpu` or `gpu-sim` by the metrics-driven
/// [`route::Router`]. Output is byte-identical to a fixed-backend run
/// over the same reads — the two engines are bit-identical
/// implementations of the improved GenASM algorithm, and the ordered
/// sink restores submission order across them — while the routing
/// itself surfaces in the returned metrics (`router_batches`,
/// `genasm_router_batches_total{backend=…}`) and per-read `--explain`
/// lines.
pub fn run_pipeline_auto<I, E, F>(
    reads: I,
    reference: Reference,
    cfg: &PipelineConfig,
    router: RouterConfig,
    mut on_record: F,
) -> Result<PipelineMetrics, PipelineError>
where
    I: Iterator<Item = Result<ReadInput, E>> + Send,
    E: core::fmt::Display,
    F: FnMut(&AlignRecord) -> std::io::Result<()>,
{
    let table: Vec<(BackendKind, Box<dyn Backend>)> = vec![
        (BackendKind::Cpu, BackendKind::Cpu.create()),
        (BackendKind::GpuSim, BackendKind::GpuSim.create()),
    ];
    run_oneshot(
        reads,
        reference,
        table,
        BackendChoice::Auto,
        cfg,
        router,
        &mut on_record,
    )
}

/// The shared one-shot pump: private service, one session, stream the
/// reads in, stream the rows out, abort on the first failure.
fn run_oneshot<I, E, F>(
    reads: I,
    reference: Reference,
    backends: Vec<(BackendKind, Box<dyn Backend>)>,
    choice: BackendChoice,
    cfg: &PipelineConfig,
    router: RouterConfig,
    on_record: &mut F,
) -> Result<PipelineMetrics, PipelineError>
where
    I: Iterator<Item = Result<ReadInput, E>>,
    E: core::fmt::Display,
    F: FnMut(&AlignRecord) -> std::io::Result<()>,
{
    let svc_cfg = ServiceConfig {
        pipeline: cfg.clone(),
        max_sessions: 1,
        // One-shot batch geometry: a building batch flushes only when
        // it reaches its target — or at end of input, when shutdown
        // closes the task queue — exactly like the historical inline
        // scheduler. The linger is set far past any run length so the
        // age flush can never fire mid-run.
        linger: Duration::from_secs(3600),
        // The caps exist for multi-tenant fairness; a one-shot run is
        // its own only tenant, and its memory is already bounded by
        // the stage queues.
        max_session_output_bytes: 0,
        overflow: OverflowPolicy::Throttle,
        max_session_inflight_reads: 0,
        max_session_inflight_bases: 0,
        router,
    };
    let service = PipelineService::start_with_backends("", reference, svc_cfg, backends);
    let (mut session, rx) = service
        .open_session(choice)
        .expect("a fresh service admits its first session");
    let mut failure: Option<PipelineError> = None;
    'ingest: for item in reads {
        let read = match item {
            Ok(read) => read,
            Err(e) => {
                failure = Some(PipelineError::Input(e.to_string()));
                break 'ingest;
            }
        };
        if let Err(e) = session.submit(read) {
            failure = Some(PipelineError::Input(e.to_string()));
            break 'ingest;
        }
        // Stream out whatever the sink has already delivered, so rows
        // flow to the caller while ingest continues.
        while let Some(event) = rx.try_recv() {
            if let Err(e) = deliver(&service, event, on_record) {
                failure = Some(e);
                break 'ingest;
            }
        }
    }
    if let Some(e) = failure {
        // First failure aborts the run. Dropping the session halves
        // and the service closes every queue and joins the stage
        // threads, so what was emitted stays a whole-reads-in-input-
        // order prefix.
        drop(rx);
        drop(session);
        drop(service);
        return Err(e);
    }
    session.finish();
    // Drain the stages first: shutdown closes the task queue (flushing
    // the scheduler's partial batches) and joins the threads. The
    // session channel is unbounded, so every event — `End` included —
    // is waiting for the drain loop below; nothing can be lost.
    let metrics = service.shutdown();
    while let Some(event) = rx.recv() {
        match deliver(&service, event, on_record) {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => {
                drop(rx);
                drop(service);
                return Err(e);
            }
        }
    }
    Ok(metrics)
}

/// Handle one session event in the one-shot pump. `Ok(true)` = the
/// session ended.
fn deliver<F>(
    service: &PipelineService,
    event: SessionEvent,
    on_record: &mut F,
) -> Result<bool, PipelineError>
where
    F: FnMut(&AlignRecord) -> std::io::Result<()>,
{
    match event {
        SessionEvent::Rows(rows) => {
            for row in &rows {
                on_record(row).map_err(PipelineError::Sink)?;
            }
            Ok(false)
        }
        SessionEvent::ReadFailed { read } => {
            // The service fails reads individually; the one-shot
            // contract aborts on the first one, with the typed cause:
            // a poisoned batch surfaces as the backend's own error, a
            // task that exhausted its edit budget as `NoAlignment`.
            Err(match service.last_backend_error_detail() {
                Some(e) => PipelineError::Backend(e),
                None => PipelineError::NoAlignment { read },
            })
        }
        SessionEvent::End(_) => Ok(true),
        // The output cap is disabled in the one-shot config, and
        // explain lines already flow through the config's sink.
        SessionEvent::Overflow { .. } | SessionEvent::Explain(_) => Ok(false),
    }
}
