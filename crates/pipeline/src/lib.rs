//! # genasm-pipeline
//!
//! A streaming, multi-backend alignment pipeline:
//!
//! ```text
//!  reads ──► candidate generation ──► batch scheduler ──► backend dispatch ──► ordered sink
//!  (iter)    (sharded index fan-out     (1 thread)          (N threads,          (caller thread,
//!             ┌► shard 0 ─┐                 │                pluggable Backend)   reorder buffer)
//!             ├► shard …  ├─ merge)         ▼                    │
//!             └► shard S ─┘            batch queue ────────► result queue
//!                │                     (bounded,             (bounded,
//!                ▼                      queue_depth)          queue_depth)
//!            task queue
//!           (bounded, weighted by bases)
//! ```
//!
//! The paper's evaluation drives GenASM as a one-shot batch: load every
//! read, generate every candidate, align, print. This crate gives the
//! suite the shape a production service needs — a *continuous stream*
//! of alignment work fed to whichever backend is fastest — with three
//! invariants:
//!
//! * **Bounded memory.** Stages communicate over bounded queues
//!   ([`queue::BoundedQueue`]); the task queue is weighted by bases so
//!   peak resident task memory is `O(queue_depth × batch_bases)`
//!   regardless of input size ([`PipelineConfig::resident_bases_bound`]).
//!   A full queue blocks the producer (backpressure) instead of
//!   buffering.
//! * **Deterministic output.** The scheduler numbers batches, a
//!   [`reorder::ReorderBuffer`] restores that order at the sink, and
//!   per-read rows are sorted by [`record::AlignRecord::sort_key`] —
//!   so output is byte-identical for every batch size, queue depth and
//!   thread count, and byte-identical to the one-shot `genasm align`
//!   path.
//! * **Observable stages.** [`metrics::PipelineMetrics`] reports
//!   per-stage busy time and throughput, queue depths, the batch-size
//!   histogram, backend utilization, peak in-flight bases, and
//!   per-shard busy time / merge dedup counts of the sharded index.
//!
//! The candidate-generation stage maps each read against a
//! [`mapper::ShardedIndex`] built from a multi-contig
//! [`align_core::Reference`]: the reference is split into
//! `PipelineConfig::shards` overlapping slices — never straddling a
//! contig boundary — each with its own minimizer index *and the only
//! copy of its slice of the reference* (the monolithic reference is
//! dropped after the build, so `resident_bases_bound` extends to the
//! reference itself). Anchors are collected by a persistent pool of
//! per-shard workers, and the merged stream is deterministic — output
//! stays byte-identical across shard counts and overlap settings.
//! Records report contig names and contig-local coordinates.
//!
//! Backends implement [`backend::Backend`]; the Rayon CPU batch
//! aligner, the simulated GPU, and both baselines ship in
//! [`backend`]. All reuse per-worker workspaces internally, so the hot
//! path stays allocation-free in steady state.

pub mod backend;
pub mod batcher;
pub mod explain;
pub mod metrics;
pub mod queue;
pub mod record;
pub mod reorder;
pub mod service;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use align_core::{Alignment, Reference, Seq};
use mapper::{CandidateParams, ShardedIndex};

pub use backend::{
    Backend, BackendError, BackendKind, CpuBackend, EdlibBackend, GpuSimBackend, Ksw2Backend,
    ParseBackendError,
};
pub use batcher::{Batch, BatchBuilder, TaskMeta};
pub use explain::{disposition, ExplainRecord, ExplainSink, ReadProvenance, TaskExplain};
pub use genasm_telemetry::TraceRecorder;
pub use genasm_telemetry::{HistogramSnapshot, Registry, SlowRead, Snapshot};
pub use metrics::{
    BackendLat, BackendMetrics, FunnelCounts, PipelineMetrics, QueueMetrics, StageCounters,
    SLOW_READS_CAPACITY,
};
pub use queue::BoundedQueue;
pub use record::{escape_name, unescape_name, AlignRecord, OutputFormat, ParseFormatError};
pub use reorder::ReorderBuffer;
pub use service::{
    AdmissionError, OverflowPolicy, PipelineService, RecvOutcome, ServiceConfig, Session,
    SessionEvent, SessionMetrics, SessionReceiver, SessionStat, SubmitError,
};

/// One read entering the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadInput {
    /// Read name (becomes `qname` in the output records).
    pub name: String,
    /// The read sequence.
    pub seq: Seq,
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target total bases (query + target) per dispatched batch.
    pub batch_bases: usize,
    /// Depth of each inter-stage queue: the task queue admits
    /// `queue_depth × batch_bases` bases, the batch and result queues
    /// `queue_depth` batches each.
    pub queue_depth: usize,
    /// Backend dispatch workers. 1 is right for backends that
    /// parallelize internally (CPU/Rayon, GPU); more overlaps batches.
    pub dispatchers: usize,
    /// Reference shards for the candidate-generation stage: the
    /// reference index is split into this many overlapping slices and
    /// anchor collection fans out across them
    /// ([`mapper::ShardedIndex`]). Output is byte-identical for every
    /// shard count.
    pub shards: usize,
    /// Overlap between consecutive reference shards, in bases (clamped
    /// up to the exactness floor `w + k` by the index build).
    pub shard_overlap: usize,
    /// Candidate-generation parameters for the mapper stage.
    pub params: CandidateParams,
    /// Optional structured trace recorder: when set, every stage
    /// emits Chrome trace-event spans covering the read lifecycle
    /// (ingest → batch build → backend queue wait → execute → reorder
    /// wait → sink). Tracing is passive — it never changes output
    /// bytes (the determinism suite asserts this).
    pub trace: Option<Arc<TraceRecorder>>,
    /// Optional per-read provenance stream: when set, every read
    /// leaves exactly one `genasm-explain/v1` JSON line describing its
    /// pass through the decision funnel and its final disposition
    /// ([`explain::ExplainRecord`]). Like tracing, explaining is
    /// passive — output records stay byte-identical with it on or off
    /// (asserted by the determinism suite).
    pub explain: Option<Arc<ExplainSink>>,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            batch_bases: 256 * 1024,
            queue_depth: 8,
            dispatchers: 1,
            shards: 1,
            shard_overlap: 256,
            params: CandidateParams::default(),
            trace: None,
            explain: None,
        }
    }
}

/// Fixed trace lane (`tid`) assignment shared by the one-shot
/// pipeline and the resident service, so traces from both render with
/// the same layout in Perfetto.
pub(crate) mod tids {
    /// Per-read end-to-end spans.
    pub const READS: u64 = 0;
    /// Read ingest / candidate generation.
    pub const INGEST: u64 = 1;
    /// Batch scheduler.
    pub const SCHED: u64 = 2;
    /// Ordered sink.
    pub const SINK: u64 = 3;
    /// Session lifecycle (service only).
    pub const SESSION: u64 = 4;
    /// First backend lane; backend `i` uses `BACKEND0 + i`.
    pub const BACKEND0: u64 = 8;
}

/// Emit the lane-name metadata events every trace starts with.
pub(crate) fn trace_lanes(trace: &TraceRecorder, backends: &[&str]) {
    trace.thread_name(tids::READS, "reads");
    trace.thread_name(tids::INGEST, "ingest/map");
    trace.thread_name(tids::SCHED, "scheduler");
    trace.thread_name(tids::SINK, "sink");
    trace.thread_name(tids::SESSION, "sessions");
    for (i, name) in backends.iter().enumerate() {
        trace.thread_name(tids::BACKEND0 + i as u64, &format!("backend:{name}"));
    }
}

impl PipelineConfig {
    /// Upper bound on bases resident in the pipeline at once, given the
    /// largest single task observed. Every stage holds at most one
    /// batch (plus the batch in construction and the reorder backlog),
    /// so residency is linear in `queue_depth × batch_bases` and
    /// independent of workload size — the property the streaming test
    /// asserts.
    pub fn resident_bases_bound(&self, max_task_bases: usize) -> usize {
        let q = self.queue_depth.max(1);
        let d = self.dispatchers.max(1);
        // A batch flushes when it *reaches* the target, so it can
        // overshoot by one task.
        let per_batch = self.batch_bases + max_task_bases;
        // task queue (weighted capacity + one oversized admission)
        q * self.batch_bases + max_task_bases
            // the scheduler's batch under construction
            + per_batch
            // batch queue + batches inside dispatchers + result queue
            + per_batch * (q + d + q)
            // reorder backlog: everything past the scheduler can be
            // waiting on one straggler batch
            + per_batch * (2 * q + d)
    }
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The read stream produced an error.
    Input(String),
    /// A backend poisoned a batch.
    Backend(BackendError),
    /// A task found no alignment within the backend's edit budget.
    NoAlignment {
        /// Name of the read whose candidate failed.
        read: String,
    },
    /// The sink callback failed to write a record.
    Sink(std::io::Error),
}

impl core::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PipelineError::Input(msg) => write!(f, "read input: {msg}"),
            PipelineError::Backend(e) => write!(f, "{e}"),
            PipelineError::NoAlignment { read } => {
                write!(
                    f,
                    "alignment failed for read {read}: no alignment within the edit budget"
                )
            }
            PipelineError::Sink(e) => write!(f, "write error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A completed batch travelling from dispatch to the sink. Sequences
/// are already dropped; only metadata and alignments remain.
struct DoneBatch {
    seq: u64,
    metas: Vec<TaskMeta>,
    alignments: Vec<Option<Alignment>>,
    completed_at: Instant,
}

/// Run the pipeline to completion.
///
/// `reads` is consumed incrementally — the whole read set is never
/// materialized. The `reference` is consumed: the sharded index takes
/// ownership of the contig sequences and drops everything but its
/// shard-local slices, so reference residency is bounded by the shard
/// geometry for the whole run. Records are delivered to `on_record`
/// in deterministic order (input read order; within a read, best
/// alignment first — see [`AlignRecord::sort_key`]) and report contig
/// names and contig-local coordinates. Returns the run's
/// [`PipelineMetrics`].
pub fn run_pipeline<I, E, F>(
    reads: I,
    reference: Reference,
    backend: &dyn Backend,
    cfg: &PipelineConfig,
    mut on_record: F,
) -> Result<PipelineMetrics, PipelineError>
where
    I: Iterator<Item = Result<ReadInput, E>> + Send,
    E: core::fmt::Display,
    F: FnMut(&AlignRecord) -> std::io::Result<()>,
{
    let wall0 = Instant::now();
    let index = ShardedIndex::build(reference, cfg.shards, cfg.shard_overlap);
    let counters = StageCounters::default();
    let trace = cfg.trace.as_deref();
    if let Some(t) = trace {
        trace_lanes(t, &[backend.name()]);
    }

    let task_q: BoundedQueue<(align_core::AlignTask, TaskMeta)> =
        BoundedQueue::new(cfg.queue_depth.max(1) * cfg.batch_bases.max(1));
    let batch_q: BoundedQueue<Batch> = BoundedQueue::new(cfg.queue_depth.max(1));
    let result_q: BoundedQueue<DoneBatch> = BoundedQueue::new(cfg.queue_depth.max(1));

    let error: Mutex<Option<PipelineError>> = Mutex::new(None);
    // First error wins; closing every queue unblocks all stages so the
    // scope can join without deadlocking.
    let abort = |e: PipelineError| {
        let mut slot = error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        task_q.close();
        batch_q.close();
        result_q.close();
    };

    let dispatchers = cfg.dispatchers.max(1);
    let live_dispatchers = AtomicUsize::new(dispatchers);
    let mut sink_result: Result<(), PipelineError> = Ok(());

    std::thread::scope(|scope| {
        // Stage 1: read + candidate generation.
        scope.spawn(|| {
            let mut reads = reads;
            let mut read_seq: u64 = 0;
            loop {
                let t0 = Instant::now();
                let item = match reads.next() {
                    None => break,
                    Some(Err(e)) => {
                        abort(PipelineError::Input(e.to_string()));
                        return;
                    }
                    Some(Ok(r)) => r,
                };
                counters.reads_in.inc();
                let (tasks, map_stats) =
                    index.candidates_for_read_stats(read_seq as u32, &item.seq, &cfg.params);
                let map_ns = t0.elapsed();
                StageCounters::add_ns(&counters.mapper_ns, map_ns);
                if let Some(t) = trace {
                    t.span(
                        "map",
                        "pipeline",
                        tids::INGEST,
                        t0,
                        map_ns,
                        &[
                            ("read", item.name.as_str().into()),
                            ("tasks", tasks.len().into()),
                        ],
                    );
                }
                let provenance = Arc::new(ReadProvenance {
                    anchors: map_stats.anchors,
                    chains: map_stats.chains,
                    candidates: map_stats.candidates,
                    map_ns: map_ns.as_nanos() as u64,
                });
                if let Some(reason) = counters.note_funnel(&map_stats) {
                    // Zero-candidate reads end here: account for them
                    // (satellite bugfix — they used to vanish from the
                    // metrics entirely) and give them their explain
                    // line and slow-ring observation.
                    let disp = disposition::unmapped(reason);
                    // An unmapped read's life ends at the mapper, so
                    // its mapping time *is* its end-to-end latency —
                    // recorded here to keep the one-sample-per-read
                    // histogram invariant.
                    counters.read_latency_ns.record(provenance.map_ns);
                    counters
                        .slow_reads
                        .observe(&item.name, provenance.map_ns, &disp);
                    if let Some(x) = &cfg.explain {
                        x.emit(&ExplainRecord {
                            read: &item.name,
                            disposition: &disp,
                            provenance: *provenance,
                            tasks: &[],
                            align_ns: 0,
                        });
                    }
                    read_seq += 1;
                    continue;
                }
                let read_tasks = tasks.len() as u32;
                let qname: Arc<str> = Arc::from(item.name.as_str());
                let qlen = item.seq.len();
                for task in tasks {
                    let bases = task.bases();
                    let meta = TaskMeta {
                        read_seq,
                        session: 0,
                        qname: Arc::clone(&qname),
                        qlen,
                        read_tasks,
                        tname: index.contig_name_shared(task.contig),
                        tsize: index.contig_len(task.contig),
                        tstart: task.ref_pos,
                        tlen: task.target.len(),
                        reverse: task.reverse,
                        max_edits: task.max_edits,
                        provenance: Arc::clone(&provenance),
                        submitted_at: t0,
                        enqueued_at: Instant::now(),
                    };
                    counters.task_in(bases);
                    counters.query_bases.add(task.query.len() as u64);
                    if task_q.push((task, meta), bases).is_err() {
                        return; // pipeline is aborting
                    }
                }
                read_seq += 1;
            }
            task_q.close();
        });

        // Stage 2: batch scheduler (coalesce by total bases).
        scope.spawn(|| {
            let mut builder = BatchBuilder::new(cfg.batch_bases);
            let dispatch = |batch: Batch| -> Result<(), ()> {
                counters.batch_dispatched(batch.tasks.len(), batch.bases);
                let build = batch.ready_at.duration_since(batch.build_started);
                counters.batch_build_ns.record_duration(build);
                if let Some(t) = trace {
                    t.span(
                        "batch-build",
                        "pipeline",
                        tids::SCHED,
                        batch.build_started,
                        build,
                        &[
                            ("batch", batch.seq.into()),
                            ("tasks", batch.tasks.len().into()),
                            ("bases", batch.bases.into()),
                        ],
                    );
                }
                batch_q.push(batch, 1).map_err(|_| ())
            };
            while let Some((task, meta)) = task_q.pop() {
                let t0 = Instant::now();
                counters
                    .task_queue_wait_ns
                    .record_duration(t0.duration_since(meta.enqueued_at));
                let flushed = builder.push(task, meta);
                StageCounters::add_ns(&counters.scheduler_ns, t0.elapsed());
                if let Some(batch) = flushed {
                    if dispatch(batch).is_err() {
                        return; // pipeline is aborting
                    }
                }
            }
            if let Some(batch) = builder.take() {
                if dispatch(batch).is_err() {
                    return;
                }
            }
            batch_q.close();
        });

        // Stage 3: backend dispatch.
        for _ in 0..dispatchers {
            scope.spawn(|| {
                let lat = counters.backend_lat(backend.name());
                while let Some(batch) = batch_q.pop() {
                    let t0 = Instant::now();
                    let queue_wait = t0.duration_since(batch.ready_at);
                    lat.queue_wait_ns.record_duration(queue_wait);
                    let alignments = match backend.align_batch(&batch.tasks) {
                        Ok(a) => a,
                        Err(e) => {
                            abort(PipelineError::Backend(e));
                            return;
                        }
                    };
                    let execute = t0.elapsed();
                    StageCounters::add_ns(&counters.backend_ns, execute);
                    lat.execute_ns.record_duration(execute);
                    lat.batches.inc();
                    lat.tasks.add(batch.tasks.len() as u64);
                    if let Some(t) = trace {
                        let args = [
                            ("batch", batch.seq.into()),
                            ("tasks", batch.tasks.len().into()),
                            ("bases", batch.bases.into()),
                        ];
                        t.span(
                            "queue-wait",
                            "pipeline",
                            tids::BACKEND0,
                            batch.ready_at,
                            queue_wait,
                            &args,
                        );
                        t.span("execute", "pipeline", tids::BACKEND0, t0, execute, &args);
                    }
                    let done = DoneBatch {
                        seq: batch.seq,
                        metas: batch.metas,
                        alignments,
                        completed_at: Instant::now(),
                    };
                    // Task sequences drop here; the sink only needs
                    // metadata and CIGARs.
                    if result_q.push(done, 1).is_err() {
                        return;
                    }
                }
                if live_dispatchers.fetch_sub(1, Ordering::AcqRel) == 1 {
                    result_q.close();
                }
            });
        }

        // Stage 4: ordered sink (this thread).
        sink_result = sink_loop(
            &result_q,
            &counters,
            &mut on_record,
            &error,
            trace,
            cfg.explain.as_deref(),
        );
        if sink_result.is_err() {
            // Unblock the upstream stages so the scope can join.
            task_q.close();
            batch_q.close();
            result_q.close();
        }
    });

    if let Some(e) = error.into_inner().unwrap() {
        return Err(e);
    }
    sink_result?;

    Ok(PipelineMetrics::snapshot(
        &counters,
        wall0.elapsed(),
        index.metrics(),
        QueueMetrics {
            capacity: task_q.capacity(),
            pushed: task_q.total_pushed(),
            high_water: task_q.high_water(),
        },
        QueueMetrics {
            capacity: batch_q.capacity(),
            pushed: batch_q.total_pushed(),
            high_water: batch_q.high_water(),
        },
        QueueMetrics {
            capacity: result_q.capacity(),
            pushed: result_q.total_pushed(),
            high_water: result_q.high_water(),
        },
        // Drained once, after every dispatcher has joined, so the
        // snapshot sees the full run's engine instrumentation.
        backend.engine_stats(),
    ))
}

/// Accumulates one read's rows until all its tasks have reported.
struct ReadAcc {
    read_seq: u64,
    expected: u32,
    rows: Vec<AlignRecord>,
    /// Hint-vs-actual accounting per accepted candidate (explain and
    /// rescue telemetry; parallel to `rows` in arrival order).
    tasks: Vec<TaskExplain>,
    qname: Arc<str>,
    provenance: Arc<ReadProvenance>,
    submitted_at: Instant,
}

fn sink_loop<F>(
    result_q: &BoundedQueue<DoneBatch>,
    counters: &StageCounters,
    on_record: &mut F,
    error: &Mutex<Option<PipelineError>>,
    trace: Option<&TraceRecorder>,
    explain: Option<&ExplainSink>,
) -> Result<(), PipelineError>
where
    F: FnMut(&AlignRecord) -> std::io::Result<()>,
{
    let mut reorder: ReorderBuffer<DoneBatch> = ReorderBuffer::new();
    let mut acc: Option<ReadAcc> = None;

    let mut emit =
        |acc: &mut Option<ReadAcc>, counters: &StageCounters| -> Result<(), PipelineError> {
            if let Some(mut group) = acc.take() {
                debug_assert_eq!(
                    group.rows.len(),
                    group.expected as usize,
                    "read {} flushed before all its tasks reported",
                    group.read_seq
                );
                // cached_key: the CIGAR-string tiebreak is built once
                // per row, not once per comparison.
                group.rows.sort_by_cached_key(AlignRecord::sort_key);
                for row in &group.rows {
                    on_record(row).map_err(PipelineError::Sink)?;
                    counters.records_out.inc();
                }
                let latency = group.submitted_at.elapsed();
                counters.read_latency_ns.record_duration(latency);
                counters.reads_aligned.inc();
                let disp = if group.tasks.iter().any(|t| t.rescued) {
                    counters.reads_rescued.inc();
                    disposition::RESCUED
                } else {
                    disposition::ALIGNED
                };
                counters
                    .slow_reads
                    .observe(&group.qname, latency.as_nanos() as u64, disp);
                if let Some(x) = explain {
                    x.emit(&ExplainRecord {
                        read: &group.qname,
                        disposition: disp,
                        provenance: *group.provenance,
                        tasks: &group.tasks,
                        align_ns: latency.as_nanos() as u64,
                    });
                }
                if let Some(t) = trace {
                    t.span(
                        "read",
                        "pipeline",
                        tids::READS,
                        group.submitted_at,
                        latency,
                        &[
                            ("read", (&*group.qname).into()),
                            ("records", group.rows.len().into()),
                        ],
                    );
                }
            }
            Ok(())
        };

    while let Some(done) = result_q.pop() {
        for batch in reorder.push(done.seq, done) {
            let t0 = Instant::now();
            let batch_seq = batch.seq;
            counters
                .reorder_wait_ns
                .record_duration(t0.duration_since(batch.completed_at));
            for (meta, aln) in batch.metas.iter().zip(batch.alignments) {
                counters.task_out(meta.qlen + meta.tlen);
                let Some(aln) = aln else {
                    let latency = meta.submitted_at.elapsed();
                    counters.reads_failed.inc();
                    counters.slow_reads.observe(
                        &meta.qname,
                        latency.as_nanos() as u64,
                        disposition::FAILED_NO_ALIGNMENT,
                    );
                    if let Some(x) = explain {
                        // The read's earlier tasks (if any finished)
                        // are in the accumulator; report what we have.
                        let done_tasks = match &acc {
                            Some(a) if a.read_seq == meta.read_seq => a.tasks.as_slice(),
                            _ => &[],
                        };
                        x.emit(&ExplainRecord {
                            read: &meta.qname,
                            disposition: disposition::FAILED_NO_ALIGNMENT,
                            provenance: *meta.provenance,
                            tasks: done_tasks,
                            align_ns: latency.as_nanos() as u64,
                        });
                    }
                    return Err(PipelineError::NoAlignment {
                        read: meta.qname.to_string(),
                    });
                };
                if acc.as_ref().is_some_and(|a| a.read_seq != meta.read_seq) {
                    emit(&mut acc, counters)?;
                }
                let group = acc.get_or_insert_with(|| ReadAcc {
                    read_seq: meta.read_seq,
                    expected: meta.read_tasks,
                    rows: Vec::with_capacity(meta.read_tasks as usize),
                    tasks: Vec::with_capacity(meta.read_tasks as usize),
                    qname: Arc::clone(&meta.qname),
                    provenance: Arc::clone(&meta.provenance),
                    submitted_at: meta.submitted_at,
                });
                let rescued = meta
                    .max_edits
                    .is_some_and(|k| aln.edit_distance > k as usize);
                if rescued {
                    counters.tasks_rescued.inc();
                }
                group.tasks.push(TaskExplain {
                    hint: meta.max_edits,
                    edits: aln.edit_distance as u64,
                    rescued,
                });
                group.rows.push(AlignRecord::new(
                    &meta.qname,
                    meta.qlen,
                    &meta.tname,
                    meta.tsize,
                    meta.tstart,
                    meta.tlen,
                    meta.reverse,
                    &aln,
                ));
            }
            StageCounters::add_ns(&counters.sink_ns, t0.elapsed());
            if let Some(t) = trace {
                t.span(
                    "sink",
                    "pipeline",
                    tids::SINK,
                    t0,
                    t0.elapsed(),
                    &[("batch", batch_seq.into())],
                );
            }
        }
    }
    if error.lock().unwrap().is_some() {
        // Aborting: the failed batch never arrives, so later batches
        // may be stranded in the reorder buffer and the current read
        // may be incomplete. Drop both rather than emitting a partial
        // read; run_pipeline returns the recorded error.
        return Ok(());
    }
    debug_assert!(reorder.is_empty(), "reorder buffer drained");
    emit(&mut acc, counters)
}
