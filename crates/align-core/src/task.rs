//! Batch containers for alignment workloads.
//!
//! The mapper produces *candidate locations*: (read slice, reference
//! slice) pairs that the aligners then verify. The paper's evaluation
//! aligns 138,929 such pairs; [`TaskBatch`] is the unit that flows into
//! the CPU thread pool and the GPU launch.

use crate::seq::Seq;

/// One candidate alignment task: a query (read or read window) paired
/// with the target slice it should be aligned to, globally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignTask {
    /// Identifier of the read this task came from.
    pub read_id: u32,
    /// Index of the reference contig the target slice was cut from
    /// (for reporting only; 0 for single-contig references).
    pub contig: u32,
    /// Start of the target slice on its contig, in contig-local
    /// coordinates (for reporting only).
    pub ref_pos: usize,
    /// The query sequence.
    pub query: Seq,
    /// The target sequence.
    pub target: Seq,
    /// True when `query` is the reverse complement of the original
    /// read (the mapper orients queries to the mapping strand; this
    /// records which strand that was, for reporting only).
    pub reverse: bool,
    /// Optional upper-bound hint on the edit distance of this pair,
    /// derived by the mapper from chain quality. Purely a performance
    /// hint: engines may run a tighter error band first, but must fall
    /// back to their full budget when the band comes up empty, so the
    /// reported alignment never depends on this value.
    pub max_edits: Option<u32>,
}

impl AlignTask {
    /// Construct a forward-strand task on contig 0.
    pub fn new(read_id: u32, ref_pos: usize, query: Seq, target: Seq) -> AlignTask {
        AlignTask {
            read_id,
            contig: 0,
            ref_pos,
            query,
            target,
            reverse: false,
            max_edits: None,
        }
    }

    /// Record which strand the query was oriented to.
    pub fn oriented(mut self, reverse: bool) -> AlignTask {
        self.reverse = reverse;
        self
    }

    /// Record which contig the target slice belongs to.
    pub fn in_contig(mut self, contig: u32) -> AlignTask {
        self.contig = contig;
        self
    }

    /// Attach an edit-distance upper-bound hint (see [`AlignTask::max_edits`]).
    pub fn with_edit_bound(mut self, max_edits: u32) -> AlignTask {
        self.max_edits = Some(max_edits);
        self
    }

    /// Total number of bases involved (used for throughput accounting).
    pub fn bases(&self) -> usize {
        self.query.len() + self.target.len()
    }
}

/// A batch of alignment tasks plus aggregate statistics.
#[derive(Debug, Clone, Default)]
pub struct TaskBatch {
    /// The tasks, in submission order.
    pub tasks: Vec<AlignTask>,
}

impl TaskBatch {
    /// An empty batch.
    pub fn new() -> TaskBatch {
        TaskBatch::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Add a task.
    pub fn push(&mut self, task: AlignTask) {
        self.tasks.push(task);
    }

    /// Total bases across all tasks.
    pub fn total_bases(&self) -> usize {
        self.tasks.iter().map(AlignTask::bases).sum()
    }

    /// Total query bases (the throughput denominator used in
    /// EXPERIMENTS.md: aligned read-bases per second).
    pub fn total_query_bases(&self) -> usize {
        self.tasks.iter().map(|t| t.query.len()).sum()
    }

    /// Mean query length, or 0 for an empty batch.
    pub fn mean_query_len(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.total_query_bases() as f64 / self.tasks.len() as f64
    }

    /// Split into chunks of at most `chunk` tasks (GPU launch sizing).
    pub fn chunks(&self, chunk: usize) -> impl Iterator<Item = &[AlignTask]> {
        self.tasks.chunks(chunk.max(1))
    }
}

impl FromIterator<AlignTask> for TaskBatch {
    fn from_iter<T: IntoIterator<Item = AlignTask>>(iter: T) -> TaskBatch {
        TaskBatch {
            tasks: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    fn task(q: &str, t: &str) -> AlignTask {
        AlignTask::new(0, 0, seq(q), seq(t))
    }

    #[test]
    fn batch_accounting() {
        let mut b = TaskBatch::new();
        assert!(b.is_empty());
        b.push(task("ACGT", "ACG"));
        b.push(task("AC", "ACGT"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_bases(), 13);
        assert_eq!(b.total_query_bases(), 6);
        assert!((b.mean_query_len() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_mean_is_zero() {
        assert_eq!(TaskBatch::new().mean_query_len(), 0.0);
    }

    #[test]
    fn chunking() {
        let b: TaskBatch = (0..10)
            .map(|i| AlignTask::new(i, 0, seq("A"), seq("A")))
            .collect();
        let chunks: Vec<_> = b.chunks(4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        // chunk size 0 is clamped to 1 rather than panicking
        assert_eq!(b.chunks(0).count(), 10);
    }
}
