//! DNA alphabet and 2-bit packed sequences.
//!
//! Every aligner in the suite operates on [`Seq`], a 2-bit packed DNA
//! sequence. Packing matters for two reasons: the workload generator
//! produces multi-megabase references, and the GPU kernels copy sequence
//! windows into (capacity-limited) simulated shared memory, so the byte
//! footprint is part of what the paper's experiments measure.

use crate::AlignError;

/// A DNA base. The discriminant is the 2-bit code used by [`Seq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Decode a 2-bit code (`0..=3`). Values above 3 are masked.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 3 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// Parse an ASCII byte (`ACGTacgt`).
    #[inline]
    pub fn from_ascii(b: u8) -> Result<Base, AlignError> {
        match b {
            b'A' | b'a' => Ok(Base::A),
            b'C' | b'c' => Ok(Base::C),
            b'G' | b'g' => Ok(Base::G),
            b'T' | b't' => Ok(Base::T),
            other => Err(AlignError::BadBase(other)),
        }
    }

    /// The uppercase ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement.
    #[inline]
    pub fn complement(self) -> Base {
        // A<->T (0<->3), C<->G (1<->2): complement code = 3 - code.
        Base::from_code(3 - self as u8)
    }

    /// The 2-bit code.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }
}

impl core::fmt::Display for Base {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

/// A 2-bit packed DNA sequence.
///
/// Bases are stored 4 per byte, little-endian within the byte (base `i`
/// lives at bits `2*(i%4)` of byte `i/4`).
///
/// ```
/// use align_core::{Seq, Base};
/// let s = Seq::from_ascii(b"ACGTAC").unwrap();
/// assert_eq!(s.len(), 6);
/// assert_eq!(s.get(2), Base::G);
/// assert_eq!(s.to_string(), "ACGTAC");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Seq {
    packed: Vec<u8>,
    len: usize,
}

impl Seq {
    /// Create an empty sequence.
    pub fn new() -> Seq {
        Seq::default()
    }

    /// Create an empty sequence with capacity for `n` bases.
    pub fn with_capacity(n: usize) -> Seq {
        Seq {
            packed: Vec::with_capacity(n.div_ceil(4)),
            len: 0,
        }
    }

    /// Parse from ASCII (`ACGTacgt`).
    pub fn from_ascii(bytes: &[u8]) -> Result<Seq, AlignError> {
        let mut s = Seq::with_capacity(bytes.len());
        for &b in bytes {
            s.push(Base::from_ascii(b)?);
        }
        Ok(s)
    }

    /// Build from a slice of bases.
    pub fn from_bases(bases: &[Base]) -> Seq {
        let mut s = Seq::with_capacity(bases.len());
        for &b in bases {
            s.push(b);
        }
        s
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bytes of packed storage.
    #[inline]
    pub fn packed_bytes(&self) -> usize {
        self.packed.len()
    }

    /// Append one base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let bit = (self.len % 4) * 2;
        if bit == 0 {
            self.packed.push(base as u8);
        } else {
            *self.packed.last_mut().expect("non-empty packed buffer") |= (base as u8) << bit;
        }
        self.len += 1;
    }

    /// Read base `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let byte = self.packed[i / 4];
        Base::from_code(byte >> ((i % 4) * 2))
    }

    /// Read base `i` without the bounds check being observable as a
    /// sequence-level panic message (still safe; plain slice indexing).
    #[inline]
    pub fn get_code(&self, i: usize) -> u8 {
        (self.packed[i / 4] >> ((i % 4) * 2)) & 3
    }

    /// Iterate over bases.
    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Copy out the sub-sequence `[start, start+len)`, clamped to the end.
    pub fn slice(&self, start: usize, len: usize) -> Seq {
        let end = (start + len).min(self.len);
        let n = end.saturating_sub(start);
        let mut out = Seq::with_capacity(n);
        out.extend_from(self, start, n);
        out
    }

    /// Append `other[start, start+len)` (clamped to `other`'s end) to
    /// this sequence, copying whole packed bytes instead of one base at
    /// a time. When the source range is misaligned relative to the
    /// destination, each output byte is assembled from the two source
    /// bytes that straddle it.
    pub fn extend_from(&mut self, other: &Seq, start: usize, len: usize) {
        let end = start.saturating_add(len).min(other.len);
        if start >= end {
            return;
        }
        let mut p = start;
        // Bring the destination to a byte boundary (at most 3 pushes).
        while p < end && !self.len.is_multiple_of(4) {
            self.push(other.get(p));
            p += 1;
        }
        // Bulk copy: one output byte per 4 source bases.
        let shift = (p % 4) * 2;
        if shift == 0 {
            let nbytes = (end - p) / 4;
            self.packed
                .extend_from_slice(&other.packed[p / 4..p / 4 + nbytes]);
            self.len += nbytes * 4;
            p += nbytes * 4;
        } else {
            while p + 4 <= end {
                let b = p / 4;
                // Bases p..p+4 span source bytes b and b+1; base p+3
                // lives in byte b+1 and p+3 < other.len, so b+1 is in
                // bounds. Overshifted high bits of byte b+1 drop out.
                self.packed
                    .push((other.packed[b] >> shift) | (other.packed[b + 1] << (8 - shift)));
                self.len += 4;
                p += 4;
            }
        }
        // Tail of fewer than 4 bases keeps the invariant that unused
        // high bits of the last byte are zero.
        while p < end {
            self.push(other.get(p));
            p += 1;
        }
    }

    /// Reverse of this sequence (not complemented).
    pub fn reversed(&self) -> Seq {
        let mut out = Seq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i));
        }
        out
    }

    /// Reverse complement.
    pub fn reverse_complement(&self) -> Seq {
        let mut out = Seq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// Unpack into a `Vec<Base>`.
    pub fn to_bases(&self) -> Vec<Base> {
        self.iter().collect()
    }

    /// Unpack into ASCII bytes.
    pub fn to_ascii(&self) -> Vec<u8> {
        self.iter().map(Base::to_ascii).collect()
    }

    /// Hamming distance against another sequence of the same length.
    pub fn hamming(&self, other: &Seq) -> Option<usize> {
        if self.len != other.len {
            return None;
        }
        Some(
            (0..self.len)
                .filter(|&i| self.get_code(i) != other.get_code(i))
                .count(),
        )
    }

    /// Fraction of G/C bases, or 0 for an empty sequence.
    pub fn gc_content(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let gc = self
            .iter()
            .filter(|b| matches!(b, Base::C | Base::G))
            .count();
        gc as f64 / self.len as f64
    }
}

impl core::fmt::Display for Seq {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for b in self.iter() {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

// Debug shows a truncated sequence rather than the raw packed bytes; long
// references would otherwise flood test output.
impl core::fmt::Debug for Seq {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        const MAX: usize = 64;
        write!(f, "Seq(len={}, \"", self.len)?;
        for b in self.iter().take(MAX) {
            write!(f, "{b}")?;
        }
        if self.len > MAX {
            write!(f, "…")?;
        }
        write!(f, "\")")
    }
}

impl FromIterator<Base> for Seq {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Seq {
        let mut s = Seq::new();
        for b in iter {
            s.push(b);
        }
        s
    }
}

impl core::str::FromStr for Seq {
    type Err = AlignError;

    fn from_str(s: &str) -> Result<Seq, AlignError> {
        Seq::from_ascii(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_roundtrip_ascii() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()).unwrap(), b);
            assert_eq!(
                Base::from_ascii(b.to_ascii().to_ascii_lowercase()).unwrap(),
                b
            );
        }
    }

    #[test]
    fn base_rejects_garbage() {
        assert_eq!(Base::from_ascii(b'N'), Err(AlignError::BadBase(b'N')));
        assert_eq!(Base::from_ascii(b'x'), Err(AlignError::BadBase(b'x')));
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let text = b"ACGTACGTTTGGCCAA";
        let s = Seq::from_ascii(text).unwrap();
        assert_eq!(s.len(), 16);
        assert_eq!(s.to_ascii(), text.to_vec());
        // 16 bases fit in exactly 4 bytes.
        assert_eq!(s.packed_bytes(), 4);
    }

    #[test]
    fn pack_partial_byte() {
        let s = Seq::from_ascii(b"ACG").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.packed_bytes(), 1);
        assert_eq!(s.get(0), Base::A);
        assert_eq!(s.get(1), Base::C);
        assert_eq!(s.get(2), Base::G);
    }

    #[test]
    fn slice_and_reverse() {
        let s = Seq::from_ascii(b"ACGTAC").unwrap();
        assert_eq!(s.slice(1, 3).to_string(), "CGT");
        assert_eq!(s.slice(4, 100).to_string(), "AC");
        assert_eq!(s.reversed().to_string(), "CATGCA");
        assert_eq!(s.reverse_complement().to_string(), "GTACGT");
    }

    #[test]
    fn hamming_distance() {
        let a = Seq::from_ascii(b"ACGT").unwrap();
        let b = Seq::from_ascii(b"AGGA").unwrap();
        assert_eq!(a.hamming(&b), Some(2));
        let c = Seq::from_ascii(b"ACG").unwrap();
        assert_eq!(a.hamming(&c), None);
    }

    #[test]
    fn gc_content() {
        let s = Seq::from_ascii(b"GGCC").unwrap();
        assert!((s.gc_content() - 1.0).abs() < 1e-12);
        let s = Seq::from_ascii(b"ATAT").unwrap();
        assert!(s.gc_content().abs() < 1e-12);
        let s = Seq::from_ascii(b"ACGT").unwrap();
        assert!((s.gc_content() - 0.5).abs() < 1e-12);
        assert!(Seq::new().gc_content().abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let s = Seq::from_ascii(b"AC").unwrap();
        let _ = s.get(2);
    }

    #[test]
    fn from_iterator_and_str() {
        let s: Seq = "ACGT".parse().unwrap();
        let t: Seq = s.iter().collect();
        assert_eq!(s, t);
    }

    #[test]
    fn debug_truncates() {
        let long = Seq::from_bases(&[Base::A; 100]);
        let dbg = format!("{long:?}");
        assert!(dbg.contains("len=100"));
        assert!(dbg.contains('…'));
    }

    /// Reference implementation: the per-base copy `slice` used to be.
    fn naive_slice(s: &Seq, start: usize, len: usize) -> Seq {
        let end = (start + len).min(s.len());
        let mut out = Seq::new();
        for i in start..end.max(start) {
            out.push(s.get(i));
        }
        out
    }

    #[test]
    fn packed_slice_matches_naive_at_every_phase() {
        // 37 bases: last packed byte is partial, exercising the tail.
        let text = b"ACGTACGTTTGGCCAATGCATGCATACGGTACATGCA";
        let s = Seq::from_ascii(text).unwrap();
        for start in 0..=s.len() {
            for len in 0..=s.len() + 2 {
                let fast = s.slice(start, len);
                let naive = naive_slice(&s, start, len);
                assert_eq!(fast, naive, "start={start} len={len}");
                assert_eq!(fast.to_ascii(), naive.to_ascii());
            }
        }
    }

    #[test]
    fn extend_from_appends_at_every_destination_phase() {
        let src = Seq::from_ascii(b"TGCATGCATGCAT").unwrap();
        for dst_len in 0..5 {
            for start in 0..src.len() {
                let mut dst = Seq::from_bases(&vec![Base::G; dst_len]);
                let mut expect = dst.clone();
                dst.extend_from(&src, start, src.len());
                for i in start..src.len() {
                    expect.push(src.get(i));
                }
                assert_eq!(dst, expect, "dst_len={dst_len} start={start}");
            }
        }
    }

    #[test]
    fn extend_from_pushes_compose_with_packed_copies() {
        // Interleave per-base pushes and bulk appends; the unused-high-
        // bits invariant of the last byte must survive each transition.
        let src = Seq::from_ascii(b"ACGTACGTACGTACGTACGT").unwrap();
        let mut s = Seq::new();
        s.push(Base::T);
        s.extend_from(&src, 3, 9);
        s.push(Base::A);
        s.extend_from(&src, 0, 20);
        assert_eq!(s.to_string(), format!("TTACGTACGTA{src}"));
    }

    #[test]
    fn extend_from_clamps_and_handles_empty_ranges() {
        let src = Seq::from_ascii(b"ACGT").unwrap();
        let mut s = Seq::new();
        s.extend_from(&src, 4, 10); // start at end: no-op
        s.extend_from(&src, 9, 1); // start past end: no-op
        s.extend_from(&src, 2, 0); // empty: no-op
        assert!(s.is_empty());
        s.extend_from(&src, 2, usize::MAX); // clamped, no overflow
        assert_eq!(s.to_string(), "GT");
    }
}

#[cfg(test)]
mod slice_properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_seq(max_len: usize) -> impl Strategy<Value = Seq> {
        proptest::collection::vec(0u8..4, 0..=max_len)
            .prop_map(|codes| codes.iter().map(|&c| Base::from_code(c)).collect())
    }

    proptest! {
        /// The packed-word `slice` is observationally identical to a
        /// per-base copy for every (start, len), including ranges that
        /// run past the end and start beyond the sequence.
        #[test]
        fn slice_equals_per_base_copy(s in arb_seq(300), start in 0usize..320, len in 0usize..320) {
            let end = (start + len).min(s.len());
            let mut naive = Seq::new();
            for i in start..end.max(start) {
                naive.push(s.get(i));
            }
            let fast = s.slice(start, len);
            prop_assert_eq!(&fast, &naive);
            prop_assert_eq!(fast.to_ascii(), naive.to_ascii());
            prop_assert_eq!(fast.packed_bytes(), naive.packed_bytes());
        }
    }
}
