//! Multi-contig references.
//!
//! Real references are not one sequence: a genome assembly is a set of
//! named contigs (chromosomes, scaffolds), and mapping output reports
//! *contig names and contig-local coordinates*. [`Reference`] is that
//! set, plus the global-coordinate map the sharded index uses
//! internally: contigs are laid out back to back in file order, contig
//! `i` occupying the global interval `[offset(i), offset(i) + len_i)`,
//! and [`Reference::locate`] inverts a global position back to
//! `(contig, local)`. No sequence ever spans two contigs — windows,
//! shards, and chains are all clamped to contig boundaries by the
//! consumers of this type.

use std::sync::Arc;

use crate::seq::Seq;

/// One named reference sequence (a chromosome / scaffold / record of a
/// multi-FASTA file).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contig {
    /// Record name (FASTA header up to the first whitespace). Shared
    /// (`Arc<str>`) because every alignment record of this contig
    /// carries it.
    pub name: Arc<str>,
    /// The contig sequence.
    pub seq: Seq,
}

impl Contig {
    /// Contig length in bases.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True when the contig holds no bases.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A multi-contig reference: named contigs in file order plus their
/// global-coordinate layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Reference {
    contigs: Vec<Contig>,
    /// `offsets[i]` is the global start of contig `i`; one extra entry
    /// holds the total length so `offsets.windows(2)` spans every
    /// contig.
    offsets: Vec<usize>,
}

impl Reference {
    /// An empty reference (no contigs).
    pub fn new() -> Reference {
        Reference::default()
    }

    /// A single-contig reference — the shape every pre-multi-contig
    /// workload has.
    pub fn single(name: &str, seq: Seq) -> Reference {
        let mut r = Reference::new();
        r.push(name, seq);
        r
    }

    /// Append a contig. Names must be unique: loaders
    /// (`readsim::read_multi_fastx`) validate with a hashed check and
    /// report duplicates as typed errors with file context; this
    /// debug-assert only guards programmatic construction, and is not
    /// a linear scan per push in release builds (assemblies can have
    /// 100k+ scaffolds).
    pub fn push(&mut self, name: &str, seq: Seq) {
        debug_assert!(
            !self.contigs.iter().any(|c| &*c.name == name),
            "duplicate contig name {name:?}"
        );
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let total = *self.offsets.last().unwrap() + seq.len();
        self.offsets.push(total);
        self.contigs.push(Contig {
            name: Arc::from(name),
            seq,
        });
    }

    /// Number of contigs.
    pub fn num_contigs(&self) -> usize {
        self.contigs.len()
    }

    /// True when the reference has no contigs.
    pub fn is_empty(&self) -> bool {
        self.contigs.is_empty()
    }

    /// Total bases across all contigs.
    pub fn total_len(&self) -> usize {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// The contigs in file order.
    pub fn contigs(&self) -> &[Contig] {
        &self.contigs
    }

    /// Contig `i`.
    ///
    /// # Panics
    /// Panics if `i >= num_contigs()`.
    pub fn contig(&self, i: usize) -> &Contig {
        &self.contigs[i]
    }

    /// Global start of contig `i`.
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Map a global position to `(contig index, contig-local position)`.
    /// Positions on a boundary belong to the *following* contig (every
    /// contig owns `[offset, offset + len)`); empty contigs own no
    /// positions.
    ///
    /// # Panics
    /// Panics if `gpos >= total_len()`.
    pub fn locate(&self, gpos: usize) -> (usize, usize) {
        assert!(
            gpos < self.total_len(),
            "global position {gpos} out of range (total {})",
            self.total_len()
        );
        // partition_point: first contig whose *end* is past gpos.
        let i = self.offsets[1..].partition_point(|&end| end <= gpos);
        (i, gpos - self.offsets[i])
    }

    /// Consume the reference, yielding its contigs in file order. The
    /// sharded index uses this to take ownership of the contig
    /// sequences so it can drop each one after slicing it — the
    /// monolithic per-contig `Seq`s do not outlive the index build.
    pub fn into_contigs(self) -> Vec<Contig> {
        self.contigs
    }

    /// A short human-readable label for banners and status lines:
    /// the contig name for single-contig references, `name(+N)` for
    /// multi-contig ones.
    pub fn label(&self) -> String {
        match self.contigs.as_slice() {
            [] => "(empty)".to_string(),
            [one] => one.name.to_string(),
            [first, rest @ ..] => format!("{}(+{})", first.name, rest.len()),
        }
    }
}

impl FromIterator<(String, Seq)> for Reference {
    fn from_iter<T: IntoIterator<Item = (String, Seq)>>(iter: T) -> Reference {
        let mut r = Reference::new();
        for (name, seq) in iter {
            r.push(&name, seq);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn layout_and_locate_roundtrip() {
        let mut r = Reference::new();
        r.push("chr1", seq("ACGTACGT")); // [0, 8)
        r.push("chr2", seq("GG")); // [8, 10)
        r.push("chr3", seq("TTTTT")); // [10, 15)
        assert_eq!(r.num_contigs(), 3);
        assert_eq!(r.total_len(), 15);
        assert_eq!(r.offset(0), 0);
        assert_eq!(r.offset(1), 8);
        assert_eq!(r.offset(2), 10);
        assert_eq!(r.locate(0), (0, 0));
        assert_eq!(r.locate(7), (0, 7));
        assert_eq!(r.locate(8), (1, 0));
        assert_eq!(r.locate(9), (1, 1));
        assert_eq!(r.locate(10), (2, 0));
        assert_eq!(r.locate(14), (2, 4));
    }

    #[test]
    fn empty_contigs_own_no_positions() {
        let mut r = Reference::new();
        r.push("a", seq("ACGT")); // [0, 4)
        r.push("empty", Seq::new()); // [4, 4)
        r.push("b", seq("GG")); // [4, 6)
        assert_eq!(r.locate(3), (0, 3));
        // The boundary position belongs to the first contig that owns
        // bases there — the empty contig is skipped.
        assert_eq!(r.locate(4), (2, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_out_of_range() {
        Reference::single("c", seq("ACGT")).locate(4);
    }

    // debug_assert-backed: release builds skip the per-push scan
    // (loaders do the hashed duplicate check), so the panic only
    // exists with debug assertions on.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate contig name")]
    fn duplicate_names_rejected() {
        let mut r = Reference::single("chr1", seq("ACGT"));
        r.push("chr1", seq("GGGG"));
    }

    #[test]
    fn labels() {
        assert_eq!(Reference::new().label(), "(empty)");
        assert_eq!(Reference::single("chrM", seq("ACGT")).label(), "chrM");
        let mut r = Reference::single("chr1", seq("ACGT"));
        r.push("chr2", seq("GG"));
        r.push("chr3", seq("TT"));
        assert_eq!(r.label(), "chr1(+2)");
    }

    #[test]
    fn empty_reference_is_empty() {
        let r = Reference::new();
        assert!(r.is_empty());
        assert_eq!(r.total_len(), 0);
        assert_eq!(r.num_contigs(), 0);
    }

    #[test]
    fn from_iterator_collects_in_order() {
        let r: Reference = vec![
            ("a".to_string(), seq("ACGT")),
            ("b".to_string(), seq("GGCC")),
        ]
        .into_iter()
        .collect();
        assert_eq!(r.num_contigs(), 2);
        assert_eq!(&*r.contig(1).name, "b");
        assert_eq!(r.offset(1), 4);
    }
}
