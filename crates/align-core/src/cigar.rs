//! CIGAR strings: the alignment encoding shared by every aligner.
//!
//! Conventions (fixed for the whole suite, see DESIGN.md §5):
//!
//! * the *query* is the read / pattern, the *target* is the reference /
//!   text;
//! * [`CigarOp::Match`] (`=`, printed `M`) and [`CigarOp::Mismatch`]
//!   (`X`) consume one base of each;
//! * [`CigarOp::Ins`] (`I`) consumes **query only** (a base present in
//!   the read but not the reference);
//! * [`CigarOp::Del`] (`D`) consumes **target only**.
//!
//! The unit-cost edit distance of an alignment is `#X + #I + #D`.

use crate::seq::Seq;
use crate::AlignError;

/// One alignment operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Query base equals target base; consumes both.
    Match,
    /// Query base differs from target base; consumes both. Cost 1.
    Mismatch,
    /// Base present in the query only. Cost 1.
    Ins,
    /// Base present in the target only. Cost 1.
    Del,
}

impl CigarOp {
    /// The character used in the textual representation.
    #[inline]
    pub fn symbol(self) -> char {
        match self {
            CigarOp::Match => 'M',
            CigarOp::Mismatch => 'X',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
        }
    }

    /// Unit edit cost of the operation.
    #[inline]
    pub fn cost(self) -> usize {
        match self {
            CigarOp::Match => 0,
            _ => 1,
        }
    }

    /// Number of query bases consumed.
    #[inline]
    pub fn query_len(self) -> usize {
        match self {
            CigarOp::Match | CigarOp::Mismatch | CigarOp::Ins => 1,
            CigarOp::Del => 0,
        }
    }

    /// Number of target bases consumed.
    #[inline]
    pub fn target_len(self) -> usize {
        match self {
            CigarOp::Match | CigarOp::Mismatch | CigarOp::Del => 1,
            CigarOp::Ins => 0,
        }
    }

    /// Parse from the symbol produced by [`CigarOp::symbol`]. `=` is
    /// accepted as an alias for `M`.
    pub fn from_symbol(c: char) -> Option<CigarOp> {
        match c {
            'M' | '=' => Some(CigarOp::Match),
            'X' => Some(CigarOp::Mismatch),
            'I' => Some(CigarOp::Ins),
            'D' => Some(CigarOp::Del),
            _ => None,
        }
    }
}

/// A run-length encoded CIGAR.
///
/// ```
/// use align_core::{Cigar, CigarOp};
/// let mut c = Cigar::new();
/// c.push(CigarOp::Match);
/// c.push(CigarOp::Match);
/// c.push(CigarOp::Ins);
/// assert_eq!(c.to_string(), "2M1I");
/// assert_eq!(c.edit_cost(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cigar {
    runs: Vec<(u32, CigarOp)>,
}

impl Cigar {
    /// An empty CIGAR.
    pub fn new() -> Cigar {
        Cigar::default()
    }

    /// Build from individual operations, run-length encoding as we go.
    pub fn from_ops<I: IntoIterator<Item = CigarOp>>(ops: I) -> Cigar {
        let mut c = Cigar::new();
        for op in ops {
            c.push(op);
        }
        c
    }

    /// Parse the textual form (e.g. `"12M1X3D"`).
    pub fn parse(s: &str) -> Result<Cigar, AlignError> {
        let mut c = Cigar::new();
        let mut count: u64 = 0;
        let mut saw_digit = false;
        for ch in s.chars() {
            if let Some(d) = ch.to_digit(10) {
                count = count * 10 + d as u64;
                saw_digit = true;
                if count > u32::MAX as u64 {
                    return Err(AlignError::InvalidCigar {
                        reason: format!("run length overflow in {s:?}"),
                    });
                }
            } else if let Some(op) = CigarOp::from_symbol(ch) {
                if !saw_digit || count == 0 {
                    return Err(AlignError::InvalidCigar {
                        reason: format!("operation {ch:?} without positive count"),
                    });
                }
                c.push_run(count as u32, op);
                count = 0;
                saw_digit = false;
            } else {
                return Err(AlignError::InvalidCigar {
                    reason: format!("unexpected character {ch:?}"),
                });
            }
        }
        if saw_digit {
            return Err(AlignError::InvalidCigar {
                reason: "trailing count without operation".to_string(),
            });
        }
        Ok(c)
    }

    /// Append one operation, merging with the final run when possible.
    #[inline]
    pub fn push(&mut self, op: CigarOp) {
        self.push_run(1, op);
    }

    /// Append `count` copies of `op`.
    pub fn push_run(&mut self, count: u32, op: CigarOp) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.1 == op {
                last.0 += count;
                return;
            }
        }
        self.runs.push((count, op));
    }

    /// Append another CIGAR.
    pub fn extend_cigar(&mut self, other: &Cigar) {
        for &(n, op) in &other.runs {
            self.push_run(n, op);
        }
    }

    /// The run-length encoded form.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.runs
    }

    /// Iterate over individual operations (expanding runs).
    pub fn ops(&self) -> impl Iterator<Item = CigarOp> + '_ {
        self.runs
            .iter()
            .flat_map(|&(n, op)| std::iter::repeat_n(op, n as usize))
    }

    /// True if there are no operations.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total number of operations (expanded).
    pub fn op_len(&self) -> usize {
        self.runs.iter().map(|&(n, _)| n as usize).sum()
    }

    /// Unit edit cost (`#X + #I + #D`).
    pub fn edit_cost(&self) -> usize {
        self.runs
            .iter()
            .map(|&(n, op)| n as usize * op.cost())
            .sum()
    }

    /// Query bases consumed.
    pub fn query_len(&self) -> usize {
        self.runs
            .iter()
            .map(|&(n, op)| n as usize * op.query_len())
            .sum()
    }

    /// Target bases consumed.
    pub fn target_len(&self) -> usize {
        self.runs
            .iter()
            .map(|&(n, op)| n as usize * op.target_len())
            .sum()
    }

    /// Reverse the CIGAR in place (used when an aligner produced the
    /// operations back-to-front).
    pub fn reverse(&mut self) {
        self.runs.reverse();
    }

    /// A reversed copy.
    pub fn reversed(&self) -> Cigar {
        let mut c = self.clone();
        c.reverse();
        // Merge runs that became adjacent after the reversal.
        let mut merged = Cigar::new();
        for &(n, op) in &c.runs {
            merged.push_run(n, op);
        }
        merged
    }

    /// Validate this CIGAR against a concrete sequence pair:
    ///
    /// * the query/target lengths consumed must equal the sequence
    ///   lengths exactly (global alignment);
    /// * every `M` must sit on equal bases and every `X` on unequal ones.
    pub fn validate(&self, query: &Seq, target: &Seq) -> Result<(), AlignError> {
        let (mut qi, mut ti) = (0usize, 0usize);
        for op in self.ops() {
            match op {
                CigarOp::Match | CigarOp::Mismatch => {
                    if qi >= query.len() || ti >= target.len() {
                        return Err(AlignError::InvalidCigar {
                            reason: format!(
                                "diagonal op at q={qi},t={ti} beyond sequence ends ({}x{})",
                                query.len(),
                                target.len()
                            ),
                        });
                    }
                    let equal = query.get_code(qi) == target.get_code(ti);
                    if equal != (op == CigarOp::Match) {
                        return Err(AlignError::InvalidCigar {
                            reason: format!(
                                "{} at q={qi},t={ti} but bases are {}equal",
                                op.symbol(),
                                if equal { "" } else { "not " }
                            ),
                        });
                    }
                    qi += 1;
                    ti += 1;
                }
                CigarOp::Ins => {
                    if qi >= query.len() {
                        return Err(AlignError::InvalidCigar {
                            reason: format!("I at q={qi} beyond query end {}", query.len()),
                        });
                    }
                    qi += 1;
                }
                CigarOp::Del => {
                    if ti >= target.len() {
                        return Err(AlignError::InvalidCigar {
                            reason: format!("D at t={ti} beyond target end {}", target.len()),
                        });
                    }
                    ti += 1;
                }
            }
        }
        if qi != query.len() || ti != target.len() {
            return Err(AlignError::InvalidCigar {
                reason: format!(
                    "consumed {qi}/{} query and {ti}/{} target bases",
                    query.len(),
                    target.len()
                ),
            });
        }
        Ok(())
    }

    /// Per-operation counts `(matches, mismatches, insertions, deletions)`.
    pub fn op_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for &(n, op) in &self.runs {
            let n = n as usize;
            match op {
                CigarOp::Match => c.0 += n,
                CigarOp::Mismatch => c.1 += n,
                CigarOp::Ins => c.2 += n,
                CigarOp::Del => c.3 += n,
            }
        }
        c
    }
}

impl core::fmt::Display for Cigar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for &(n, op) in &self.runs {
            write!(f, "{n}{}", op.symbol())?;
        }
        Ok(())
    }
}

impl FromIterator<CigarOp> for Cigar {
    fn from_iter<T: IntoIterator<Item = CigarOp>>(iter: T) -> Cigar {
        Cigar::from_ops(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn op_properties() {
        assert_eq!(CigarOp::Match.cost(), 0);
        assert_eq!(CigarOp::Mismatch.cost(), 1);
        assert_eq!(CigarOp::Ins.query_len(), 1);
        assert_eq!(CigarOp::Ins.target_len(), 0);
        assert_eq!(CigarOp::Del.query_len(), 0);
        assert_eq!(CigarOp::Del.target_len(), 1);
    }

    #[test]
    fn run_length_merging() {
        let c = Cigar::from_ops([
            CigarOp::Match,
            CigarOp::Match,
            CigarOp::Ins,
            CigarOp::Ins,
            CigarOp::Match,
        ]);
        assert_eq!(c.runs().len(), 3);
        assert_eq!(c.to_string(), "2M2I1M");
        assert_eq!(c.op_len(), 5);
    }

    #[test]
    fn parse_roundtrip() {
        let c = Cigar::parse("12M1X3D2I").unwrap();
        assert_eq!(c.to_string(), "12M1X3D2I");
        assert_eq!(c.edit_cost(), 6);
        assert_eq!(c.query_len(), 15);
        assert_eq!(c.target_len(), 16);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Cigar::parse("M").is_err());
        assert!(Cigar::parse("3").is_err());
        assert!(Cigar::parse("0M").is_err());
        assert!(Cigar::parse("3Q").is_err());
        assert!(Cigar::parse("4294967296M").is_err());
    }

    #[test]
    fn parse_accepts_equals_alias() {
        let c = Cigar::parse("3=1X").unwrap();
        assert_eq!(c.to_string(), "3M1X");
    }

    #[test]
    fn validate_accepts_correct_alignment() {
        // query ACGT vs target AGGT: A=A, C!=G, G=G, T=T -> 1M1X2M
        let c = Cigar::parse("1M1X2M").unwrap();
        c.validate(&seq("ACGT"), &seq("AGGT")).unwrap();
    }

    #[test]
    fn validate_rejects_wrong_match() {
        let c = Cigar::parse("4M").unwrap();
        assert!(c.validate(&seq("ACGT"), &seq("AGGT")).is_err());
    }

    #[test]
    fn validate_rejects_wrong_lengths() {
        let c = Cigar::parse("3M").unwrap();
        assert!(c.validate(&seq("ACGT"), &seq("ACG")).is_err());
        let c = Cigar::parse("4M").unwrap();
        assert!(c.validate(&seq("ACGT"), &seq("ACG")).is_err());
    }

    #[test]
    fn validate_indels() {
        // query ACGT vs target AGT: delete query C -> 1M1I2M
        let c = Cigar::parse("1M1I2M").unwrap();
        c.validate(&seq("ACGT"), &seq("AGT")).unwrap();
        // query AGT vs target ACGT -> 1M1D2M
        let c = Cigar::parse("1M1D2M").unwrap();
        c.validate(&seq("AGT"), &seq("ACGT")).unwrap();
    }

    #[test]
    fn validate_overrun_is_rejected() {
        let c = Cigar::parse("1M1I").unwrap();
        assert!(c.validate(&seq("A"), &seq("A")).is_err());
        let c = Cigar::parse("1M1D").unwrap();
        assert!(c.validate(&seq("A"), &seq("A")).is_err());
    }

    #[test]
    fn reversed_merges_adjacent_runs() {
        let mut c = Cigar::new();
        c.push_run(2, CigarOp::Match);
        c.push_run(1, CigarOp::Ins);
        c.push_run(3, CigarOp::Match);
        let r = c.reversed();
        assert_eq!(r.to_string(), "3M1I2M");
    }

    #[test]
    fn op_counts() {
        let c = Cigar::parse("2M1X3I4D").unwrap();
        assert_eq!(c.op_counts(), (2, 1, 3, 4));
    }

    #[test]
    fn empty_cigar_validates_empty_pair() {
        Cigar::new().validate(&Seq::new(), &Seq::new()).unwrap();
        assert!(Cigar::new().validate(&seq("A"), &Seq::new()).is_err());
    }
}
