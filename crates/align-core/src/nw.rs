//! Quadratic dynamic-programming reference implementations.
//!
//! These are the *oracles* of the test suite: simple, obviously-correct
//! Needleman–Wunsch edit-distance code that every production aligner
//! (GenASM, the Myers/Edlib baseline, the KSW2 baseline, the GPU kernels)
//! is checked against. They are intentionally unoptimized.

use crate::alignment::Alignment;
use crate::cigar::{Cigar, CigarOp};
use crate::seq::Seq;

/// Unit-cost global edit distance, O(nm) time, O(min(n,m)) space.
pub fn nw_distance(query: &Seq, target: &Seq) -> usize {
    let (m, n) = (query.len(), target.len());
    if m == 0 {
        return n;
    }
    if n == 0 {
        return m;
    }
    // One row per target position; row indexed by query position.
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for ti in 1..=n {
        cur[0] = ti;
        let tb = target.get_code(ti - 1);
        for qi in 1..=m {
            let sub = prev[qi - 1] + usize::from(query.get_code(qi - 1) != tb);
            let del = prev[qi] + 1; // consume target only
            let ins = cur[qi - 1] + 1; // consume query only
            cur[qi] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Unit-cost global edit distance with a full traceback, O(nm) space.
///
/// Traceback preference is diagonal > deletion > insertion, which keeps
/// indels left-shifted against the target; any preference yields an
/// optimal-cost alignment.
pub fn nw_align(query: &Seq, target: &Seq) -> Alignment {
    let (m, n) = (query.len(), target.len());
    // dp[t][q]
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (qi, cell) in dp[0].iter_mut().enumerate() {
        *cell = qi;
    }
    for ti in 1..=n {
        dp[ti][0] = ti;
        let tb = target.get_code(ti - 1);
        for qi in 1..=m {
            let sub = dp[ti - 1][qi - 1] + usize::from(query.get_code(qi - 1) != tb);
            let del = dp[ti - 1][qi] + 1;
            let ins = dp[ti][qi - 1] + 1;
            dp[ti][qi] = sub.min(del).min(ins);
        }
    }
    // Traceback from (n, m) to (0, 0), collecting ops in reverse.
    let mut rev: Vec<CigarOp> = Vec::with_capacity(m.max(n));
    let (mut ti, mut qi) = (n, m);
    while ti > 0 || qi > 0 {
        let here = dp[ti][qi];
        if ti > 0 && qi > 0 {
            let eq = query.get_code(qi - 1) == target.get_code(ti - 1);
            if dp[ti - 1][qi - 1] + usize::from(!eq) == here {
                rev.push(if eq {
                    CigarOp::Match
                } else {
                    CigarOp::Mismatch
                });
                ti -= 1;
                qi -= 1;
                continue;
            }
        }
        if ti > 0 && dp[ti - 1][qi] + 1 == here {
            rev.push(CigarOp::Del);
            ti -= 1;
            continue;
        }
        debug_assert!(qi > 0 && dp[ti][qi - 1] + 1 == here);
        rev.push(CigarOp::Ins);
        qi -= 1;
    }
    rev.reverse();
    Alignment::from_cigar(Cigar::from_ops(rev))
}

/// Banded unit-cost global edit distance (Ukkonen band of half-width
/// `band`). Returns `None` if the optimal path may leave the band, i.e.
/// when the computed distance exceeds what the band can certify.
///
/// With `band >= |n - m| + d_opt` the result equals [`nw_distance`].
pub fn banded_nw_distance(query: &Seq, target: &Seq, band: usize) -> Option<usize> {
    let (m, n) = (query.len(), target.len());
    if n.abs_diff(m) > band {
        return None;
    }
    if m == 0 {
        return Some(n);
    }
    if n == 0 {
        return Some(m);
    }
    const INF: usize = usize::MAX / 4;
    // Row ti holds query columns [lo, hi].
    let mut prev = vec![INF; m + 1];
    let mut cur = vec![INF; m + 1];
    for (qi, cell) in prev.iter_mut().enumerate().take(band.min(m) + 1) {
        *cell = qi;
    }
    for ti in 1..=n {
        let lo = ti.saturating_sub(band);
        let hi = (ti + band).min(m);
        let tb = target.get_code(ti - 1);
        if lo == 0 {
            cur[0] = ti;
        } else {
            cur[lo - 1] = INF; // guard cell left of the band
        }
        let start = lo.max(1);
        for qi in start..=hi {
            let sub = prev[qi - 1] + usize::from(query.get_code(qi - 1) != tb);
            let del = prev[qi].saturating_add(1);
            let ins = cur[qi - 1].saturating_add(1);
            cur[qi] = sub.min(del).min(ins);
        }
        if hi < m {
            cur[hi + 1] = INF; // guard cell right of the band
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let d = prev[m];
    // The band certifies optimality only if d can't be improved by a path
    // leaving the band; such a path needs > band - |n-m| gap moves.
    if d >= INF || d > band {
        None
    } else {
        Some(d)
    }
}

/// Edit distance via band doubling: correct for all inputs, and fast when
/// the distance is small. This mirrors how Edlib/Myers pick `k`.
pub fn doubling_nw_distance(query: &Seq, target: &Seq) -> usize {
    let mut band = query.len().abs_diff(target.len()).max(1);
    loop {
        if let Some(d) = banded_nw_distance(query, target, band) {
            return d;
        }
        if band >= query.len() + target.len() {
            // Degenerate: one side empty handled in banded; this is a
            // safety net that can't be hit for nonempty inputs.
            return nw_distance(query, target);
        }
        band *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn distance_basic_cases() {
        assert_eq!(nw_distance(&seq("ACGT"), &seq("ACGT")), 0);
        assert_eq!(nw_distance(&seq("ACGT"), &seq("AGGT")), 1);
        assert_eq!(nw_distance(&seq("ACGT"), &seq("AGT")), 1);
        assert_eq!(nw_distance(&seq("AGT"), &seq("ACGT")), 1);
        assert_eq!(nw_distance(&seq("ACGT"), &Seq::new()), 4);
        assert_eq!(nw_distance(&Seq::new(), &seq("ACGT")), 4);
        assert_eq!(nw_distance(&Seq::new(), &Seq::new()), 0);
    }

    #[test]
    fn distance_is_symmetric_for_unit_costs() {
        let a = seq("ACGTACGTGG");
        let b = seq("TACGATCG");
        assert_eq!(nw_distance(&a, &b), nw_distance(&b, &a));
    }

    #[test]
    fn align_matches_distance_and_validates() {
        let cases = [
            ("ACGT", "ACGT"),
            ("ACGT", "AGGT"),
            ("ACGT", "AGT"),
            ("AGT", "ACGT"),
            ("AAAA", "TTTT"),
            ("ACACAC", "CACACA"),
            ("A", "TTTTTTTT"),
        ];
        for (q, t) in cases {
            let (q, t) = (seq(q), seq(t));
            let a = nw_align(&q, &t);
            a.check(&q, &t).unwrap();
            assert_eq!(a.edit_distance, nw_distance(&q, &t), "{q:?} vs {t:?}");
        }
    }

    #[test]
    fn align_empty_sides() {
        let q = seq("ACG");
        let a = nw_align(&q, &Seq::new());
        a.check(&q, &Seq::new()).unwrap();
        assert_eq!(a.edit_distance, 3);
        let a = nw_align(&Seq::new(), &q);
        a.check(&Seq::new(), &q).unwrap();
        assert_eq!(a.edit_distance, 3);
    }

    #[test]
    fn banded_matches_full_when_band_sufficient() {
        let a = seq("ACGTACGTGGATTACA");
        let b = seq("ACGTCCGTGGATTACA");
        let d = nw_distance(&a, &b);
        assert_eq!(banded_nw_distance(&a, &b, d + 1), Some(d));
    }

    #[test]
    fn banded_refuses_too_narrow_band() {
        let a = seq("AAAAAAAA");
        let b = seq("TTTTTTTT");
        // distance 8, band 2 cannot certify it
        assert_eq!(banded_nw_distance(&a, &b, 2), None);
    }

    #[test]
    fn banded_refuses_length_gap_beyond_band() {
        let a = seq("AAAA");
        let b = seq("AAAAAAAAAA");
        assert_eq!(banded_nw_distance(&a, &b, 2), None);
    }

    #[test]
    fn doubling_always_equals_full() {
        let cases = [
            ("ACGT", "ACGT"),
            ("AAAA", "TTTT"),
            ("ACGTACGTACGT", "TGCA"),
            ("A", ""),
            ("", "ACGT"),
        ];
        for (q, t) in cases {
            let (q, t) = (seq(q), seq(t));
            assert_eq!(doubling_nw_distance(&q, &t), nw_distance(&q, &t));
        }
    }
}
