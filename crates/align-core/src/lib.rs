//! # align-core
//!
//! Shared substrate for the GenASM reproduction suite.
//!
//! This crate contains everything the aligners, simulators and the
//! workload pipeline have in common:
//!
//! * [`seq`] — 2-bit packed DNA sequences ([`Seq`]) and the base alphabet
//!   ([`Base`]).
//! * [`cigar`] — CIGAR strings ([`Cigar`], [`CigarOp`]) with validation
//!   and cost accounting.
//! * [`alignment`] — the [`Alignment`] record produced by every aligner
//!   in the suite.
//! * [`nw`] — quadratic dynamic-programming *oracles* (full and banded
//!   Needleman–Wunsch over unit edit costs) used as ground truth in tests
//!   and accuracy experiments.
//! * [`task`] — batch containers describing candidate (read, reference)
//!   pairs flowing from the mapper into the aligners.
//! * [`reference`] — multi-contig references ([`Reference`]): named
//!   contigs with the global-coordinate layout the sharded index uses.
//!
//! The crate is deliberately dependency-light; anything random or
//! parallel lives in the crates that need it.

pub mod alignment;
pub mod cigar;
pub mod nw;
pub mod reference;
pub mod seq;
pub mod task;

pub use alignment::{Alignment, GlobalAligner, ReusableAligner};
pub use cigar::{Cigar, CigarOp};
pub use nw::{banded_nw_distance, doubling_nw_distance, nw_align, nw_distance};
pub use reference::{Contig, Reference};
pub use seq::{Base, Seq};
pub use task::{AlignTask, TaskBatch};

/// Errors produced by the alignment substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// A sequence contained a byte that is not one of `ACGTacgt`.
    BadBase(u8),
    /// A CIGAR failed validation against the sequence pair.
    InvalidCigar {
        /// Human-readable reason for the failure.
        reason: String,
    },
    /// An aligner was asked for more errors than it supports.
    BudgetExceeded {
        /// The requested edit budget.
        requested: usize,
        /// The maximum the aligner supports.
        max: usize,
    },
    /// The aligner could not find an alignment within its edit budget.
    NoAlignment,
    /// An empty sequence was passed to an aligner that requires content.
    EmptyInput,
}

impl core::fmt::Display for AlignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AlignError::BadBase(b) => write!(f, "invalid base byte 0x{b:02x}"),
            AlignError::InvalidCigar { reason } => write!(f, "invalid CIGAR: {reason}"),
            AlignError::BudgetExceeded { requested, max } => {
                write!(f, "edit budget {requested} exceeds supported maximum {max}")
            }
            AlignError::NoAlignment => write!(f, "no alignment found within the edit budget"),
            AlignError::EmptyInput => write!(f, "empty input sequence"),
        }
    }
}

impl std::error::Error for AlignError {}

/// Convenient result alias for fallible substrate operations.
pub type Result<T> = core::result::Result<T, AlignError>;
