//! The alignment record shared by every aligner in the suite.

use crate::cigar::Cigar;
use crate::seq::Seq;
use crate::AlignError;

/// Result of aligning one query against one target (global alignment).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Unit edit cost of the alignment (`#X + #I + #D`).
    pub edit_distance: usize,
    /// The alignment path. Always covers the whole query and target.
    pub cigar: Cigar,
}

impl Alignment {
    /// Build an alignment record, deriving the distance from the CIGAR.
    pub fn from_cigar(cigar: Cigar) -> Alignment {
        Alignment {
            edit_distance: cigar.edit_cost(),
            cigar,
        }
    }

    /// Check internal consistency and validity against the sequence pair.
    ///
    /// This is the correctness contract every aligner in the suite must
    /// satisfy; tests call it on every produced alignment.
    pub fn check(&self, query: &Seq, target: &Seq) -> Result<(), AlignError> {
        if self.cigar.edit_cost() != self.edit_distance {
            return Err(AlignError::InvalidCigar {
                reason: format!(
                    "recorded distance {} != CIGAR cost {}",
                    self.edit_distance,
                    self.cigar.edit_cost()
                ),
            });
        }
        self.cigar.validate(query, target)
    }

    /// Identity over alignment columns = matches / (M + X + I + D), in
    /// `[0, 1]`. This is the identity reported in the PAF-like records
    /// (it needs no sequences, only the CIGAR); an empty alignment is
    /// defined as identity 1.
    pub fn column_identity(&self) -> f64 {
        let (m, x, i, d) = self.cigar.op_counts();
        let cols = m + x + i + d;
        if cols == 0 {
            return 1.0;
        }
        m as f64 / cols as f64
    }

    /// Identity = matches / max(query, target) length, in `[0, 1]`.
    pub fn identity(&self, query: &Seq, target: &Seq) -> f64 {
        let denom = query.len().max(target.len());
        if denom == 0 {
            return 1.0;
        }
        let (m, _, _, _) = self.cigar.op_counts();
        m as f64 / denom as f64
    }
}

/// The interface every global aligner in the suite implements, so the
/// harness, the examples and the benches can treat GenASM, the baselines
/// and the GPU path uniformly.
pub trait GlobalAligner {
    /// Align `query` against `target` end-to-end and return the alignment.
    fn align(&self, query: &Seq, target: &Seq) -> crate::Result<Alignment>;

    /// Short human-readable name used in reports (e.g. `"ksw2"`).
    fn name(&self) -> &'static str;
}

/// A [`GlobalAligner`] that can amortize its scratch allocations across
/// alignments through a caller-owned workspace.
///
/// Batch drivers hold one workspace per worker thread and call
/// [`ReusableAligner::align_reusing`] for every task that worker
/// processes, so scratch buffers (DP rows, traceback tables, staging)
/// are allocated once per worker instead of once per alignment — the
/// standard production idiom (Scrooge, edlib). Aligners without
/// reusable scratch use `Workspace = ()` and simply delegate to
/// [`GlobalAligner::align`], which lets the bench harness drive every
/// backend through one code path and measure the reuse win honestly.
pub trait ReusableAligner: GlobalAligner {
    /// The scratch state; `Default` gives each worker a cold workspace.
    type Workspace: Default + Send;

    /// Align one pair, borrowing all scratch from `ws`.
    fn align_reusing(
        &self,
        ws: &mut Self::Workspace,
        query: &Seq,
        target: &Seq,
    ) -> crate::Result<Alignment>;
}

/// A pretty-printer producing the classic three-row alignment view,
/// useful in examples and debugging output.
pub fn format_alignment(query: &Seq, target: &Seq, aln: &Alignment, width: usize) -> String {
    let mut qrow = String::new();
    let mut mrow = String::new();
    let mut trow = String::new();
    let (mut qi, mut ti) = (0usize, 0usize);
    for op in aln.cigar.ops() {
        use crate::cigar::CigarOp::*;
        match op {
            Match | Mismatch => {
                qrow.push(query.get(qi).to_ascii() as char);
                trow.push(target.get(ti).to_ascii() as char);
                mrow.push(if op == Match { '|' } else { '*' });
                qi += 1;
                ti += 1;
            }
            Ins => {
                qrow.push(query.get(qi).to_ascii() as char);
                trow.push('-');
                mrow.push(' ');
                qi += 1;
            }
            Del => {
                qrow.push('-');
                trow.push(target.get(ti).to_ascii() as char);
                mrow.push(' ');
                ti += 1;
            }
        }
    }
    let mut out = String::new();
    let width = width.max(10);
    let total = qrow.len();
    let mut pos = 0;
    while pos < total {
        let end = (pos + width).min(total);
        out.push_str("Q: ");
        out.push_str(&qrow[pos..end]);
        out.push('\n');
        out.push_str("   ");
        out.push_str(&mrow[pos..end]);
        out.push('\n');
        out.push_str("T: ");
        out.push_str(&trow[pos..end]);
        out.push('\n');
        pos = end;
        if pos < total {
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cigar::CigarOp;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn from_cigar_derives_distance() {
        let c = Cigar::parse("2M1X1I").unwrap();
        let a = Alignment::from_cigar(c);
        assert_eq!(a.edit_distance, 2);
    }

    #[test]
    fn check_detects_distance_mismatch() {
        let mut a = Alignment::from_cigar(Cigar::parse("2M").unwrap());
        a.edit_distance = 5;
        assert!(a.check(&seq("AC"), &seq("AC")).is_err());
    }

    #[test]
    fn identity_of_perfect_match() {
        let a = Alignment::from_cigar(Cigar::from_ops(vec![CigarOp::Match; 4]));
        assert!((a.identity(&seq("ACGT"), &seq("ACGT")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_empty_pair_is_one() {
        let a = Alignment::from_cigar(Cigar::new());
        assert!((a.identity(&Seq::new(), &Seq::new()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pretty_print_shape() {
        let q = seq("ACGT");
        let t = seq("AGT");
        let a = Alignment::from_cigar(Cigar::parse("1M1I2M").unwrap());
        a.check(&q, &t).unwrap();
        let s = format_alignment(&q, &t, &a, 80);
        assert!(s.contains("Q: ACGT"));
        assert!(s.contains("T: A-GT"));
    }

    #[test]
    fn pretty_print_wraps() {
        let q = Seq::from_bases(&[crate::seq::Base::A; 25]);
        let t = q.clone();
        let a = Alignment::from_cigar(Cigar::from_ops(vec![CigarOp::Match; 25]));
        let s = format_alignment(&q, &t, &a, 10);
        // 25 columns at width 10 -> 3 blocks of 3 lines separated by blanks.
        assert_eq!(s.lines().filter(|l| l.starts_with("Q: ")).count(), 3);
    }
}
