//! `genasm` — the command-line entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    if let Err(e) = genasm_cli::run(&args, &mut out) {
        eprintln!("genasm: {e}");
        std::process::exit(e.code);
    }
}
