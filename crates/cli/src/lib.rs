//! # genasm-cli
//!
//! The `genasm` command-line tool: the suite's functionality packaged
//! the way a downstream user consumes it.
//!
//! ```text
//! genasm simulate --genome-len 500000 --reads 20 --read-len 5000 \
//!                 --error 0.10 --seed 7 --ref ref.fa --out reads.fq
//! genasm map      --ref ref.fa --reads reads.fq
//! genasm align    --ref ref.fa --reads reads.fq [--aligner genasm|genasm-base|edlib|ksw2]
//! genasm pipeline --ref ref.fa --reads reads.fq [--backend cpu|gpu-sim|edlib|ksw2]
//! genasm serve    --ref ref.fa --listen unix:/tmp/genasm.sock
//! genasm submit   --to unix:/tmp/genasm.sock --reads reads.fq
//! genasm ctl      ping|stats|stats-json|stats-prom|shutdown --to unix:/tmp/genasm.sock
//! genasm filter   --pattern GATTACA --text ref.fa -k 2
//! ```
//!
//! `align` is the one-shot batch path (load everything, align
//! everything); `pipeline` streams the reads through the bounded-queue
//! pipeline in [`genasm_pipeline`]; `serve` keeps that pipeline
//! resident behind a socket ([`genasm_server`]) and `submit` is its
//! client. All of them emit the same records (`--format tsv|paf`) and
//! produce **byte-identical output** for the same workload — the
//! record formatting and per-read ordering live in one place,
//! [`genasm_pipeline::AlignRecord`]. All subcommands are plain
//! functions over `Write` so the integration tests drive them without
//! spawning processes (`serve` blocks until a client sends
//! `ctl shutdown`, then drains gracefully).

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};

use align_core::{Reference, Seq};
use genasm_pipeline::{
    disposition, AlignRecord, Backend, BackendChoice, CpuBackend, EdlibBackend, ExplainRecord,
    ExplainSink, Ksw2Backend, OutputFormat, PipelineConfig, PipelineMetrics, ReadInput,
    ReadProvenance, RouterConfig, ServiceConfig, TaskExplain, TraceRecorder,
};
use genasm_server::client::SubmitOptions;
use genasm_server::{Endpoint, Server, ServerConfig};
use mapper::{CandidateParams, ShardedIndex};
use readsim::{
    contig_lengths, read_fastx, read_multi_fastx, read_single_fastx, reads_to_records,
    simulate_reads, write_fasta, write_fastq, ErrorModel, FastxReader, FastxRecord, Genome,
    GenomeConfig, ReadConfig,
};

/// CLI failure: message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code to use.
    pub code: i32,
}

impl CliError {
    fn usage(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 2,
        }
    }

    fn runtime(msg: impl Into<String>) -> CliError {
        CliError {
            message: msg.into(),
            code: 1,
        }
    }
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

/// Simple flag parser: `--name value` pairs plus positionals.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, CliError> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--").or_else(|| a.strip_prefix('-')) {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage(format!("flag --{name} needs a value")))?;
                pairs.push((name.to_string(), value.clone()));
            } else {
                return Err(CliError::usage(format!("unexpected argument {a:?}")));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn req(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::usage(format!("missing required flag --{name}")))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::usage(format!("bad value for --{name}: {v:?}"))),
        }
    }
}

/// Top-level dispatch. `args` excludes the program name.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    match cmd.as_str() {
        "simulate" => cmd_simulate(&Flags::parse(rest)?, out),
        "map" => cmd_map(&Flags::parse(rest)?, out),
        "align" => cmd_align(&Flags::parse(rest)?, out),
        "pipeline" => cmd_pipeline(&Flags::parse(rest)?, out),
        "serve" => cmd_serve(&Flags::parse(rest)?, out),
        "submit" => cmd_submit(&Flags::parse(rest)?, out),
        "ctl" => cmd_ctl(rest, out),
        "filter" => cmd_filter(&Flags::parse(rest)?, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_err)?;
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown subcommand {other:?}\n{USAGE}"
        ))),
    }
}

/// The usage text.
pub const USAGE: &str = "usage:
  genasm simulate --genome-len N --reads N --read-len N [--contigs N] [--error R] [--seed S]
                  --ref FILE --out FILE
  genasm map      --ref FILE --reads FILE [--max-per-read N] [--threads N] [--shards N]
                  [--shard-overlap BASES]
  genasm align    --ref FILE --reads FILE [--aligner genasm|genasm-base|edlib|ksw2] [--max-per-read N]
                  [--threads N] [--shards N] [--shard-overlap BASES] [--format tsv|paf]
                  [--explain FILE]
  genasm pipeline --ref FILE --reads FILE [--backend cpu|gpu-sim|edlib|ksw2|auto] [--batch-bases N]
                  [--queue-depth N] [--dispatchers N] [--max-per-read N] [--threads N]
                  [--shards N] [--shard-overlap BASES] [--format tsv|paf]
                  [--metrics on|json] [--trace FILE] [--explain FILE]
                  [--route-explore-every N] [--route-pinned on]
  genasm serve    --ref FILE --listen ENDPOINT [--backend cpu|gpu-sim|edlib|ksw2|auto] [--format tsv|paf]
                  [--max-sessions N] [--linger-ms N] [--batch-bases N] [--queue-depth N]
                  [--dispatchers N] [--max-per-read N] [--threads N] [--shards N]
                  [--shard-overlap BASES] [--metrics on|json] [--trace FILE] [--explain FILE]
                  [--session-output-cap BYTES] [--overflow throttle|evict]
                  [--session-inflight-reads N] [--session-inflight-bases N]
                  [--idle-timeout-ms N] [--route-explore-every N] [--route-pinned on]
  genasm submit   --to ENDPOINT --reads FILE [--backend cpu|gpu-sim|edlib|ksw2|auto] [--format tsv|paf]
                  [--explain FILE]
  genasm ctl      ping|stats|stats-json|stats-prom|shutdown --to ENDPOINT
  genasm ctl      top --to ENDPOINT [--interval-ms N] [--frames N]
  genasm filter   --pattern SEQ --text FILE [-k N]

ENDPOINT is unix:PATH, tcp:HOST:PORT, or HOST:PORT. `serve` runs until a
client sends `genasm ctl shutdown`; record lines from `submit` are
byte-identical to `align` on the same reads (status goes to stderr).
References may be multi-contig FASTA: records report contig names and
contig-local coordinates, and shards never straddle contig boundaries.
`--metrics json` prints a single-line machine-readable snapshot to
stderr; `--trace FILE` records a Chrome trace-event timeline (open in
Perfetto or about://tracing). `--explain FILE` streams one
genasm-explain/v1 JSON line per read (funnel counts, hint-vs-edits per
candidate, final disposition) without changing record output.
`--backend auto` routes each batch to cpu or gpu-sim from live latency
metrics; output stays byte-identical to a fixed backend
(`--route-pinned on` makes the routing trace itself deterministic,
`--route-explore-every N` bounds how stale a backend's estimate may go).
`ctl stats-json` / `ctl stats-prom` print a live server snapshot as
JSON / Prometheus text on stdout; `ctl top` streams one
genasm-stat-frame/v1 JSON object per line (every --interval-ms,
stopping after --frames frames; 0 streams until server shutdown).";

fn io_err(e: std::io::Error) -> CliError {
    CliError::runtime(format!("I/O error: {e}"))
}

fn load_fastx(path: &str) -> Result<Vec<FastxRecord>, CliError> {
    let f = File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    read_fastx(BufReader::new(f)).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

/// Load a (possibly multi-contig) reference: every FASTA record
/// becomes one named contig. Zero records or duplicate contig names
/// are errors.
fn load_reference(path: &str) -> Result<Reference, CliError> {
    let f = File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    read_multi_fastx(BufReader::new(f)).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

/// Load an input that must be a single sequence (the `filter` text).
/// Multi-record FASTA is rejected with an error naming every extra
/// record.
fn load_single_sequence(path: &str) -> Result<(String, Seq), CliError> {
    let f = File::open(path).map_err(|e| CliError::runtime(format!("cannot open {path}: {e}")))?;
    let rec = read_single_fastx(BufReader::new(f))
        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    Ok((rec.name, rec.seq))
}

/// Apply `--threads N` to the global Rayon pool (0 = all cores). Only
/// acts when the flag is present, so plain invocations keep the
/// default pool.
fn configure_threads(flags: &Flags) -> Result<(), CliError> {
    if flags.get("threads").is_none() {
        return Ok(());
    }
    let n: usize = flags.num("threads", 0)?;
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .map_err(|e| CliError::runtime(format!("cannot size thread pool: {e}")))
}

fn cmd_simulate(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let genome_len: usize = flags.num("genome-len", 500_000)?;
    let n_reads: usize = flags.num("reads", 20)?;
    let read_len: usize = flags.num("read-len", 5_000)?;
    let error: f64 = flags.num("error", 0.10)?;
    let seed: u64 = flags.num("seed", 42)?;
    let contigs: usize = flags.num("contigs", 1)?;
    if contigs == 0 {
        return Err(CliError::usage("--contigs must be at least 1"));
    }
    let ref_path = flags.req("ref")?;
    let out_path = flags.req("out")?;

    if contigs == 1 {
        // The historical single-contig shape, byte-for-byte.
        let genome = Genome::generate(&GenomeConfig::human_like(genome_len, seed));
        let reads = simulate_reads(
            &genome,
            &ReadConfig {
                count: n_reads,
                length: read_len,
                errors: ErrorModel::pacbio_clr(error),
                rc_fraction: 0.5,
                seed: seed ^ 0x5eed,
            },
        );
        let f = File::create(ref_path).map_err(io_err)?;
        write_fasta(
            BufWriter::new(f),
            &[FastxRecord::fasta("synthetic_ref", genome.seq.clone())],
        )
        .map_err(io_err)?;
        let f = File::create(out_path).map_err(io_err)?;
        write_fastq(BufWriter::new(f), &reads_to_records(&reads)).map_err(io_err)?;
        writeln!(
            out,
            "wrote {} bp reference to {ref_path} and {} reads to {out_path}",
            genome.seq.len(),
            reads.len()
        )
        .map_err(io_err)?;
        return Ok(());
    }

    // Multi-contig: deliberately *unequal* contig sizes (real
    // assemblies are skewed), one independent genome per contig,
    // reads drawn round-robin so adjacent reads hit different
    // contigs. Read names encode the source contig and truth
    // coordinates so downstream tests can check contig fidelity.
    let lens = contig_lengths(genome_len, contigs);
    let mut ref_records = Vec::with_capacity(contigs);
    let mut pools = Vec::with_capacity(contigs);
    for (ci, &len) in lens.iter().enumerate() {
        if len < 2 * read_len + 2 {
            return Err(CliError::usage(format!(
                "contig {} would be {len} bases — too short for {read_len} bp reads; \
                 raise --genome-len or lower --contigs/--read-len",
                ci + 1
            )));
        }
        let name = format!("chr{}", ci + 1);
        let genome = Genome::generate(&GenomeConfig::human_like(len, seed + ci as u64 * 7919));
        let reads = simulate_reads(
            &genome,
            &ReadConfig {
                count: n_reads.div_ceil(contigs),
                length: read_len,
                errors: ErrorModel::pacbio_clr(error),
                rc_fraction: 0.5,
                seed: (seed ^ 0x5eed) + ci as u64,
            },
        );
        ref_records.push(FastxRecord::fasta(&name, genome.seq.clone()));
        pools.push((name, reads));
    }
    let mut read_records = Vec::with_capacity(n_reads);
    let mut cursors = vec![0usize; contigs];
    for i in 0..n_reads {
        let ci = i % contigs;
        let (name, pool) = &pools[ci];
        let r = &pool[cursors[ci]];
        cursors[ci] += 1;
        let rname = format!(
            "read{i}_{name}_pos{}_{}_{}",
            r.true_start,
            r.true_end,
            if r.reverse { "rev" } else { "fwd" }
        );
        read_records.push(FastxRecord::fastq(&rname, r.seq.clone(), r.qual.clone()));
    }
    let f = File::create(ref_path).map_err(io_err)?;
    write_fasta(BufWriter::new(f), &ref_records).map_err(io_err)?;
    let f = File::create(out_path).map_err(io_err)?;
    write_fastq(BufWriter::new(f), &read_records).map_err(io_err)?;
    writeln!(
        out,
        "wrote {} bp reference ({contigs} contigs) to {ref_path} and {} reads to {out_path}",
        lens.iter().sum::<usize>(),
        read_records.len()
    )
    .map_err(io_err)?;
    Ok(())
}

fn candidate_params(flags: &Flags) -> Result<CandidateParams, CliError> {
    let max_per_read: usize = flags.num("max-per-read", 100)?;
    Ok(CandidateParams {
        max_per_read,
        ..CandidateParams::default()
    })
}

/// `--format tsv|paf` (default tsv) for every record-emitting command.
fn output_format(flags: &Flags) -> Result<OutputFormat, CliError> {
    flags
        .get("format")
        .unwrap_or("tsv")
        .parse()
        .map_err(|e| CliError::usage(format!("{e}")))
}

/// `--metrics off|on|json` for `pipeline` and `serve`. Any value other
/// than `off` or `json` keeps the historical behaviour (human-readable
/// summary). Both go to stderr, so stdout stays byte-identical with
/// and without metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Off,
    Summary,
    Json,
}

fn metrics_mode(flags: &Flags) -> MetricsMode {
    match flags.get("metrics") {
        None | Some("off") => MetricsMode::Off,
        Some("json") => MetricsMode::Json,
        Some(_) => MetricsMode::Summary,
    }
}

fn emit_metrics(mode: MetricsMode, metrics: &PipelineMetrics) {
    match mode {
        MetricsMode::Off => {}
        MetricsMode::Summary => eprint!("{}", metrics.summary()),
        MetricsMode::Json => eprintln!("{}", metrics.to_json()),
    }
}

/// `--trace FILE`: record a Chrome trace-event JSON timeline of the
/// run. Returns `None` when the flag is absent (zero overhead).
fn trace_recorder(flags: &Flags) -> Result<Option<std::sync::Arc<TraceRecorder>>, CliError> {
    match flags.get("trace") {
        None => Ok(None),
        Some(path) => TraceRecorder::create(std::path::Path::new(path))
            .map(|t| Some(std::sync::Arc::new(t)))
            .map_err(|e| CliError::runtime(format!("cannot create trace file {path}: {e}"))),
    }
}

/// Close out a `--trace` file: write the closing bracket and flush, so
/// the file is loadable in `about://tracing` / Perfetto.
fn finish_trace(trace: &Option<std::sync::Arc<TraceRecorder>>) -> Result<(), CliError> {
    if let Some(t) = trace {
        t.finish()
            .map_err(|e| CliError::runtime(format!("cannot finalize trace file: {e}")))?;
    }
    Ok(())
}

/// `--explain FILE`: stream one `genasm-explain/v1` JSON line per
/// read — the per-read decision funnel, candidate hint-vs-edits
/// accounting, and final disposition. Returns `None` when the flag is
/// absent; record output is byte-identical either way (the sink
/// flushes every line itself, so there is nothing to finalize).
fn explain_sink(flags: &Flags) -> Result<Option<std::sync::Arc<ExplainSink>>, CliError> {
    match flags.get("explain") {
        None => Ok(None),
        Some(path) => {
            let f = File::create(path).map_err(|e| {
                CliError::runtime(format!("cannot create explain file {path}: {e}"))
            })?;
            Ok(Some(std::sync::Arc::new(ExplainSink::new(Box::new(f)))))
        }
    }
}

/// `--shards N` / `--shard-overlap BASES` for `align` and `pipeline`.
/// Defaults (1 shard, 256-base overlap) reproduce the unsharded path.
fn shard_params(flags: &Flags) -> Result<(usize, usize), CliError> {
    let shards: usize = flags.num("shards", 1)?;
    if shards == 0 {
        return Err(CliError::usage("--shards must be at least 1"));
    }
    let overlap: usize = flags.num("shard-overlap", 256)?;
    Ok((shards, overlap))
}

fn cmd_map(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let reference = load_reference(flags.req("ref")?)?;
    let reads = load_fastx(flags.req("reads")?)?;
    let params = candidate_params(flags)?;
    let (shards, shard_overlap) = shard_params(flags)?;
    configure_threads(flags)?;
    let index = ShardedIndex::build(reference, shards, shard_overlap);
    for r in &reads {
        let chains = index.chains_for_read(&r.seq, &params.chain);
        for (contig, c) in chains.iter().take(params.max_per_read) {
            // PAF-like: qname qlen qstart qend strand tname tlen tstart tend score anchors
            // tname/tlen/tstart/tend are the *contig* and contig-local
            // coordinates.
            writeln!(
                out,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.0}\t{}",
                r.name,
                r.seq.len(),
                c.read_start,
                c.read_end,
                if c.reverse { '-' } else { '+' },
                index.contig_name(*contig),
                index.contig_len(*contig),
                c.ref_start,
                c.ref_end,
                c.score,
                c.anchors
            )
            .map_err(io_err)?;
        }
    }
    Ok(())
}

/// The `--aligner` choices of `genasm align`, mirroring the
/// [`BackendKind`] pattern: parse failures list every valid name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AlignerKind {
    Genasm,
    GenasmBase,
    Edlib,
    Ksw2,
}

impl AlignerKind {
    const ALL: [(AlignerKind, &'static str); 4] = [
        (AlignerKind::Genasm, "genasm"),
        (AlignerKind::GenasmBase, "genasm-base"),
        (AlignerKind::Edlib, "edlib"),
        (AlignerKind::Ksw2, "ksw2"),
    ];

    fn create(&self) -> Box<dyn Backend> {
        match self {
            AlignerKind::Genasm => Box::new(CpuBackend::improved()),
            AlignerKind::GenasmBase => Box::new(CpuBackend::baseline()),
            AlignerKind::Edlib => Box::new(EdlibBackend::new()),
            AlignerKind::Ksw2 => Box::new(Ksw2Backend::new()),
        }
    }
}

impl std::str::FromStr for AlignerKind {
    type Err = CliError;

    fn from_str(s: &str) -> Result<AlignerKind, CliError> {
        AlignerKind::ALL
            .iter()
            .find(|(_, name)| *name == s)
            .map(|&(kind, _)| kind)
            .ok_or_else(|| {
                let names: Vec<String> = AlignerKind::ALL
                    .iter()
                    .map(|(_, n)| format!("'{n}'"))
                    .collect();
                CliError::usage(format!(
                    "unknown aligner '{s}'; valid aligners are {}",
                    names.join(", ")
                ))
            })
    }
}

/// One-shot batch alignment: load every read, generate every candidate,
/// align the whole batch through the chosen backend, print per-read
/// best-first records. This is the reference the streaming `pipeline`
/// subcommand must match byte-for-byte.
fn cmd_align(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let aligner_name = flags.get("aligner").unwrap_or("genasm");
    let aligner: AlignerKind = aligner_name.parse()?;
    let format = output_format(flags)?;
    let params = candidate_params(flags)?;
    let (shards, shard_overlap) = shard_params(flags)?;
    let explain = explain_sink(flags)?;
    configure_threads(flags)?;
    let reference = load_reference(flags.req("ref")?)?;
    let reads = load_fastx(flags.req("reads")?)?;
    let backend = aligner.create();
    // The build consumes the reference: candidate windows are cut from
    // the index's shard-local storage.
    let index = ShardedIndex::build(reference, shards, shard_overlap);

    // Generate all candidates up front (the one-shot shape), keeping
    // each read's funnel counts and mapping time for `--explain`.
    let mut tasks = Vec::new();
    let mut read_of_task = Vec::new();
    let mut funnel = Vec::with_capacity(reads.len());
    for (i, r) in reads.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let (cand, stats) = index.candidates_for_read_stats(i as u32, &r.seq, &params);
        funnel.push((stats, t0.elapsed().as_nanos() as u64));
        for t in cand {
            read_of_task.push(i);
            tasks.push(t);
        }
    }

    let alignments = backend
        .align_batch(&tasks)
        .map_err(|e| CliError::runtime(e.to_string()))?;

    let mut rows: Vec<Vec<AlignRecord>> = reads.iter().map(|_| Vec::new()).collect();
    let mut task_detail: Vec<Vec<TaskExplain>> = reads.iter().map(|_| Vec::new()).collect();
    for ((&i, task), aln) in read_of_task.iter().zip(&tasks).zip(&alignments) {
        let aln = aln.as_ref().ok_or_else(|| {
            CliError::runtime(format!(
                "alignment failed for read {}: no alignment within the edit budget",
                reads[i].name
            ))
        })?;
        aln.check(&task.query, &task.target)
            .map_err(|e| CliError::runtime(format!("invalid alignment: {e}")))?;
        task_detail[i].push(TaskExplain {
            hint: task.max_edits,
            edits: aln.edit_distance as u64,
            rescued: task
                .max_edits
                .is_some_and(|k| aln.edit_distance > k as usize),
        });
        rows[i].push(AlignRecord::new(
            &reads[i].name,
            reads[i].seq.len(),
            index.contig_name(task.contig),
            index.contig_len(task.contig),
            task.ref_pos,
            task.target.len(),
            task.reverse,
            aln,
        ));
    }
    for per_read in &mut rows {
        per_read.sort_by_cached_key(AlignRecord::sort_key);
        for row in per_read.iter() {
            writeln!(out, "{}", format.line(row)).map_err(io_err)?;
        }
    }
    if let Some(x) = &explain {
        // The one-shot path aligns everything in a single batch, so
        // there is no per-read alignment latency to report.
        for (i, r) in reads.iter().enumerate() {
            let (stats, map_ns) = &funnel[i];
            let disp = match stats.unmapped_reason() {
                Some(reason) => disposition::unmapped(reason),
                None if task_detail[i].iter().any(|t| t.rescued) => {
                    disposition::RESCUED.to_string()
                }
                None => disposition::ALIGNED.to_string(),
            };
            x.emit(&ExplainRecord {
                read: &r.name,
                disposition: &disp,
                // Unmapped reads never reach the aligner.
                backend: (!task_detail[i].is_empty()).then_some(aligner_name),
                provenance: ReadProvenance {
                    anchors: stats.anchors,
                    chains: stats.chains,
                    candidates: stats.candidates,
                    map_ns: *map_ns,
                },
                tasks: &task_detail[i],
                align_ns: 0,
            });
        }
    }
    Ok(())
}

/// Streaming alignment through the bounded-queue pipeline.
fn cmd_pipeline(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let backend: BackendChoice = flags
        .get("backend")
        .unwrap_or("cpu")
        .parse()
        .map_err(|e| CliError::usage(format!("{e}")))?;
    let (shards, shard_overlap) = shard_params(flags)?;
    let trace = trace_recorder(flags)?;
    let cfg = PipelineConfig {
        batch_bases: flags.num("batch-bases", 256 * 1024)?,
        queue_depth: flags.num("queue-depth", 8)?,
        dispatchers: flags.num("dispatchers", 1)?,
        shards,
        shard_overlap,
        params: candidate_params(flags)?,
        trace: trace.clone(),
        explain: explain_sink(flags)?,
    };
    let format = output_format(flags)?;
    let metrics_out = metrics_mode(flags);
    configure_threads(flags)?;
    let reference = load_reference(flags.req("ref")?)?;
    let reads_path = flags.req("reads")?;

    let f = File::open(reads_path)
        .map_err(|e| CliError::runtime(format!("cannot open {reads_path}: {e}")))?;
    let stream = FastxReader::new(BufReader::new(f)).map(|r| {
        r.map(|rec| ReadInput {
            name: rec.name,
            seq: rec.seq,
        })
    });

    let metrics = match backend.fixed() {
        Some(kind) => {
            let backend = kind.create();
            genasm_pipeline::run_pipeline(stream, reference, backend.as_ref(), &cfg, |rec| {
                writeln!(out, "{}", format.line(rec))
            })
        }
        // `--backend auto`: the router assigns each batch to cpu or
        // gpu-sim from live metrics; output bytes are identical.
        None => {
            let router = RouterConfig {
                explore_every: flags.num("route-explore-every", 16)?,
                pinned: matches!(flags.get("route-pinned"), Some("on")),
            };
            genasm_pipeline::run_pipeline_auto(stream, reference, &cfg, router, |rec| {
                writeln!(out, "{}", format.line(rec))
            })
        }
    }
    .map_err(|e| CliError::runtime(e.to_string()))?;

    finish_trace(&trace)?;
    emit_metrics(metrics_out, &metrics);
    Ok(())
}

/// Parse `--to` / `--listen` endpoint specs.
fn endpoint_flag(flags: &Flags, name: &str) -> Result<Endpoint, CliError> {
    Endpoint::parse(flags.req(name)?).map_err(CliError::usage)
}

/// `genasm serve`: load the reference once, start the resident
/// alignment server, and run until a client sends SHUTDOWN.
fn cmd_serve(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let endpoint = endpoint_flag(flags, "listen")?;
    let default_backend: BackendChoice = flags
        .get("backend")
        .unwrap_or("cpu")
        .parse()
        .map_err(|e| CliError::usage(format!("{e}")))?;
    let default_format = output_format(flags)?;
    let (shards, shard_overlap) = shard_params(flags)?;
    let metrics_out = metrics_mode(flags);
    let trace = trace_recorder(flags)?;
    configure_threads(flags)?;
    let service = ServiceConfig {
        pipeline: PipelineConfig {
            batch_bases: flags.num("batch-bases", 256 * 1024)?,
            queue_depth: flags.num("queue-depth", 8)?,
            dispatchers: flags.num("dispatchers", 1)?,
            shards,
            shard_overlap,
            params: candidate_params(flags)?,
            trace: trace.clone(),
            explain: explain_sink(flags)?,
        },
        max_sessions: flags.num("max-sessions", 64)?,
        linger: std::time::Duration::from_millis(flags.num("linger-ms", 2)?),
        max_session_output_bytes: flags.num("session-output-cap", 64 << 20)?,
        overflow: flags
            .get("overflow")
            .unwrap_or("throttle")
            .parse()
            .map_err(CliError::usage)?,
        max_session_inflight_reads: flags.num("session-inflight-reads", 1024)?,
        max_session_inflight_bases: flags.num("session-inflight-bases", 0)?,
        router: RouterConfig {
            explore_every: flags.num("route-explore-every", 16)?,
            pinned: matches!(flags.get("route-pinned"), Some("on")),
        },
    };
    // 0 disables the idle timeout (and its heartbeats) entirely.
    let idle_timeout = match flags.num("idle-timeout-ms", 30_000u64)? {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    };
    let reference = load_reference(flags.req("ref")?)?;
    let ref_label = reference.label();
    let server = Server::start(
        ServerConfig {
            endpoint,
            default_backend,
            default_format,
            idle_timeout,
            service,
        },
        &ref_label,
        reference,
    )
    .map_err(|e| CliError::runtime(format!("cannot start server: {e}")))?;
    writeln!(out, "# genasm-server listening on {}", server.endpoint()).map_err(io_err)?;
    out.flush().map_err(io_err)?;
    let metrics = server.wait();
    finish_trace(&trace)?;
    emit_metrics(metrics_out, &metrics);
    Ok(())
}

/// Run a protocol conversation: records to `out`, status to stderr.
/// Nonzero exit when the server reported any error line.
fn run_submit(
    endpoint: &Endpoint,
    reads: Option<std::fs::File>,
    opts: &SubmitOptions,
    explain_path: Option<&str>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut status = std::io::stderr();
    let reads_sent = reads.is_some();
    let report =
        genasm_server::client::submit(endpoint, reads.map(BufReader::new), opts, out, &mut status)
            .map_err(|e| CliError::runtime(format!("server connection failed: {e}")))?;
    if let Some(path) = explain_path {
        // The server already streamed the `# explain` lines; this just
        // lands their JSON payloads in the requested file, same
        // one-line-per-read shape as `align --explain`.
        let f = File::create(path)
            .map_err(|e| CliError::runtime(format!("cannot create explain file {path}: {e}")))?;
        let mut w = BufWriter::new(f);
        for line in &report.explain {
            writeln!(w, "{line}").map_err(io_err)?;
        }
        w.flush().map_err(io_err)?;
    }
    if report.errors > 0 {
        return Err(CliError::runtime(format!(
            "server reported {} error(s); see stderr",
            report.errors
        )));
    }
    // A session that sent records must end with the server's `# done`
    // summary; without it the output may be silently truncated (server
    // died mid-stream) and must not exit 0.
    if reads_sent && report.done.is_none() {
        return Err(CliError::runtime(
            "connection closed before the server reported completion; output may be truncated",
        ));
    }
    Ok(())
}

/// `genasm submit`: stream a read file to a running server; stdout is
/// byte-identical to `genasm align` on the same reads.
fn cmd_submit(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let endpoint = endpoint_flag(flags, "to")?;
    let explain_path = flags.get("explain");
    let opts = SubmitOptions {
        backend: flags
            .get("backend")
            .map(|v| v.parse().map_err(|e| CliError::usage(format!("{e}"))))
            .transpose()?,
        format: flags
            .get("format")
            .map(|v| v.parse().map_err(|e| CliError::usage(format!("{e}"))))
            .transpose()?,
        explain: explain_path.is_some(),
        ..SubmitOptions::default()
    };
    let reads_path = flags.req("reads")?;
    let f = File::open(reads_path)
        .map_err(|e| CliError::runtime(format!("cannot open {reads_path}: {e}")))?;
    run_submit(&endpoint, Some(f), &opts, explain_path, out)
}

/// `genasm ctl ping|stats|shutdown --to ENDPOINT`: control verbs
/// against a running server (replies go to stdout).
fn cmd_ctl(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some((action, rest)) = args.split_first() else {
        return Err(CliError::usage(
            "ctl needs an action: ping, stats, or shutdown",
        ));
    };
    if action == "top" {
        // Live streaming view: one raw `genasm-stat-frame/v1` JSON
        // object per line on stdout (protocol chatter on stderr), so
        // the feed pipes into `jq` or a dashboard collector.
        let flags = Flags::parse(rest)?;
        let endpoint = endpoint_flag(&flags, "to")?;
        let interval: u64 = flags.num("interval-ms", 1000)?;
        if interval == 0 {
            return Err(CliError::usage("--interval-ms must be at least 1"));
        }
        let frames: u64 = flags.num("frames", 0)?;
        let mut status = std::io::stderr();
        let n = genasm_server::client::stream_stats(&endpoint, interval, frames, out, &mut status)
            .map_err(|e| CliError::runtime(format!("stat stream failed: {e}")))?;
        if n == 0 {
            return Err(CliError::runtime(
                "server ended the stream before the first stat frame",
            ));
        }
        return Ok(());
    }
    let opts = match action.as_str() {
        "ping" => SubmitOptions {
            ping: true,
            ..SubmitOptions::default()
        },
        "stats" => SubmitOptions {
            stats: true,
            ..SubmitOptions::default()
        },
        "stats-json" => SubmitOptions {
            stats_json: true,
            ..SubmitOptions::default()
        },
        "stats-prom" => SubmitOptions {
            stats_prom: true,
            ..SubmitOptions::default()
        },
        "shutdown" => SubmitOptions {
            shutdown: true,
            ..SubmitOptions::default()
        },
        other => {
            return Err(CliError::usage(format!(
                "unknown ctl action {other:?}; valid actions are ping, stats, \
                 stats-json, stats-prom, top, shutdown"
            )))
        }
    };
    let endpoint = endpoint_flag(&Flags::parse(rest)?, "to")?;
    // Control replies are this command's output. `stats-json` and
    // `stats-prom` are machine-readable: the protocol chatter goes to
    // stderr and only the bare payload lands on stdout, so the output
    // pipes straight into `python -m json.tool` or a Prometheus
    // scraper without stripping prefixes.
    let machine = opts.stats_json || opts.stats_prom;
    let mut status_buf = Vec::new();
    let report = if machine {
        genasm_server::client::submit(
            &endpoint,
            None::<BufReader<File>>,
            &opts,
            &mut std::io::sink(),
            &mut status_buf,
        )
    } else {
        genasm_server::client::submit(
            &endpoint,
            None::<BufReader<File>>,
            &opts,
            &mut std::io::sink(),
            out,
        )
    }
    .map_err(|e| CliError::runtime(format!("server connection failed: {e}")))?;
    if machine {
        std::io::stderr().write_all(&status_buf).map_err(io_err)?;
        let payload = report
            .stats_json
            .as_deref()
            .or(report.stats_prom.as_deref());
        match payload {
            Some(p) => {
                write!(out, "{}{}", p, if p.ends_with('\n') { "" } else { "\n" }).map_err(io_err)?
            }
            None => {
                return Err(CliError::runtime(
                    "server did not return a stats payload; see stderr",
                ))
            }
        }
    }
    if report.errors > 0 {
        return Err(CliError::runtime(format!(
            "server reported {} error(s)",
            report.errors
        )));
    }
    Ok(())
}

fn cmd_filter(flags: &Flags, out: &mut dyn Write) -> Result<(), CliError> {
    let pattern = Seq::from_ascii(flags.req("pattern")?.as_bytes())
        .map_err(|e| CliError::usage(format!("bad --pattern: {e}")))?;
    if pattern.is_empty() || pattern.len() > 64 {
        return Err(CliError::usage("--pattern must be 1..=64 bases"));
    }
    let (_, text) = load_single_sequence(flags.req("text")?)?;
    let k: usize = flags.num("k", 2)?;
    for occ in genasm_core::filter_occurrences(&pattern, &text, k) {
        writeln!(out, "{}\t{}", occ.end, occ.edits).map_err(io_err)?;
    }
    Ok(())
}
