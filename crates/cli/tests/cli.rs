//! Integration tests of the `genasm` CLI, driven in-process.

use genasm_cli::run;

fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("command failed: {e}"));
    String::from_utf8(out).expect("utf8 output")
}

fn run_err(args: &[&str]) -> genasm_cli::CliError {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).expect_err("command should fail")
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("genasm-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("genasm simulate"));
    assert!(out.contains("genasm align"));
}

#[test]
fn unknown_subcommand_is_usage_error() {
    let e = run_err(&["frobnicate"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("unknown subcommand"));
}

#[test]
fn missing_flag_is_usage_error() {
    let e = run_err(&["simulate", "--genome-len", "1000"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--ref"));
}

#[test]
fn simulate_map_align_pipeline() {
    let dir = tmpdir("pipeline");
    let ref_path = dir.join("ref.fa");
    let reads_path = dir.join("reads.fq");
    let out = run_ok(&[
        "simulate",
        "--genome-len",
        "120000",
        "--reads",
        "4",
        "--read-len",
        "1500",
        "--error",
        "0.08",
        "--seed",
        "5",
        "--ref",
        ref_path.to_str().unwrap(),
        "--out",
        reads_path.to_str().unwrap(),
    ]);
    assert!(out.contains("120000 bp reference"));
    assert!(out.contains("4 reads"));

    // map: PAF-like rows, one per chain.
    let paf = run_ok(&[
        "map",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
    ]);
    let rows: Vec<&str> = paf.lines().collect();
    assert!(rows.len() >= 4, "every read should map:\n{paf}");
    for row in &rows {
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), 11, "bad PAF row: {row}");
        assert!(cols[4] == "+" || cols[4] == "-");
        // The read name encodes the true position; the best chain
        // should be near it for at least the first record (checked
        // loosely: name parse works).
        assert!(cols[0].starts_with("read"));
    }

    // align with each aligner; distances must agree on ordering
    // (genasm >= edlib per pair).
    let genasm_out = run_ok(&[
        "align",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
        "--aligner",
        "genasm",
    ]);
    let edlib_out = run_ok(&[
        "align",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
        "--aligner",
        "edlib",
    ]);
    let parse_best = |s: &str| -> Vec<(String, usize)> {
        let mut best: Vec<(String, usize)> = Vec::new();
        for line in s.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            let name = cols[0].to_string();
            let dist: usize = cols[5].parse().unwrap();
            match best.iter_mut().find(|(n, _)| *n == name) {
                Some((_, d)) => *d = (*d).min(dist),
                None => best.push((name, dist)),
            }
        }
        best
    };
    let gb = parse_best(&genasm_out);
    let eb = parse_best(&edlib_out);
    assert_eq!(gb.len(), eb.len());
    for ((gn, gd), (en, ed)) in gb.iter().zip(&eb) {
        assert_eq!(gn, en);
        assert!(
            gd >= ed,
            "genasm best {gd} below exact optimum {ed} for {gn}"
        );
        // 8% error on 1500 bp: distance should be loosely near 120.
        assert!(*ed > 20 && *ed < 500, "implausible distance {ed} for {en}");
    }

    // CIGAR column is parseable and consistent with the distance.
    for line in genasm_out.lines().take(3) {
        let cols: Vec<&str> = line.split('\t').collect();
        let cigar = align_core::Cigar::parse(cols[6]).unwrap();
        let dist: usize = cols[5].parse().unwrap();
        assert_eq!(cigar.edit_cost(), dist);
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Simulate a small workload into `dir`, returning (ref, reads) paths.
fn simulate_workload(dir: &std::path::Path, reads: usize, read_len: usize) -> (String, String) {
    let ref_path = dir.join("ref.fa").to_str().unwrap().to_string();
    let reads_path = dir.join("reads.fq").to_str().unwrap().to_string();
    run_ok(&[
        "simulate",
        "--genome-len",
        "90000",
        "--reads",
        &reads.to_string(),
        "--read-len",
        &read_len.to_string(),
        "--error",
        "0.08",
        "--seed",
        "11",
        "--ref",
        &ref_path,
        "--out",
        &reads_path,
    ]);
    (ref_path, reads_path)
}

#[test]
fn pipeline_matches_align_byte_for_byte_on_every_backend() {
    let dir = tmpdir("pipeline-vs-align");
    let (ref_path, reads_path) = simulate_workload(&dir, 5, 900);

    // (align --aligner X, pipeline --backend Y) pairs that must agree.
    // gpu-sim runs the same GenASM algorithm as the CPU path (the GPU
    // port is property-tested to produce identical CIGARs), so it is
    // compared against the genasm aligner output.
    let pairs = [
        ("genasm", "cpu"),
        ("edlib", "edlib"),
        ("ksw2", "ksw2"),
        ("genasm", "gpu-sim"),
    ];
    for (aligner, backend) in pairs {
        let align_out = run_ok(&[
            "align",
            "--ref",
            &ref_path,
            "--reads",
            &reads_path,
            "--aligner",
            aligner,
        ]);
        assert!(!align_out.is_empty(), "align produced no records");
        // Sweep batching geometry: output must not depend on it.
        for (batch_bases, queue_depth) in [("4096", "1"), ("1048576", "8")] {
            let pipe_out = run_ok(&[
                "pipeline",
                "--ref",
                &ref_path,
                "--reads",
                &reads_path,
                "--backend",
                backend,
                "--batch-bases",
                batch_bases,
                "--queue-depth",
                queue_depth,
            ]);
            assert_eq!(
                pipe_out, align_out,
                "pipeline --backend {backend} (batch {batch_bases}, depth {queue_depth}) \
                 diverged from align --aligner {aligner}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn align_and_pipeline_emit_parseable_cigar_and_identity() {
    let dir = tmpdir("identity-cols");
    let (ref_path, reads_path) = simulate_workload(&dir, 3, 700);
    for cmd in ["align", "pipeline"] {
        let out = run_ok(&[cmd, "--ref", &ref_path, "--reads", &reads_path]);
        assert!(!out.is_empty(), "{cmd} produced no records");
        for line in out.lines() {
            let rec = genasm_pipeline::AlignRecord::parse_tsv(line)
                .unwrap_or_else(|e| panic!("{cmd} row {line:?} unparseable: {e}"));
            // CIGAR must be consistent with the distance column, and
            // identity with the CIGAR.
            assert_eq!(rec.cigar.edit_cost(), rec.edit_distance, "{cmd}: {line}");
            let (m, x, i, d) = rec.cigar.op_counts();
            let expect = m as f64 / (m + x + i + d) as f64;
            assert!(
                (rec.identity - expect).abs() < 5e-5,
                "{cmd}: identity {} != {expect} in {line}",
                rec.identity
            );
            assert!(rec.identity > 0.5, "implausible identity in {line}");
            assert_eq!(rec.tend - rec.tstart, {
                let (m2, x2, _, d2) = rec.cigar.op_counts();
                m2 + x2 + d2
            });
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_aligner_and_backend_list_valid_choices() {
    let e = run_err(&[
        "align",
        "--ref",
        "/nope",
        "--reads",
        "/nope",
        "--aligner",
        "bwa",
    ]);
    assert_eq!(e.code, 2);
    for name in ["genasm", "genasm-base", "edlib", "ksw2"] {
        assert!(e.message.contains(name), "missing {name}: {}", e.message);
    }

    let e = run_err(&[
        "pipeline",
        "--ref",
        "/nope",
        "--reads",
        "/nope",
        "--backend",
        "tpu",
    ]);
    assert_eq!(e.code, 2);
    for name in ["cpu", "gpu-sim", "edlib", "ksw2"] {
        assert!(e.message.contains(name), "missing {name}: {}", e.message);
    }
}

#[test]
fn threads_flag_sizes_the_global_pool() {
    let dir = tmpdir("threads");
    let (ref_path, reads_path) = simulate_workload(&dir, 2, 600);
    let baseline = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    let threaded = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--threads",
        "3",
    ]);
    assert_eq!(baseline, threaded, "thread count must not change output");
    // The flag really did reconfigure the global pool.
    assert_eq!(rayon::current_num_threads(), 3);
    // Restore the default so other tests in this binary keep all cores.
    run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--threads",
        "0",
    ]);
    assert!(rayon::current_num_threads() >= 1);

    let e = run_err(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--threads",
        "lots",
    ]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--threads"), "{}", e.message);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_count_and_overlap_never_change_output() {
    let dir = tmpdir("shards");
    let (ref_path, reads_path) = simulate_workload(&dir, 4, 800);

    let golden = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    assert!(!golden.is_empty(), "align produced no records");
    for shards in ["1", "2", "7"] {
        for overlap in ["64", "512"] {
            let sharded_align = run_ok(&[
                "align",
                "--ref",
                &ref_path,
                "--reads",
                &reads_path,
                "--shards",
                shards,
                "--shard-overlap",
                overlap,
            ]);
            assert_eq!(
                sharded_align, golden,
                "align --shards {shards} --shard-overlap {overlap} diverged"
            );
            let sharded_pipeline = run_ok(&[
                "pipeline",
                "--ref",
                &ref_path,
                "--reads",
                &reads_path,
                "--shards",
                shards,
                "--shard-overlap",
                overlap,
            ]);
            assert_eq!(
                sharded_pipeline, golden,
                "pipeline --shards {shards} --shard-overlap {overlap} diverged"
            );
        }
    }

    let e = run_err(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--shards",
        "0",
    ]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--shards"), "{}", e.message);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_usage_mentions_backends_and_metrics_go_to_stderr() {
    let out = run_ok(&["help"]);
    assert!(out.contains("genasm pipeline"), "{out}");
    assert!(out.contains("--backend"), "{out}");
    assert!(out.contains("--shards"), "{out}");
    // stdout purity: enabling metrics must not change the records on
    // stdout (the summary goes to stderr).
    let dir = tmpdir("metrics-stdout");
    let (ref_path, reads_path) = simulate_workload(&dir, 2, 600);
    let plain = run_ok(&["pipeline", "--ref", &ref_path, "--reads", &reads_path]);
    let with_metrics = run_ok(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--metrics",
        "on",
    ]);
    assert_eq!(plain, with_metrics);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn format_paf_is_identical_across_align_and_pipeline_and_parses() {
    let dir = tmpdir("paf-format");
    let (ref_path, reads_path) = simulate_workload(&dir, 5, 800);

    let align_paf = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--format",
        "paf",
    ]);
    let pipeline_paf = run_ok(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--format",
        "paf",
    ]);
    assert_eq!(align_paf, pipeline_paf, "PAF output diverged across paths");
    let tsv = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    assert_eq!(
        align_paf.lines().count(),
        tsv.lines().count(),
        "same records, different format"
    );

    // Golden row-level properties: every PAF row parses back, agrees
    // with the TSV row on the shared columns, and carries the full
    // reference length and the mapping strand (which TSV cannot).
    for (paf_line, tsv_line) in align_paf.lines().zip(tsv.lines()) {
        let paf = genasm_pipeline::AlignRecord::parse_paf(paf_line)
            .unwrap_or_else(|e| panic!("unparseable PAF row {paf_line:?}: {e}"));
        let tsv = genasm_pipeline::AlignRecord::parse_tsv(tsv_line).unwrap();
        assert_eq!(paf.qname, tsv.qname);
        assert_eq!(paf.qlen, tsv.qlen);
        assert_eq!(paf.tstart, tsv.tstart);
        assert_eq!(paf.tend, tsv.tend);
        assert_eq!(paf.edit_distance, tsv.edit_distance);
        assert_eq!(paf.cigar, tsv.cigar);
        assert_eq!(paf.tsize, 90000, "PAF column 7 is the reference length");
    }
    // Strand fidelity in aggregate: the best row of every read agrees
    // with the strand encoded in its simulated name.
    let mut best: std::collections::HashMap<String, genasm_pipeline::AlignRecord> =
        std::collections::HashMap::new();
    for line in align_paf.lines() {
        let rec = genasm_pipeline::AlignRecord::parse_paf(line).unwrap();
        best.entry(rec.qname.clone()).or_insert(rec); // rows are best-first
    }
    for (name, rec) in &best {
        let truth_rev = name.ends_with("_rev");
        assert_eq!(
            rec.reverse, truth_rev,
            "strand column disagrees with simulated truth for {name}"
        );
    }

    let e = run_err(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--format",
        "sam",
    ]);
    assert_eq!(e.code, 2);
    assert!(
        e.message.contains("'tsv'") && e.message.contains("'paf'"),
        "{}",
        e.message
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Simulate a 3-contig workload (unequal contig sizes) into `dir`.
fn simulate_multi_contig_workload(
    dir: &std::path::Path,
    reads: usize,
    read_len: usize,
) -> (String, String) {
    let ref_path = dir.join("ref.fa").to_str().unwrap().to_string();
    let reads_path = dir.join("reads.fq").to_str().unwrap().to_string();
    let out = run_ok(&[
        "simulate",
        "--genome-len",
        "150000",
        "--contigs",
        "3",
        "--reads",
        &reads.to_string(),
        "--read-len",
        &read_len.to_string(),
        "--error",
        "0.08",
        "--seed",
        "13",
        "--ref",
        &ref_path,
        "--out",
        &reads_path,
    ]);
    assert!(out.contains("3 contigs"), "{out}");
    (ref_path, reads_path)
}

/// The end-to-end multi-contig acceptance test: a 3-contig FASTA
/// aligns through `align` and `pipeline` with byte-identical output
/// across shard counts {1, 2, 7}, contig names and contig-local
/// coordinates in TSV, and the *contig* length (not the whole
/// reference) as PAF column 7 — with unequal contig sizes so a
/// whole-reference length could never masquerade as a contig length.
#[test]
fn multi_contig_reference_aligns_end_to_end_and_is_shard_invariant() {
    let dir = tmpdir("multi-contig");
    let (ref_path, reads_path) = simulate_multi_contig_workload(&dir, 6, 900);

    // Contig identities straight from the written FASTA.
    let reference = {
        let f = std::fs::File::open(&ref_path).unwrap();
        readsim::read_multi_fastx(std::io::BufReader::new(f)).unwrap()
    };
    assert_eq!(reference.num_contigs(), 3);
    let lens: Vec<usize> = reference.contigs().iter().map(|c| c.len()).collect();
    assert!(
        lens[0] < lens[1] && lens[1] < lens[2],
        "contig sizes must be unequal: {lens:?}"
    );

    let golden = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    assert!(!golden.is_empty(), "multi-contig align produced no records");
    for shards in ["1", "2", "7"] {
        let a = run_ok(&[
            "align",
            "--ref",
            &ref_path,
            "--reads",
            &reads_path,
            "--shards",
            shards,
        ]);
        assert_eq!(a, golden, "align --shards {shards} diverged");
        let p = run_ok(&[
            "pipeline",
            "--ref",
            &ref_path,
            "--reads",
            &reads_path,
            "--shards",
            shards,
        ]);
        assert_eq!(p, golden, "pipeline --shards {shards} diverged");
    }

    // TSV rows name real contigs and stay inside them; the read name
    // encodes the source contig, and the best row must land on it.
    let mut best: std::collections::HashMap<String, genasm_pipeline::AlignRecord> =
        std::collections::HashMap::new();
    for line in golden.lines() {
        let rec = genasm_pipeline::AlignRecord::parse_tsv(line).unwrap();
        let contig = reference
            .contigs()
            .iter()
            .find(|c| *c.name == rec.tname)
            .unwrap_or_else(|| panic!("unknown contig {:?} in {line}", rec.tname));
        assert!(
            rec.tend <= contig.len(),
            "row leaks past its contig: {line}"
        );
        best.entry(rec.qname.clone()).or_insert(rec); // rows are best-first
    }
    assert_eq!(best.len(), 6, "every read must produce rows");
    for (name, rec) in &best {
        let truth_contig = name.split('_').nth(1).unwrap();
        assert_eq!(
            rec.tname, truth_contig,
            "best row of {name} on the wrong contig"
        );
    }

    // PAF column 7 is the contig length, per row (the bugfix this PR
    // ships): parse every row and cross-check against the FASTA.
    let paf = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--format",
        "paf",
    ]);
    assert_eq!(paf.lines().count(), golden.lines().count());
    for line in paf.lines() {
        let rec = genasm_pipeline::AlignRecord::parse_paf(line).unwrap();
        let contig = reference
            .contigs()
            .iter()
            .find(|c| *c.name == rec.tname)
            .unwrap();
        assert_eq!(
            rec.tsize,
            contig.len(),
            "PAF column 7 must be the contig length: {line}"
        );
        assert_ne!(rec.tsize, reference.total_len());
    }

    // `map` reports contig names and contig-local chain coordinates.
    let map_out = run_ok(&["map", "--ref", &ref_path, "--reads", &reads_path]);
    for row in map_out.lines() {
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), 11, "bad map row: {row}");
        let contig = reference
            .contigs()
            .iter()
            .find(|c| &*c.name == cols[5])
            .unwrap_or_else(|| panic!("map row names unknown contig: {row}"));
        assert_eq!(cols[6], contig.len().to_string(), "map tlen column");
        let tend: usize = cols[8].parse().unwrap();
        assert!(tend <= contig.len(), "map chain leaks past contig: {row}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_contig_serve_and_submit_match_align() {
    let dir = tmpdir("multi-contig-serve");
    let (ref_path, reads_path) = simulate_multi_contig_workload(&dir, 4, 700);
    let sock = dir.join("genasm-mc.sock");
    let endpoint = format!("unix:{}", sock.display());

    let serve_args: Vec<String> = [
        "serve", "--ref", &ref_path, "--listen", &endpoint, "--shards", "4",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server_thread = std::thread::spawn(move || {
        let mut out = Vec::new();
        let result = genasm_cli::run(&serve_args, &mut out);
        (result, String::from_utf8(out).unwrap())
    });
    await_server(&endpoint);

    let align_paf = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--format",
        "paf",
    ]);
    let submit_paf = run_ok(&[
        "submit",
        "--to",
        &endpoint,
        "--reads",
        &reads_path,
        "--format",
        "paf",
    ]);
    assert_eq!(
        submit_paf, align_paf,
        "multi-contig submit diverged from align"
    );
    let stats = run_ok(&["ctl", "stats", "--to", &endpoint]);
    assert!(stats.contains("contigs=3"), "{stats}");

    run_ok(&["ctl", "shutdown", "--to", &endpoint]);
    let (result, _) = server_thread.join().unwrap();
    result.unwrap_or_else(|e| panic!("serve failed: {e}"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn filter_still_requires_a_single_sequence_and_duplicates_are_rejected() {
    let dir = tmpdir("multi-ref-errors");
    let ref_path = dir.join("ref.fa");
    let recs = vec![
        readsim::FastxRecord::fasta(
            "chr1",
            align_core::Seq::from_ascii(b"ACGTACGTACGT").unwrap(),
        ),
        readsim::FastxRecord::fasta(
            "chr2",
            align_core::Seq::from_ascii(b"GGCCGGCCGGCC").unwrap(),
        ),
    ];
    let f = std::fs::File::create(&ref_path).unwrap();
    readsim::write_fasta(std::io::BufWriter::new(f), &recs).unwrap();

    // `filter` searches one sequence; multi-record input is still an
    // error naming the extras.
    let e = run_err(&[
        "filter",
        "--pattern",
        "ACGT",
        "--text",
        ref_path.to_str().unwrap(),
    ]);
    assert_eq!(e.code, 1);
    assert!(e.message.contains("chr2"), "{}", e.message);

    // Duplicate contig names poison the whole reference.
    let dup_path = dir.join("dup.fa");
    std::fs::write(&dup_path, ">chr1\nACGTACGT\n>chr1\nGGCCGGCC\n").unwrap();
    let reads_path = dir.join("reads.fq");
    std::fs::write(&reads_path, "@r1\nACGTACGT\n+\nIIIIIIII\n").unwrap();
    for cmd in ["align", "pipeline", "map"] {
        let e = run_err(&[
            cmd,
            "--ref",
            dup_path.to_str().unwrap(),
            "--reads",
            reads_path.to_str().unwrap(),
        ]);
        assert_eq!(e.code, 1, "{cmd} must reject duplicate contig names");
        assert!(
            e.message.contains("duplicate contig name"),
            "{cmd}: {}",
            e.message
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Poll `ctl ping` until the server at `endpoint` answers (it starts
/// on another thread).
fn await_server(endpoint: &str) {
    for _ in 0..200 {
        let args = vec![
            "ctl".to_string(),
            "ping".to_string(),
            "--to".to_string(),
            endpoint.to_string(),
        ];
        let mut out = Vec::new();
        if genasm_cli::run(&args, &mut out).is_ok() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("server at {endpoint} never became ready");
}

#[test]
fn serve_and_submit_round_trip_matches_align() {
    let dir = tmpdir("serve");
    let (ref_path, reads_path) = simulate_workload(&dir, 5, 800);
    let sock = dir.join("genasm.sock");
    let endpoint = format!("unix:{}", sock.display());

    // The server runs until `ctl shutdown`; host it on a thread.
    let serve_args: Vec<String> = [
        "serve",
        "--ref",
        &ref_path,
        "--listen",
        &endpoint,
        "--max-sessions",
        "8",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let server_thread = std::thread::spawn(move || {
        let mut out = Vec::new();
        let result = genasm_cli::run(&serve_args, &mut out);
        (result, String::from_utf8(out).unwrap())
    });
    await_server(&endpoint);

    // TSV session == one-shot align, byte for byte.
    let align_tsv = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    let submit_tsv = run_ok(&["submit", "--to", &endpoint, "--reads", &reads_path]);
    assert_eq!(submit_tsv, align_tsv, "submit diverged from align (tsv)");
    assert!(!submit_tsv.is_empty());

    // PAF session == one-shot align --format paf, and per-session
    // backend selection works over the wire.
    let align_paf = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--aligner",
        "edlib",
        "--format",
        "paf",
    ]);
    let submit_paf = run_ok(&[
        "submit",
        "--to",
        &endpoint,
        "--reads",
        &reads_path,
        "--backend",
        "edlib",
        "--format",
        "paf",
    ]);
    assert_eq!(
        submit_paf, align_paf,
        "submit diverged from align (paf/edlib)"
    );

    // stats answers while the server is up.
    let stats = run_ok(&["ctl", "stats", "--to", &endpoint]);
    assert!(stats.contains("# stats"), "{stats}");

    // Shut down; the serve thread exits cleanly.
    run_ok(&["ctl", "shutdown", "--to", &endpoint]);
    let (result, serve_out) = server_thread.join().unwrap();
    result.unwrap_or_else(|e| panic!("serve failed: {e}"));
    assert!(serve_out.contains("listening on"), "{serve_out}");

    // The endpoint is gone: submitting again fails with a runtime error.
    let e = run_err(&["submit", "--to", &endpoint, "--reads", &reads_path]);
    assert_eq!(e.code, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_fails_nonzero_when_server_dies_before_done() {
    // A fake server that speaks just enough protocol to stream one
    // record and then vanish without the terminal `# done` line.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        use std::io::{BufRead, BufReader, Read, Write};
        let (mut s, _) = listener.accept().unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        writeln!(s, "# genasm-server v1 ref=x backend=cpu format=tsv").unwrap();
        let mut line = String::new();
        loop {
            line.clear();
            if r.read_line(&mut line).unwrap() == 0 {
                return;
            }
            if line.trim_end() == "BEGIN" {
                break;
            }
        }
        writeln!(s, "# ok begin backend=cpu format=tsv").unwrap();
        // Consume the payload so the client's upload cannot fail, emit
        // one record, then die without `# done`.
        let mut sink = Vec::new();
        r.read_to_end(&mut sink).unwrap();
        writeln!(s, "r1\t8\tx\t0\t8\t0\t8M\t1.0000").unwrap();
        s.flush().unwrap();
    });

    let dir = tmpdir("truncated-stream");
    let reads_path = dir.join("r.fq");
    std::fs::write(&reads_path, "@r1\nACGTACGT\n+\nIIIIIIII\n").unwrap();
    let e = run_err(&[
        "submit",
        "--to",
        &addr.to_string(),
        "--reads",
        reads_path.to_str().unwrap(),
    ]);
    assert_eq!(e.code, 1);
    assert!(
        e.message.contains("truncated"),
        "truncated stream must be reported: {}",
        e.message
    );
    fake.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ctl_usage_errors() {
    let e = run_err(&["ctl"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("ping"), "{}", e.message);
    let e = run_err(&["ctl", "reboot", "--to", "127.0.0.1:1"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("reboot"), "{}", e.message);
    let e = run_err(&["serve", "--ref", "/nope", "--listen", "nonsense"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("endpoint"), "{}", e.message);
    let e = run_err(&[
        "submit",
        "--to",
        "unix:/nonexistent.sock",
        "--reads",
        "/nope",
    ]);
    assert_eq!(e.code, 1);
}

#[test]
fn filter_finds_planted_pattern() {
    let dir = tmpdir("filter");
    let ref_path = dir.join("ref.fa");
    // Build a small reference with a known pattern at position 100.
    let mut seq_bytes = vec![b'A'; 300];
    let pattern = b"GATTACAGGATCC";
    seq_bytes[100..100 + pattern.len()].copy_from_slice(pattern);
    let rec = readsim::FastxRecord::fasta("ref", align_core::Seq::from_ascii(&seq_bytes).unwrap());
    let f = std::fs::File::create(&ref_path).unwrap();
    readsim::write_fasta(std::io::BufWriter::new(f), &[rec]).unwrap();

    let out = run_ok(&[
        "filter",
        "--pattern",
        "GATTACAGGATCC",
        "--text",
        ref_path.to_str().unwrap(),
        "-k",
        "0",
    ]);
    let rows: Vec<&str> = out.lines().collect();
    assert_eq!(rows.len(), 1, "exactly one exact occurrence:\n{out}");
    let cols: Vec<&str> = rows[0].split('\t').collect();
    let end: usize = cols[0].parse().unwrap();
    assert_eq!(end, 100 + pattern.len() - 1);
    assert_eq!(cols[1], "0");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_pattern_rejected() {
    let e = run_err(&["filter", "--pattern", "ACGN", "--text", "/nonexistent"]);
    assert_eq!(e.code, 2);
}

#[test]
fn trace_flag_writes_chrome_trace_and_never_changes_records() {
    let dir = tmpdir("trace");
    let (ref_path, reads_path) = simulate_workload(&dir, 5, 800);
    let trace_path = dir.join("pipeline.trace.json");
    let trace = trace_path.to_str().unwrap();

    let plain = run_ok(&["pipeline", "--ref", &ref_path, "--reads", &reads_path]);
    // `--metrics json` goes to stderr, so stdout must stay identical.
    let traced = run_ok(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--trace",
        trace,
        "--metrics",
        "json",
    ]);
    assert_eq!(traced, plain, "tracing changed the record stream");

    // The trace is a loadable Chrome trace-event array with the
    // expected span kinds and thread-name metadata.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.trim_start().starts_with('['), "{text}");
    assert!(text.trim_end().ends_with(']'), "not finalized: {text}");
    assert!(text.contains("\"ph\":\"M\""), "no thread names");
    assert!(text.contains("\"name\":\"read\""), "no read spans");
    assert!(text.contains("\"name\":\"execute\""), "no execute spans");

    // An unwritable trace path fails up front with a runtime error.
    let e = run_err(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--trace",
        dir.join("no-such-dir/t.json").to_str().unwrap(),
    ]);
    assert_eq!(e.code, 1);
    assert!(e.message.contains("trace"), "{e}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ctl_stats_json_and_prom_print_bare_payloads() {
    let dir = tmpdir("ctl-stats");
    let (ref_path, reads_path) = simulate_workload(&dir, 4, 700);
    let sock = dir.join("genasm.sock");
    let endpoint = format!("unix:{}", sock.display());

    let serve_args: Vec<String> = ["serve", "--ref", &ref_path, "--listen", &endpoint]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let server_thread = std::thread::spawn(move || {
        let mut out = Vec::new();
        genasm_cli::run(&serve_args, &mut out)
    });
    await_server(&endpoint);
    let _ = run_ok(&["submit", "--to", &endpoint, "--reads", &reads_path]);

    // stats-json: stdout is the bare JSON object, no `# ` prefixes.
    let json = run_ok(&["ctl", "stats-json", "--to", &endpoint]);
    assert!(
        json.starts_with("{\"schema\":\"genasm-stats/v1\""),
        "{json}"
    );
    assert!(!json.contains("# stats-json"), "prefix leaked: {json}");
    assert!(json.contains("\"reads_in\":4"), "{json}");

    // stats-prom: bare exposition lines.
    let prom = run_ok(&["ctl", "stats-prom", "--to", &endpoint]);
    assert!(prom.contains("genasm_reads_in_total 4"), "{prom}");
    assert!(!prom.contains("# prom"), "prefix leaked: {prom}");

    // The line format gained the band counters.
    let stats = run_ok(&["ctl", "stats", "--to", &endpoint]);
    assert!(stats.contains("windows="), "{stats}");
    assert!(stats.contains("band_skipped="), "{stats}");

    run_ok(&["ctl", "shutdown", "--to", &endpoint]);
    server_thread.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_flag_writes_jsonl_and_never_changes_records() {
    let dir = tmpdir("explain");
    let (ref_path, reads_path) = simulate_workload(&dir, 6, 700);

    // Pull the read name / disposition fields back out of an explain
    // line (names here are plain, so no unescaping is needed).
    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\":\"");
        let start = line
            .find(&pat)
            .unwrap_or_else(|| panic!("no {key} in {line}"))
            + pat.len();
        let end = line[start..].find('"').unwrap();
        &line[start..start + end]
    }

    let plain_align = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    let align_explain = dir.join("align.explain.jsonl");
    let explained_align = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--explain",
        align_explain.to_str().unwrap(),
    ]);
    assert_eq!(
        explained_align, plain_align,
        "explain changed align records"
    );
    let align_text = std::fs::read_to_string(&align_explain).unwrap();
    assert_eq!(align_text.lines().count(), 6, "{align_text}");

    let plain_pipe = run_ok(&["pipeline", "--ref", &ref_path, "--reads", &reads_path]);
    assert_eq!(plain_pipe, plain_align);
    let pipe_explain = dir.join("pipeline.explain.jsonl");
    let explained_pipe = run_ok(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--explain",
        pipe_explain.to_str().unwrap(),
    ]);
    assert_eq!(
        explained_pipe, plain_pipe,
        "explain changed pipeline records"
    );
    let pipe_text = std::fs::read_to_string(&pipe_explain).unwrap();
    assert_eq!(pipe_text.lines().count(), 6, "{pipe_text}");

    // Same reads, same decisions: the one-shot and streaming paths
    // must agree on every read's disposition (timings differ, so the
    // lines themselves don't compare byte-for-byte).
    let mut align_disp: Vec<(String, String)> = align_text
        .lines()
        .map(|l| {
            (
                field(l, "read").to_string(),
                field(l, "disposition").to_string(),
            )
        })
        .collect();
    let mut pipe_disp: Vec<(String, String)> = pipe_text
        .lines()
        .map(|l| {
            (
                field(l, "read").to_string(),
                field(l, "disposition").to_string(),
            )
        })
        .collect();
    align_disp.sort();
    pipe_disp.sort();
    assert_eq!(
        align_disp, pipe_disp,
        "align/pipeline dispositions diverged"
    );
    for line in align_text.lines().chain(pipe_text.lines()) {
        assert!(
            line.starts_with("{\"schema\":\"genasm-explain/v1\""),
            "{line}"
        );
        assert!(line.contains("\"tasks\":["), "{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_submit_explain_and_ctl_top_stream() {
    let dir = tmpdir("serve-top");
    let (ref_path, reads_path) = simulate_workload(&dir, 4, 700);
    let sock = dir.join("genasm-top.sock");
    let endpoint = format!("unix:{}", sock.display());

    let serve_args: Vec<String> = ["serve", "--ref", &ref_path, "--listen", &endpoint]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let server_thread = std::thread::spawn(move || {
        let mut out = Vec::new();
        let result = genasm_cli::run(&serve_args, &mut out);
        (result, String::from_utf8(out).unwrap())
    });
    await_server(&endpoint);

    // `submit --explain FILE` lands one provenance line per read and
    // keeps stdout byte-identical to align.
    let align = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    let explain_path = dir.join("submit.explain.jsonl");
    let submit_out = run_ok(&[
        "submit",
        "--to",
        &endpoint,
        "--reads",
        &reads_path,
        "--explain",
        explain_path.to_str().unwrap(),
    ]);
    assert_eq!(submit_out, align, "explain submit diverged from align");
    let text = std::fs::read_to_string(&explain_path).unwrap();
    assert_eq!(text.lines().count(), 4, "{text}");
    for line in text.lines() {
        assert!(
            line.starts_with("{\"schema\":\"genasm-explain/v1\""),
            "{line}"
        );
    }

    // `ctl top` prints bare stat-frame JSON, one object per line.
    let top = run_ok(&[
        "ctl",
        "top",
        "--to",
        &endpoint,
        "--interval-ms",
        "20",
        "--frames",
        "2",
    ]);
    let lines: Vec<&str> = top.lines().collect();
    assert_eq!(lines.len(), 2, "{top}");
    for line in &lines {
        assert!(
            line.starts_with("{\"schema\":\"genasm-stat-frame/v1\""),
            "{line}"
        );
        assert!(line.contains("\"funnel\":{\"reads_in\":4"), "{line}");
        assert!(line.contains("\"rates\":{"), "{line}");
    }
    let e = run_err(&["ctl", "top", "--to", &endpoint, "--interval-ms", "0"]);
    assert_eq!(e.code, 2);

    run_ok(&["ctl", "shutdown", "--to", &endpoint]);
    let (result, _) = server_thread.join().unwrap();
    result.unwrap_or_else(|e| panic!("serve failed: {e}"));
    std::fs::remove_dir_all(&dir).ok();
}
