//! Integration tests of the `genasm` CLI, driven in-process.

use genasm_cli::run;

fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("command failed: {e}"));
    String::from_utf8(out).expect("utf8 output")
}

fn run_err(args: &[&str]) -> genasm_cli::CliError {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).expect_err("command should fail")
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("genasm-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("genasm simulate"));
    assert!(out.contains("genasm align"));
}

#[test]
fn unknown_subcommand_is_usage_error() {
    let e = run_err(&["frobnicate"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("unknown subcommand"));
}

#[test]
fn missing_flag_is_usage_error() {
    let e = run_err(&["simulate", "--genome-len", "1000"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--ref"));
}

#[test]
fn simulate_map_align_pipeline() {
    let dir = tmpdir("pipeline");
    let ref_path = dir.join("ref.fa");
    let reads_path = dir.join("reads.fq");
    let out = run_ok(&[
        "simulate",
        "--genome-len",
        "120000",
        "--reads",
        "4",
        "--read-len",
        "1500",
        "--error",
        "0.08",
        "--seed",
        "5",
        "--ref",
        ref_path.to_str().unwrap(),
        "--out",
        reads_path.to_str().unwrap(),
    ]);
    assert!(out.contains("120000 bp reference"));
    assert!(out.contains("4 reads"));

    // map: PAF-like rows, one per chain.
    let paf = run_ok(&[
        "map",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
    ]);
    let rows: Vec<&str> = paf.lines().collect();
    assert!(rows.len() >= 4, "every read should map:\n{paf}");
    for row in &rows {
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), 11, "bad PAF row: {row}");
        assert!(cols[4] == "+" || cols[4] == "-");
        // The read name encodes the true position; the best chain
        // should be near it for at least the first record (checked
        // loosely: name parse works).
        assert!(cols[0].starts_with("read"));
    }

    // align with each aligner; distances must agree on ordering
    // (genasm >= edlib per pair).
    let genasm_out = run_ok(&[
        "align",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
        "--aligner",
        "genasm",
    ]);
    let edlib_out = run_ok(&[
        "align",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
        "--aligner",
        "edlib",
    ]);
    let parse_best = |s: &str| -> Vec<(String, usize)> {
        let mut best: Vec<(String, usize)> = Vec::new();
        for line in s.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            let name = cols[0].to_string();
            let dist: usize = cols[5].parse().unwrap();
            match best.iter_mut().find(|(n, _)| *n == name) {
                Some((_, d)) => *d = (*d).min(dist),
                None => best.push((name, dist)),
            }
        }
        best
    };
    let gb = parse_best(&genasm_out);
    let eb = parse_best(&edlib_out);
    assert_eq!(gb.len(), eb.len());
    for ((gn, gd), (en, ed)) in gb.iter().zip(&eb) {
        assert_eq!(gn, en);
        assert!(
            gd >= ed,
            "genasm best {gd} below exact optimum {ed} for {gn}"
        );
        // 8% error on 1500 bp: distance should be loosely near 120.
        assert!(*ed > 20 && *ed < 500, "implausible distance {ed} for {en}");
    }

    // CIGAR column is parseable and consistent with the distance.
    for line in genasm_out.lines().take(3) {
        let cols: Vec<&str> = line.split('\t').collect();
        let cigar = align_core::Cigar::parse(cols[6]).unwrap();
        let dist: usize = cols[5].parse().unwrap();
        assert_eq!(cigar.edit_cost(), dist);
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn filter_finds_planted_pattern() {
    let dir = tmpdir("filter");
    let ref_path = dir.join("ref.fa");
    // Build a small reference with a known pattern at position 100.
    let mut seq_bytes = vec![b'A'; 300];
    let pattern = b"GATTACAGGATCC";
    seq_bytes[100..100 + pattern.len()].copy_from_slice(pattern);
    let rec = readsim::FastxRecord::fasta("ref", align_core::Seq::from_ascii(&seq_bytes).unwrap());
    let f = std::fs::File::create(&ref_path).unwrap();
    readsim::write_fasta(std::io::BufWriter::new(f), &[rec]).unwrap();

    let out = run_ok(&[
        "filter",
        "--pattern",
        "GATTACAGGATCC",
        "--text",
        ref_path.to_str().unwrap(),
        "-k",
        "0",
    ]);
    let rows: Vec<&str> = out.lines().collect();
    assert_eq!(rows.len(), 1, "exactly one exact occurrence:\n{out}");
    let cols: Vec<&str> = rows[0].split('\t').collect();
    let end: usize = cols[0].parse().unwrap();
    assert_eq!(end, 100 + pattern.len() - 1);
    assert_eq!(cols[1], "0");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_pattern_rejected() {
    let e = run_err(&["filter", "--pattern", "ACGN", "--text", "/nonexistent"]);
    assert_eq!(e.code, 2);
}
