//! Integration tests of the `genasm` CLI, driven in-process.

use genasm_cli::run;

fn run_ok(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).unwrap_or_else(|e| panic!("command failed: {e}"));
    String::from_utf8(out).expect("utf8 output")
}

fn run_err(args: &[&str]) -> genasm_cli::CliError {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&args, &mut out).expect_err("command should fail")
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("genasm-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = run_ok(&["help"]);
    assert!(out.contains("genasm simulate"));
    assert!(out.contains("genasm align"));
}

#[test]
fn unknown_subcommand_is_usage_error() {
    let e = run_err(&["frobnicate"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("unknown subcommand"));
}

#[test]
fn missing_flag_is_usage_error() {
    let e = run_err(&["simulate", "--genome-len", "1000"]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--ref"));
}

#[test]
fn simulate_map_align_pipeline() {
    let dir = tmpdir("pipeline");
    let ref_path = dir.join("ref.fa");
    let reads_path = dir.join("reads.fq");
    let out = run_ok(&[
        "simulate",
        "--genome-len",
        "120000",
        "--reads",
        "4",
        "--read-len",
        "1500",
        "--error",
        "0.08",
        "--seed",
        "5",
        "--ref",
        ref_path.to_str().unwrap(),
        "--out",
        reads_path.to_str().unwrap(),
    ]);
    assert!(out.contains("120000 bp reference"));
    assert!(out.contains("4 reads"));

    // map: PAF-like rows, one per chain.
    let paf = run_ok(&[
        "map",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
    ]);
    let rows: Vec<&str> = paf.lines().collect();
    assert!(rows.len() >= 4, "every read should map:\n{paf}");
    for row in &rows {
        let cols: Vec<&str> = row.split('\t').collect();
        assert_eq!(cols.len(), 11, "bad PAF row: {row}");
        assert!(cols[4] == "+" || cols[4] == "-");
        // The read name encodes the true position; the best chain
        // should be near it for at least the first record (checked
        // loosely: name parse works).
        assert!(cols[0].starts_with("read"));
    }

    // align with each aligner; distances must agree on ordering
    // (genasm >= edlib per pair).
    let genasm_out = run_ok(&[
        "align",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
        "--aligner",
        "genasm",
    ]);
    let edlib_out = run_ok(&[
        "align",
        "--ref",
        ref_path.to_str().unwrap(),
        "--reads",
        reads_path.to_str().unwrap(),
        "--aligner",
        "edlib",
    ]);
    let parse_best = |s: &str| -> Vec<(String, usize)> {
        let mut best: Vec<(String, usize)> = Vec::new();
        for line in s.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            let name = cols[0].to_string();
            let dist: usize = cols[5].parse().unwrap();
            match best.iter_mut().find(|(n, _)| *n == name) {
                Some((_, d)) => *d = (*d).min(dist),
                None => best.push((name, dist)),
            }
        }
        best
    };
    let gb = parse_best(&genasm_out);
    let eb = parse_best(&edlib_out);
    assert_eq!(gb.len(), eb.len());
    for ((gn, gd), (en, ed)) in gb.iter().zip(&eb) {
        assert_eq!(gn, en);
        assert!(
            gd >= ed,
            "genasm best {gd} below exact optimum {ed} for {gn}"
        );
        // 8% error on 1500 bp: distance should be loosely near 120.
        assert!(*ed > 20 && *ed < 500, "implausible distance {ed} for {en}");
    }

    // CIGAR column is parseable and consistent with the distance.
    for line in genasm_out.lines().take(3) {
        let cols: Vec<&str> = line.split('\t').collect();
        let cigar = align_core::Cigar::parse(cols[6]).unwrap();
        let dist: usize = cols[5].parse().unwrap();
        assert_eq!(cigar.edit_cost(), dist);
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// Simulate a small workload into `dir`, returning (ref, reads) paths.
fn simulate_workload(dir: &std::path::Path, reads: usize, read_len: usize) -> (String, String) {
    let ref_path = dir.join("ref.fa").to_str().unwrap().to_string();
    let reads_path = dir.join("reads.fq").to_str().unwrap().to_string();
    run_ok(&[
        "simulate",
        "--genome-len",
        "90000",
        "--reads",
        &reads.to_string(),
        "--read-len",
        &read_len.to_string(),
        "--error",
        "0.08",
        "--seed",
        "11",
        "--ref",
        &ref_path,
        "--out",
        &reads_path,
    ]);
    (ref_path, reads_path)
}

#[test]
fn pipeline_matches_align_byte_for_byte_on_every_backend() {
    let dir = tmpdir("pipeline-vs-align");
    let (ref_path, reads_path) = simulate_workload(&dir, 5, 900);

    // (align --aligner X, pipeline --backend Y) pairs that must agree.
    // gpu-sim runs the same GenASM algorithm as the CPU path (the GPU
    // port is property-tested to produce identical CIGARs), so it is
    // compared against the genasm aligner output.
    let pairs = [
        ("genasm", "cpu"),
        ("edlib", "edlib"),
        ("ksw2", "ksw2"),
        ("genasm", "gpu-sim"),
    ];
    for (aligner, backend) in pairs {
        let align_out = run_ok(&[
            "align",
            "--ref",
            &ref_path,
            "--reads",
            &reads_path,
            "--aligner",
            aligner,
        ]);
        assert!(!align_out.is_empty(), "align produced no records");
        // Sweep batching geometry: output must not depend on it.
        for (batch_bases, queue_depth) in [("4096", "1"), ("1048576", "8")] {
            let pipe_out = run_ok(&[
                "pipeline",
                "--ref",
                &ref_path,
                "--reads",
                &reads_path,
                "--backend",
                backend,
                "--batch-bases",
                batch_bases,
                "--queue-depth",
                queue_depth,
            ]);
            assert_eq!(
                pipe_out, align_out,
                "pipeline --backend {backend} (batch {batch_bases}, depth {queue_depth}) \
                 diverged from align --aligner {aligner}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn align_and_pipeline_emit_parseable_cigar_and_identity() {
    let dir = tmpdir("identity-cols");
    let (ref_path, reads_path) = simulate_workload(&dir, 3, 700);
    for cmd in ["align", "pipeline"] {
        let out = run_ok(&[cmd, "--ref", &ref_path, "--reads", &reads_path]);
        assert!(!out.is_empty(), "{cmd} produced no records");
        for line in out.lines() {
            let rec = genasm_pipeline::AlignRecord::parse_tsv(line)
                .unwrap_or_else(|e| panic!("{cmd} row {line:?} unparseable: {e}"));
            // CIGAR must be consistent with the distance column, and
            // identity with the CIGAR.
            assert_eq!(rec.cigar.edit_cost(), rec.edit_distance, "{cmd}: {line}");
            let (m, x, i, d) = rec.cigar.op_counts();
            let expect = m as f64 / (m + x + i + d) as f64;
            assert!(
                (rec.identity - expect).abs() < 5e-5,
                "{cmd}: identity {} != {expect} in {line}",
                rec.identity
            );
            assert!(rec.identity > 0.5, "implausible identity in {line}");
            assert_eq!(rec.tend - rec.tstart, {
                let (m2, x2, _, d2) = rec.cigar.op_counts();
                m2 + x2 + d2
            });
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_aligner_and_backend_list_valid_choices() {
    let e = run_err(&[
        "align",
        "--ref",
        "/nope",
        "--reads",
        "/nope",
        "--aligner",
        "bwa",
    ]);
    assert_eq!(e.code, 2);
    for name in ["genasm", "genasm-base", "edlib", "ksw2"] {
        assert!(e.message.contains(name), "missing {name}: {}", e.message);
    }

    let e = run_err(&[
        "pipeline",
        "--ref",
        "/nope",
        "--reads",
        "/nope",
        "--backend",
        "tpu",
    ]);
    assert_eq!(e.code, 2);
    for name in ["cpu", "gpu-sim", "edlib", "ksw2"] {
        assert!(e.message.contains(name), "missing {name}: {}", e.message);
    }
}

#[test]
fn threads_flag_sizes_the_global_pool() {
    let dir = tmpdir("threads");
    let (ref_path, reads_path) = simulate_workload(&dir, 2, 600);
    let baseline = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    let threaded = run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--threads",
        "3",
    ]);
    assert_eq!(baseline, threaded, "thread count must not change output");
    // The flag really did reconfigure the global pool.
    assert_eq!(rayon::current_num_threads(), 3);
    // Restore the default so other tests in this binary keep all cores.
    run_ok(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--threads",
        "0",
    ]);
    assert!(rayon::current_num_threads() >= 1);

    let e = run_err(&[
        "align",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--threads",
        "lots",
    ]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--threads"), "{}", e.message);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shard_count_and_overlap_never_change_output() {
    let dir = tmpdir("shards");
    let (ref_path, reads_path) = simulate_workload(&dir, 4, 800);

    let golden = run_ok(&["align", "--ref", &ref_path, "--reads", &reads_path]);
    assert!(!golden.is_empty(), "align produced no records");
    for shards in ["1", "2", "7"] {
        for overlap in ["64", "512"] {
            let sharded_align = run_ok(&[
                "align",
                "--ref",
                &ref_path,
                "--reads",
                &reads_path,
                "--shards",
                shards,
                "--shard-overlap",
                overlap,
            ]);
            assert_eq!(
                sharded_align, golden,
                "align --shards {shards} --shard-overlap {overlap} diverged"
            );
            let sharded_pipeline = run_ok(&[
                "pipeline",
                "--ref",
                &ref_path,
                "--reads",
                &reads_path,
                "--shards",
                shards,
                "--shard-overlap",
                overlap,
            ]);
            assert_eq!(
                sharded_pipeline, golden,
                "pipeline --shards {shards} --shard-overlap {overlap} diverged"
            );
        }
    }

    let e = run_err(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--shards",
        "0",
    ]);
    assert_eq!(e.code, 2);
    assert!(e.message.contains("--shards"), "{}", e.message);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pipeline_usage_mentions_backends_and_metrics_go_to_stderr() {
    let out = run_ok(&["help"]);
    assert!(out.contains("genasm pipeline"), "{out}");
    assert!(out.contains("--backend"), "{out}");
    assert!(out.contains("--shards"), "{out}");
    // stdout purity: enabling metrics must not change the records on
    // stdout (the summary goes to stderr).
    let dir = tmpdir("metrics-stdout");
    let (ref_path, reads_path) = simulate_workload(&dir, 2, 600);
    let plain = run_ok(&["pipeline", "--ref", &ref_path, "--reads", &reads_path]);
    let with_metrics = run_ok(&[
        "pipeline",
        "--ref",
        &ref_path,
        "--reads",
        &reads_path,
        "--metrics",
        "on",
    ]);
    assert_eq!(plain, with_metrics);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn filter_finds_planted_pattern() {
    let dir = tmpdir("filter");
    let ref_path = dir.join("ref.fa");
    // Build a small reference with a known pattern at position 100.
    let mut seq_bytes = vec![b'A'; 300];
    let pattern = b"GATTACAGGATCC";
    seq_bytes[100..100 + pattern.len()].copy_from_slice(pattern);
    let rec = readsim::FastxRecord::fasta("ref", align_core::Seq::from_ascii(&seq_bytes).unwrap());
    let f = std::fs::File::create(&ref_path).unwrap();
    readsim::write_fasta(std::io::BufWriter::new(f), &[rec]).unwrap();

    let out = run_ok(&[
        "filter",
        "--pattern",
        "GATTACAGGATCC",
        "--text",
        ref_path.to_str().unwrap(),
        "-k",
        "0",
    ]);
    let rows: Vec<&str> = out.lines().collect();
    assert_eq!(rows.len(), 1, "exactly one exact occurrence:\n{out}");
    let cols: Vec<&str> = rows[0].split('\t').collect();
    let end: usize = cols[0].parse().unwrap();
    assert_eq!(end, 100 + pattern.len() - 1);
    assert_eq!(cols[1], "0");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_pattern_rejected() {
    let e = run_err(&["filter", "--pattern", "ACGN", "--text", "/nonexistent"]);
    assert_eq!(e.code, 2);
}
