//! Batch timing and throughput accounting.
//!
//! The paper reports aligner speedups as ratios of batch wall-clock
//! time on the same candidate set; [`BatchTiming`] captures everything
//! needed to reproduce those ratios and to express absolute throughput
//! as aligned read-bases per second.

use std::time::Duration;

use align_core::AlignTask;

/// Wall-clock timing of one batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchTiming {
    /// Total wall-clock time.
    pub wall: Duration,
    /// Number of tasks.
    pub tasks: usize,
    /// Total query bases aligned.
    pub query_bases: u64,
    /// Total bases (query + target).
    pub total_bases: u64,
}

impl BatchTiming {
    /// Build from the task list and the elapsed time.
    pub fn new(tasks: &[AlignTask], wall: Duration) -> BatchTiming {
        BatchTiming {
            wall,
            tasks: tasks.len(),
            query_bases: tasks.iter().map(|t| t.query.len() as u64).sum(),
            total_bases: tasks.iter().map(|t| t.bases() as u64).sum(),
        }
    }

    /// Aligned query bases per second.
    pub fn bases_per_sec(&self) -> f64 {
        aligned_bases_per_sec(self.query_bases, self.wall)
    }

    /// Alignments per second.
    pub fn alignments_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.tasks as f64 / self.wall.as_secs_f64()
    }

    /// Speedup of this run over `other` (how much faster `self` is).
    pub fn speedup_over(&self, other: &BatchTiming) -> f64 {
        if self.wall.is_zero() {
            return f64::INFINITY;
        }
        other.wall.as_secs_f64() / self.wall.as_secs_f64()
    }
}

/// Aligned bases per second for a (bases, duration) pair.
pub fn aligned_bases_per_sec(bases: u64, wall: Duration) -> f64 {
    if wall.is_zero() {
        return 0.0;
    }
    bases as f64 / wall.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::Seq;

    fn task(n: usize) -> AlignTask {
        let q = Seq::from_ascii("A".repeat(n).as_bytes()).unwrap();
        AlignTask::new(0, 0, q.clone(), q)
    }

    #[test]
    fn accounting() {
        let tasks = vec![task(100), task(200)];
        let t = BatchTiming::new(&tasks, Duration::from_secs(2));
        assert_eq!(t.tasks, 2);
        assert_eq!(t.query_bases, 300);
        assert_eq!(t.total_bases, 600);
        assert!((t.bases_per_sec() - 150.0).abs() < 1e-9);
        assert!((t.alignments_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn speedup() {
        let tasks = vec![task(10)];
        let fast = BatchTiming::new(&tasks, Duration::from_millis(100));
        let slow = BatchTiming::new(&tasks, Duration::from_millis(400));
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_guard() {
        assert_eq!(aligned_bases_per_sec(100, Duration::ZERO), 0.0);
        let t = BatchTiming::new(&[], Duration::ZERO);
        assert_eq!(t.alignments_per_sec(), 0.0);
        assert!(t.speedup_over(&t).is_infinite());
    }
}
