//! # genasm-cpu
//!
//! The multi-threaded CPU batch aligner: the paper's "CPU
//! implementation of our improved GenASM algorithm" (and its unimproved
//! counterpart), parallelized over alignment tasks with Rayon — the
//! paper uses 48 threads on a dual-socket Xeon; we use every available
//! core.
//!
//! Besides GenASM this crate can drive *any* [`GlobalAligner`] over a
//! batch, which is how the benchmark harness times KSW2 and Edlib under
//! identical threading.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use align_core::{AlignTask, Alignment, GlobalAligner, ReusableAligner, Seq};
use genasm_core::{AlignWorkspace, GenAsmConfig, MemStats};
use rayon::prelude::*;

pub mod throughput;

pub use throughput::{aligned_bases_per_sec, BatchTiming};

/// Outcome of one batch run.
#[derive(Debug)]
pub struct BatchResult {
    /// Alignments in task order; `None` for tasks the aligner rejected
    /// (e.g. edit budget exhausted under a small `k`).
    pub alignments: Vec<Option<Alignment>>,
    /// Wall-clock timing of the batch.
    pub timing: BatchTiming,
    /// Aggregated GenASM instrumentation (zeroed for foreign aligners).
    pub stats: MemStats,
    /// Number of rejected tasks.
    pub failures: usize,
}

/// Align a batch with the GenASM configuration `cfg`, in parallel.
///
/// Each Rayon worker creates **one** [`AlignWorkspace`] (`map_init`)
/// and reuses it for every task that worker claims, so scratch rows,
/// traceback arenas and staging buffers are allocated once per worker,
/// not once per task — the batch hot path is allocation-free in steady
/// state.
pub fn align_batch_genasm(tasks: &[AlignTask], cfg: &GenAsmConfig) -> BatchResult {
    cfg.validate();
    let start = Instant::now();
    let w = cfg.w;
    let results: Vec<(Option<Alignment>, MemStats)> = tasks
        .par_iter()
        .map_init(
            move || AlignWorkspace::with_capacity(w),
            |ws, t| {
                // The mapper's per-task edit bound caps each window's
                // error-row sweep; too-tight bounds fall back to a
                // full-budget rescue inside the hinted driver, so the
                // result never depends on the hint.
                let hint = t.max_edits.map(|e| e as usize);
                let a =
                    genasm_core::align_with_workspace_hinted(&t.query, &t.target, cfg, hint, ws)
                        .ok();
                (a, ws.take_stats())
            },
        )
        .collect();
    let elapsed = start.elapsed();

    let mut stats = MemStats::new();
    let mut failures = 0;
    let mut alignments = Vec::with_capacity(results.len());
    for (a, s) in results {
        stats.merge(&s);
        if a.is_none() {
            failures += 1;
        }
        alignments.push(a);
    }
    let timing = BatchTiming::new(tasks, elapsed);
    BatchResult {
        alignments,
        timing,
        stats,
        failures,
    }
}

/// Align a batch with any [`ReusableAligner`]: one workspace per
/// worker, reused across that worker's share of the batch. This is the
/// code path the bench harness uses to compare backends under identical
/// threading *and* identical allocation discipline.
///
/// The returned [`BatchResult::stats`] is zeroed — the generic
/// workspace has no common instrumentation interface (same contract as
/// [`align_batch_with`]). Use [`align_batch_genasm`] when GenASM
/// [`MemStats`] are needed.
pub fn align_batch_reusing<A: ReusableAligner + Sync>(
    tasks: &[AlignTask],
    aligner: &A,
) -> BatchResult {
    let start = Instant::now();
    let failures = AtomicU64::new(0);
    let alignments: Vec<Option<Alignment>> = tasks
        .par_iter()
        .map_init(A::Workspace::default, |ws, t| {
            match aligner.align_reusing(ws, &t.query, &t.target) {
                Ok(a) => Some(a),
                Err(_) => {
                    failures.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
        })
        .collect();
    let elapsed = start.elapsed();
    BatchResult {
        timing: BatchTiming::new(tasks, elapsed),
        alignments,
        stats: MemStats::new(),
        failures: failures.load(Ordering::Relaxed) as usize,
    }
}

/// Align a batch with an arbitrary aligner (used for the baselines).
pub fn align_batch_with<A: GlobalAligner + Sync>(tasks: &[AlignTask], aligner: &A) -> BatchResult {
    let start = Instant::now();
    let failures = AtomicU64::new(0);
    let alignments: Vec<Option<Alignment>> = tasks
        .par_iter()
        .map(|t| match aligner.align(&t.query, &t.target) {
            Ok(a) => Some(a),
            Err(_) => {
                failures.fetch_add(1, Ordering::Relaxed);
                None
            }
        })
        .collect();
    let elapsed = start.elapsed();
    BatchResult {
        timing: BatchTiming::new(tasks, elapsed),
        alignments,
        stats: MemStats::new(),
        failures: failures.load(Ordering::Relaxed) as usize,
    }
}

/// A GenASM batch aligner bound to a configuration, exposing the
/// [`GlobalAligner`] interface for single pairs too.
#[derive(Debug, Clone)]
pub struct CpuBatchAligner {
    /// The configuration used for every task.
    pub cfg: GenAsmConfig,
}

impl CpuBatchAligner {
    /// Improved GenASM.
    pub fn improved() -> CpuBatchAligner {
        CpuBatchAligner {
            cfg: GenAsmConfig::improved(),
        }
    }

    /// Unimproved GenASM.
    pub fn baseline() -> CpuBatchAligner {
        CpuBatchAligner {
            cfg: GenAsmConfig::baseline(),
        }
    }

    /// Run a batch.
    pub fn run(&self, tasks: &[AlignTask]) -> BatchResult {
        align_batch_genasm(tasks, &self.cfg)
    }
}

impl ReusableAligner for CpuBatchAligner {
    type Workspace = AlignWorkspace;

    fn align_reusing(
        &self,
        ws: &mut AlignWorkspace,
        query: &Seq,
        target: &Seq,
    ) -> align_core::Result<Alignment> {
        genasm_core::align_with_workspace(query, target, &self.cfg, ws)
    }
}

impl GlobalAligner for CpuBatchAligner {
    fn align(&self, query: &Seq, target: &Seq) -> align_core::Result<Alignment> {
        let mut stats = MemStats::new();
        genasm_core::align_with_stats(query, target, &self.cfg, &mut stats)
    }

    fn name(&self) -> &'static str {
        if self.cfg.improvements == genasm_core::Improvements::ALL {
            "genasm-cpu-improved"
        } else if self.cfg.improvements == genasm_core::Improvements::NONE {
            "genasm-cpu-baseline"
        } else {
            "genasm-cpu-custom"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::TaskBatch;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    fn small_batch() -> TaskBatch {
        let mut b = TaskBatch::new();
        for i in 0..32u32 {
            let unit = ["ACGTTGCA", "TTAGGCAC", "GGATCCAT", "ACCACGTA"][i as usize % 4];
            let q = seq(&unit.repeat(20));
            let mut tb = q.to_ascii();
            tb[(i as usize * 3) % 120] = b'A';
            let t = seq(std::str::from_utf8(&tb).unwrap());
            b.push(AlignTask::new(i, 0, q, t));
        }
        b
    }

    #[test]
    fn batch_aligns_everything() {
        let batch = small_batch();
        let res = align_batch_genasm(&batch.tasks, &GenAsmConfig::improved());
        assert_eq!(res.failures, 0);
        assert_eq!(res.alignments.len(), 32);
        for (t, a) in batch.tasks.iter().zip(&res.alignments) {
            a.as_ref().unwrap().check(&t.query, &t.target).unwrap();
        }
        assert!(res.stats.windows >= 32);
        assert!(res.timing.wall.as_nanos() > 0);
    }

    #[test]
    fn improved_and_baseline_same_results_in_batch() {
        let batch = small_batch();
        let imp = align_batch_genasm(&batch.tasks, &GenAsmConfig::improved());
        let base = align_batch_genasm(&batch.tasks, &GenAsmConfig::baseline());
        for (a, b) in imp.alignments.iter().zip(&base.alignments) {
            assert_eq!(a.as_ref().unwrap().cigar, b.as_ref().unwrap().cigar);
        }
        assert!(base.stats.table_words > imp.stats.table_words);
    }

    #[test]
    fn foreign_aligner_batches() {
        let batch = small_batch();
        let res = align_batch_with(&batch.tasks, &baselines::MyersAligner::new());
        assert_eq!(res.failures, 0);
        for (t, a) in batch.tasks.iter().zip(&res.alignments) {
            a.as_ref().unwrap().check(&t.query, &t.target).unwrap();
        }
    }

    #[test]
    fn budget_failures_are_counted_not_fatal() {
        let mut cfg = GenAsmConfig::improved();
        cfg.k = 2;
        let mut batch = TaskBatch::new();
        batch.push(AlignTask::new(0, 0, seq("ACGTACGT"), seq("ACGTACGT")));
        batch.push(AlignTask::new(1, 0, seq("AAAAAAAA"), seq("TTTTTTTT")));
        let res = align_batch_genasm(&batch.tasks, &cfg);
        assert_eq!(res.failures, 1);
        assert!(res.alignments[0].is_some());
        assert!(res.alignments[1].is_none());
    }

    #[test]
    fn empty_batch() {
        let res = align_batch_genasm(&[], &GenAsmConfig::improved());
        assert_eq!(res.alignments.len(), 0);
        assert_eq!(res.failures, 0);
    }

    #[test]
    fn reusing_batch_matches_per_task_path() {
        // The map_init workspace-reuse path must be bit-identical to
        // aligning every task with a fresh workspace.
        let batch = small_batch();
        let reused = align_batch_genasm(&batch.tasks, &GenAsmConfig::improved());
        let mut fresh_stats = MemStats::new();
        for (t, a) in batch.tasks.iter().zip(&reused.alignments) {
            let mut s = MemStats::new();
            let fresh = genasm_core::align_with_stats(
                &t.query,
                &t.target,
                &GenAsmConfig::improved(),
                &mut s,
            )
            .unwrap();
            assert_eq!(a.as_ref().unwrap().cigar, fresh.cigar);
            fresh_stats.merge(&s);
        }
        assert_eq!(reused.stats, fresh_stats, "instrumentation must not drift");
    }

    #[test]
    fn reusable_trait_batch_works_for_genasm() {
        let batch = small_batch();
        let res = align_batch_reusing(&batch.tasks, &CpuBatchAligner::improved());
        assert_eq!(res.failures, 0);
        for (t, a) in batch.tasks.iter().zip(&res.alignments) {
            a.as_ref().unwrap().check(&t.query, &t.target).unwrap();
        }
    }

    #[test]
    fn reusable_trait_batch_works_for_baselines() {
        let batch = small_batch();
        let res = align_batch_reusing(&batch.tasks, &baselines::MyersAligner::new());
        assert_eq!(res.failures, 0);
        for (t, a) in batch.tasks.iter().zip(&res.alignments) {
            a.as_ref().unwrap().check(&t.query, &t.target).unwrap();
        }
    }
}
