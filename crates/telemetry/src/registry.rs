//! The metric registry: named handles, registered once, recorded
//! lock-free, snapshotted on demand.
//!
//! The registry's mutex guards only the name → handle map; every
//! returned handle is an `Arc` whose operations are relaxed atomics.
//! Registering the same name twice returns the *same* handle (so
//! independent stages can look up a metric without coordinating),
//! and registering a name as two different kinds panics — that is a
//! programming error, not a runtime condition.
//!
//! Metrics may carry one label pair (e.g.
//! `backend_queue_wait_ns{backend="cpu"}`) for per-backend series;
//! labeled series share their name's type.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::json;

/// A monotonic counter (wait-free `add`, relaxed).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (in-flight residency) or
/// track a high-water mark via [`Gauge::set_max`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Add `n`, returning the new value (for high-water tracking).
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtract `n`.
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Store `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise to `v` if larger (high-water mark).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    label: Option<(String, String)>,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The name → handle map. See the module docs for the contract.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<Key, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, label: Option<(&str, &str)>, make: Metric) -> Metric {
        let key = Key {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
        };
        let mut map = self.metrics.lock().expect("registry mutex poisoned");
        let existing = map.entry(key).or_insert(make);
        existing.clone()
    }

    /// Get or register a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, None, Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a counter with one label pair.
    pub fn labeled_counter(&self, name: &str, key: &str, value: &str) -> Arc<Counter> {
        match self.get_or_insert(
            name,
            Some((key, value)),
            Metric::Counter(Arc::new(Counter::new())),
        ) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, None, Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, None, Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or register a histogram with one label pair.
    pub fn labeled_histogram(&self, name: &str, key: &str, value: &str) -> Arc<Histogram> {
        match self.get_or_insert(
            name,
            Some((key, value)),
            Metric::Histogram(Arc::new(Histogram::new())),
        ) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Point-in-time copy of every registered metric, sorted by name
    /// then label (deterministic rendering).
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("registry mutex poisoned");
        Snapshot {
            entries: map
                .iter()
                .map(|(k, m)| SnapshotEntry {
                    name: k.name.clone(),
                    label: k.label.clone(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value (not monotonic).
    Gauge(u64),
    /// Histogram copy.
    Histogram(HistogramSnapshot),
}

/// One named entry of a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// Optional single label pair.
    pub label: Option<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

impl SnapshotEntry {
    /// The exposition key: `name` or `name{key="value"}`.
    pub fn key(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
        }
    }
}

/// A point-in-time copy of a whole [`Registry`], ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Sorted entries (name-major, label-minor).
    pub entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// Look up an unlabeled entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.label.is_none())
            .map(|e| &e.value)
    }

    /// Unlabeled counter value by name (0 when absent — test helper).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Single-line JSON object keyed by [`SnapshotEntry::key`].
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(&json::escape(&e.key()));
            s.push_str("\":");
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => s.push_str(&v.to_string()),
                MetricValue::Histogram(h) => s.push_str(&h.to_json()),
            }
        }
        s.push('}');
        s
    }

    /// Prometheus text exposition. `prefix` is prepended to every
    /// metric name (e.g. `genasm_`); counters get a `_total` suffix.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let mut last_typed: Option<String> = None;
        for e in &self.entries {
            let labels = match &e.label {
                None => String::new(),
                Some((k, v)) => format!("{k}=\"{}\"", json::escape(v)),
            };
            match &e.value {
                MetricValue::Counter(v) => {
                    let name = format!("{prefix}{}_total", e.name);
                    if last_typed.as_deref() != Some(name.as_str()) {
                        let _ = writeln!(out, "# TYPE {name} counter");
                        last_typed = Some(name.clone());
                    }
                    let braced = if labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{labels}}}")
                    };
                    let _ = writeln!(out, "{name}{braced} {v}");
                }
                MetricValue::Gauge(v) => {
                    let name = format!("{prefix}{}", e.name);
                    if last_typed.as_deref() != Some(name.as_str()) {
                        let _ = writeln!(out, "# TYPE {name} gauge");
                        last_typed = Some(name.clone());
                    }
                    let braced = if labels.is_empty() {
                        String::new()
                    } else {
                        format!("{{{labels}}}")
                    };
                    let _ = writeln!(out, "{name}{braced} {v}");
                }
                MetricValue::Histogram(h) => {
                    let name = format!("{prefix}{}", e.name);
                    if last_typed.as_deref() == Some(name.as_str()) {
                        // Another labeled series of the same histogram:
                        // skip the duplicate TYPE line.
                        let mut body = String::new();
                        h.write_prometheus(&mut body, &name, &labels);
                        let without_type = body
                            .lines()
                            .filter(|l| !l.starts_with("# TYPE"))
                            .collect::<Vec<_>>()
                            .join("\n");
                        let _ = writeln!(out, "{without_type}");
                    } else {
                        h.write_prometheus(&mut out, &name, &labels);
                        last_typed = Some(name);
                    }
                }
            }
        }
        out
    }

    /// Check that `self` could be an earlier snapshot than `later`:
    /// every counter and every histogram field is `≤` its counterpart
    /// (gauges are exempt — they move both ways). Returns the first
    /// offending metric key on failure.
    pub fn monotonic_le(&self, later: &Snapshot) -> Result<(), String> {
        for e in &self.entries {
            let key = e.key();
            let found = later
                .entries
                .iter()
                .find(|l| l.name == e.name && l.label == e.label);
            match (&e.value, found.map(|l| &l.value)) {
                (MetricValue::Gauge(_), _) => {}
                (_, None) => return Err(format!("{key}: missing from later snapshot")),
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    if a > b {
                        return Err(format!("{key}: counter went backwards ({a} > {b})"));
                    }
                }
                (MetricValue::Histogram(a), Some(MetricValue::Histogram(b))) => {
                    if !a.monotonic_le(b) {
                        return Err(format!("{key}: histogram went backwards"));
                    }
                }
                (_, Some(other)) => {
                    return Err(format!("{key}: kind changed to {other:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_by_name() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("hits").get(), 3);
        assert_eq!(r.snapshot().counter("hits"), 3);
    }

    #[test]
    fn labels_separate_series() {
        let r = Registry::new();
        r.labeled_counter("batches", "backend", "cpu").add(5);
        r.labeled_counter("batches", "backend", "gpu-sim").add(7);
        let snap = r.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].key(), "batches{backend=\"cpu\"}");
        let json = snap.to_json();
        assert!(
            json.contains("\"batches{backend=\\\"cpu\\\"}\":5"),
            "{json}"
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_monotonicity_is_checked() {
        let r = Registry::new();
        let c = r.counter("n");
        let h = r.histogram("lat");
        let g = r.gauge("inflight");
        c.add(1);
        h.record(10);
        g.set(100);
        let a = r.snapshot();
        c.add(1);
        h.record(20);
        g.set(1); // gauges may fall without breaking monotonicity
        let b = r.snapshot();
        assert!(a.monotonic_le(&b).is_ok());
        let err = b.monotonic_le(&a).unwrap_err();
        assert!(err.contains("n") || err.contains("lat"), "{err}");
    }

    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let r = Registry::new();
        r.counter("reads_in").add(6);
        r.gauge("inflight_bases").set(42);
        r.histogram("read_latency_ns").record(1000);
        r.labeled_histogram("backend_execute_ns", "backend", "cpu")
            .record(5);
        let prom = r.snapshot().to_prometheus("genasm_");
        assert!(
            prom.contains("# TYPE genasm_reads_in_total counter"),
            "{prom}"
        );
        assert!(prom.contains("genasm_reads_in_total 6"), "{prom}");
        assert!(
            prom.contains("# TYPE genasm_inflight_bases gauge"),
            "{prom}"
        );
        assert!(
            prom.contains("genasm_read_latency_ns_bucket{le=\"+Inf\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("genasm_backend_execute_ns_count{backend=\"cpu\"} 1"),
            "{prom}"
        );
    }
}
