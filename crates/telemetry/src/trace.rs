//! Structured trace recorder emitting Chrome trace-event JSON.
//!
//! The output is a JSON array of event objects — the "JSON Array
//! Format" understood by Perfetto and `chrome://tracing`. We emit
//! complete spans (`"ph":"X"` with microsecond `ts`/`dur`), instant
//! events (`"ph":"i"`), and thread-name metadata (`"ph":"M"`), one
//! event per line so the file is greppable and streamable.
//!
//! Timestamps are microseconds since the recorder's creation
//! (`Instant`-based, monotonic). All events share `pid` 1; `tid` is a
//! caller-chosen lane number, named via [`TraceRecorder::thread_name`]
//! so the viewer shows stage lanes rather than raw ids.
//!
//! Recording takes a mutex per event — tracing is an opt-in debugging
//! aid, not a hot-path metric; when no recorder is configured the
//! callers skip all of this entirely.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::json;

/// One `"args"` value on a trace event.
#[derive(Debug, Clone)]
pub enum TraceArg {
    /// An unsigned integer argument.
    U64(u64),
    /// A string argument.
    Str(String),
}

impl From<u64> for TraceArg {
    fn from(v: u64) -> TraceArg {
        TraceArg::U64(v)
    }
}

impl From<usize> for TraceArg {
    fn from(v: usize) -> TraceArg {
        TraceArg::U64(v as u64)
    }
}

impl From<&str> for TraceArg {
    fn from(v: &str) -> TraceArg {
        TraceArg::Str(v.to_string())
    }
}

impl From<String> for TraceArg {
    fn from(v: String) -> TraceArg {
        TraceArg::Str(v)
    }
}

impl TraceArg {
    fn render(&self) -> String {
        match self {
            TraceArg::U64(v) => v.to_string(),
            TraceArg::Str(s) => format!("\"{}\"", json::escape(s)),
        }
    }
}

struct TraceOut {
    w: Box<dyn Write + Send>,
    events: u64,
    done: bool,
}

/// A shared recorder writing Chrome trace-event JSON to one sink.
pub struct TraceRecorder {
    epoch: Instant,
    out: Mutex<TraceOut>,
}

impl fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let events = self.out.lock().map(|o| o.events).unwrap_or(0);
        f.debug_struct("TraceRecorder")
            .field("events", &events)
            .finish()
    }
}

impl TraceRecorder {
    /// Open `path` for writing and start the event array.
    pub fn create(path: &Path) -> io::Result<TraceRecorder> {
        let f = File::create(path)?;
        Ok(TraceRecorder::to_writer(Box::new(BufWriter::new(f))))
    }

    /// Record into an arbitrary writer (tests, benches, `io::sink`).
    pub fn to_writer(mut w: Box<dyn Write + Send>) -> TraceRecorder {
        // A write failure here surfaces on finish(), which checks the
        // writer again; trace output is best-effort until then.
        let _ = w.write_all(b"[\n");
        TraceRecorder {
            epoch: Instant::now(),
            out: Mutex::new(TraceOut {
                w,
                events: 0,
                done: false,
            }),
        }
    }

    /// The recorder's time origin; span starts are measured from it.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    fn micros_since_epoch(&self, at: Instant) -> f64 {
        at.checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_nanos() as f64
            / 1000.0
    }

    fn emit(&self, body: &str) {
        let mut out = self.out.lock().expect("trace mutex poisoned");
        if out.done {
            return;
        }
        let sep = if out.events == 0 { "" } else { ",\n" };
        let line = format!("{sep}{body}");
        if out.w.write_all(line.as_bytes()).is_ok() {
            out.events += 1;
        }
    }

    /// Name a `tid` lane (`"ph":"M"` metadata event).
    pub fn thread_name(&self, tid: u64, name: &str) {
        self.emit(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(name)
        ));
    }

    /// A complete span (`"ph":"X"`) on lane `tid`, starting at
    /// `start` and lasting `dur`, with optional `args`.
    pub fn span(
        &self,
        name: &str,
        cat: &str,
        tid: u64,
        start: Instant,
        dur: Duration,
        args: &[(&str, TraceArg)],
    ) {
        self.emit(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":1,\"tid\":{tid},\"args\":{{{}}}}}",
            json::escape(name),
            json::escape(cat),
            self.micros_since_epoch(start),
            dur.as_nanos() as f64 / 1000.0,
            render_args(args),
        ));
    }

    /// A zero-duration instant event (`"ph":"i"`) on lane `tid`.
    pub fn instant_event(&self, name: &str, cat: &str, tid: u64, args: &[(&str, TraceArg)]) {
        self.emit(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
             \"pid\":1,\"tid\":{tid},\"args\":{{{}}}}}",
            json::escape(name),
            json::escape(cat),
            self.micros_since_epoch(Instant::now()),
            render_args(args),
        ));
    }

    /// Close the JSON array and flush. Idempotent; called by `Drop`
    /// as a best-effort fallback, but callers that care about write
    /// errors should call it explicitly.
    pub fn finish(&self) -> io::Result<()> {
        let mut out = self.out.lock().expect("trace mutex poisoned");
        if out.done {
            return Ok(());
        }
        out.done = true;
        out.w.write_all(b"\n]\n")?;
        out.w.flush()
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

fn render_args(args: &[(&str, TraceArg)]) -> String {
    let mut s = String::new();
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(&json::escape(k));
        s.push_str("\":");
        s.push_str(&v.render());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A `Write` handle into a shared buffer the test can inspect.
    #[derive(Clone)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_a_json_array_of_events() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        let rec = TraceRecorder::to_writer(Box::new(buf.clone()));
        rec.thread_name(2, "scheduler");
        let start = Instant::now();
        rec.span(
            "batch-build",
            "pipeline",
            2,
            start,
            Duration::from_micros(150),
            &[("tasks", 12u64.into()), ("backend", "cpu".into())],
        );
        rec.instant_event("flush", "pipeline", 2, &[]);
        rec.finish().unwrap();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.starts_with("[\n"), "{text}");
        assert!(text.trim_end().ends_with(']'), "{text}");
        assert!(text.contains("\"ph\":\"M\""), "{text}");
        assert!(text.contains("\"ph\":\"X\""), "{text}");
        assert!(text.contains("\"dur\":150.000"), "{text}");
        assert!(text.contains("\"tasks\":12"), "{text}");
        assert!(text.contains("\"backend\":\"cpu\""), "{text}");
        assert!(text.contains("\"ph\":\"i\""), "{text}");
        // One event per line: "[", three events (the first two with
        // trailing commas), "]".
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "{text}");
        assert!(lines[1].ends_with(','), "{text}");
        assert!(lines[2].ends_with(','), "{text}");
        assert!(lines[3].ends_with('}'), "{text}");
    }

    #[test]
    fn finish_is_idempotent_and_drop_safe() {
        let buf = SharedBuf(Arc::new(StdMutex::new(Vec::new())));
        {
            let rec = TraceRecorder::to_writer(Box::new(buf.clone()));
            rec.instant_event("only", "t", 0, &[]);
            rec.finish().unwrap();
            rec.finish().unwrap();
            // Events after finish are dropped silently.
            rec.instant_event("late", "t", 0, &[]);
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.matches(']').count(), 1, "{text}");
        assert!(!text.contains("late"), "{text}");
    }
}
