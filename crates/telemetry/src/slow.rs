//! A bounded ring of the slowest observed reads.
//!
//! Aggregate histograms answer "how slow is the tail?"; an operator
//! watching a live run also wants to know *which* reads are in it.
//! [`SlowReads`] keeps the `capacity` slowest observations seen so far
//! — name, latency, and final disposition — under one short mutex per
//! observation. Observations below the current floor are rejected with
//! a single lock-free-ish comparison against a cached atomic floor, so
//! the common (fast) read never contends once the ring is full.
//!
//! Like every other metric in this crate, the ring is strictly
//! passive: it is fed by the sink after a read's output is already
//! decided, and reading it never perturbs recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json;

/// One slow-read entry: who, how slow, and how the read ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRead {
    /// Read name (raw; JSON rendering escapes it).
    pub name: String,
    /// End-to-end latency in nanoseconds.
    pub latency_ns: u64,
    /// Final disposition string (`aligned`, `rescued`,
    /// `unmapped:no_anchors`, `failed`, …).
    pub disposition: String,
}

/// The `capacity` slowest reads observed so far, slowest first.
#[derive(Debug)]
pub struct SlowReads {
    /// Entries sorted by descending latency (ties keep insertion
    /// order); length ≤ `capacity`.
    entries: Mutex<Vec<SlowRead>>,
    /// Latency of the fastest retained entry once the ring is full;
    /// 0 while it still has room. Cached so cheap observations skip
    /// the mutex entirely.
    floor: AtomicU64,
    capacity: usize,
}

impl SlowReads {
    /// An empty ring retaining the `capacity` slowest reads.
    /// `capacity` is clamped to at least 1.
    pub fn new(capacity: usize) -> SlowReads {
        SlowReads {
            entries: Mutex::new(Vec::new()),
            floor: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer one completed read. Retained only if it is among the
    /// slowest seen so far.
    pub fn observe(&self, name: &str, latency_ns: u64, disposition: &str) {
        // Fast path: the ring is full and this read is faster than
        // everything in it. `floor` only rises, so a stale load can
        // merely let a borderline read take the mutex and be rejected
        // there — never drop one that belongs in the ring.
        if latency_ns < self.floor.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().expect("slow-read mutex poisoned");
        let at = entries
            .partition_point(|e: &SlowRead| e.latency_ns >= latency_ns)
            .min(entries.len());
        if at >= self.capacity {
            return;
        }
        entries.insert(
            at,
            SlowRead {
                name: name.to_string(),
                latency_ns,
                disposition: disposition.to_string(),
            },
        );
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            self.floor.store(
                entries.last().map_or(0, |e| e.latency_ns),
                Ordering::Relaxed,
            );
        }
    }

    /// Copy of the current entries, slowest first.
    pub fn snapshot(&self) -> Vec<SlowRead> {
        self.entries
            .lock()
            .expect("slow-read mutex poisoned")
            .clone()
    }

    /// JSON array of the current entries, slowest first:
    /// `[{"read":…,"latency_ns":…,"disposition":…},…]`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, e) in self.snapshot().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"read\":\"{}\",\"latency_ns\":{},\"disposition\":\"{}\"}}",
                json::escape(&e.name),
                e.latency_ns,
                json::escape(&e.disposition)
            ));
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_slowest_in_order() {
        let ring = SlowReads::new(3);
        ring.observe("a", 10, "aligned");
        ring.observe("b", 50, "aligned");
        ring.observe("c", 30, "rescued");
        ring.observe("d", 5, "aligned"); // evicted immediately: ring full? no — room check
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "b");
        assert_eq!(snap[1].name, "c");
        assert_eq!(snap[2].name, "a");
        // Now full: a faster read must not displace anything...
        ring.observe("e", 7, "aligned");
        assert_eq!(ring.snapshot().len(), 3);
        assert_eq!(ring.snapshot()[2].name, "a");
        // ...but a slower one pushes out the floor entry.
        ring.observe("f", 40, "unmapped:no_anchors");
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["b", "f", "c"]
        );
        assert_eq!(snap[1].disposition, "unmapped:no_anchors");
    }

    #[test]
    fn capacity_is_clamped_and_respected() {
        let ring = SlowReads::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.observe("x", 1, "aligned");
        ring.observe("y", 2, "aligned");
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].name, "y");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let ring = SlowReads::new(2);
        ring.observe("tab\tname\"quote", 9, "aligned");
        let j = ring.to_json();
        assert!(j.starts_with('[') && j.ends_with(']'), "{j}");
        assert!(j.contains("tab\\tname\\\"quote"), "{j}");
        assert!(j.contains("\"latency_ns\":9"), "{j}");
        assert_eq!(SlowReads::new(2).to_json(), "[]");
    }

    #[test]
    fn equal_latencies_keep_insertion_order() {
        let ring = SlowReads::new(4);
        ring.observe("first", 10, "aligned");
        ring.observe("second", 10, "aligned");
        let snap = ring.snapshot();
        assert_eq!(snap[0].name, "first");
        assert_eq!(snap[1].name, "second");
    }
}
