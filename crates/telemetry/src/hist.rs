//! Log-bucketed (power-of-two) latency/size histograms.
//!
//! Bucket `0` counts zero-valued observations; bucket `i > 0` counts
//! observations in `[2^(i-1), 2^i)`; the last bucket absorbs
//! everything larger. Power-of-two bucketing costs one
//! `leading_zeros` per record and bounds the relative quantile error
//! at 2× — plenty for latency telemetry, where the interesting
//! signals are order-of-magnitude shifts and tail growth.
//!
//! Recording is a relaxed atomic add; a [`HistogramSnapshot`] can be
//! taken at any moment. The snapshot's `count` is *derived* from the
//! bucket array (so `count == Σ buckets` holds in every snapshot by
//! construction); `sum` is a separate atomic and may lag the buckets
//! by observations in flight. Every field is individually monotonic
//! across snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets. 64 covers the full `u64` range:
/// nanosecond latencies up to ~584 years.
pub const BUCKETS: usize = 64;

/// Bucket index for a value: `0` for zero, else `64 - leading_zeros`
/// clamped into range (the same math as the pipeline's historical
/// batch-size histogram).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the value quantiles report).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i.min(63)).wrapping_sub(1)
    }
}

/// A concurrent power-of-two histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation (wait-free, relaxed).
    pub fn record(&self, value: u64) {
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy, safe during concurrent recording.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable copy of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations per power-of-two bucket (length [`BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total observations (always `Σ buckets`).
    pub count: u64,
    /// Sum of observed values (may lag `buckets` under concurrency).
    pub sum: u64,
    /// Exact largest observed value (quantiles are bucket upper
    /// bounds, so without this the true outlier is rounded up to the
    /// next power of two). 0 when empty.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q ∈ (0, 1]`, reported as the containing
    /// bucket's upper bound (≤ 2× the true value). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value (exact, from `sum / count`).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// True when `self` could be an earlier snapshot of the same
    /// histogram as `later`: every bucket, the count, and the sum are
    /// all `≤` their counterparts.
    pub fn monotonic_le(&self, later: &HistogramSnapshot) -> bool {
        self.count <= later.count
            && self.sum <= later.sum
            && self.max <= later.max
            && self.buckets.iter().zip(&later.buckets).all(|(a, b)| a <= b)
            && self.buckets.len() == later.buckets.len()
    }

    /// Compact JSON object: count, sum, mean, p50/p90/p99, exact max,
    /// and the non-empty buckets as `[index, count]` pairs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.mean(),
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        );
        let mut first = true;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c != 0 {
                if !first {
                    s.push(',');
                }
                first = false;
                let _ = write!(s, "[{i},{c}]");
            }
        }
        s.push_str("]}");
        s
    }

    /// Append Prometheus text exposition for this histogram:
    /// cumulative `_bucket{le=…}` series (one per non-empty prefix
    /// plus `+Inf`), `_sum`, and `_count`. `labels` is either empty
    /// or a `key="value"` fragment to merge into each series.
    pub fn write_prometheus(&self, out: &mut String, name: &str, labels: &str) {
        use std::fmt::Write as _;
        let merge = |le: &str| {
            if labels.is_empty() {
                format!("{{le=\"{le}\"}}")
            } else {
                format!("{{{labels},le=\"{le}\"}}")
            }
        };
        let plain = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let _ = writeln!(out, "# TYPE {name} histogram");
        let highest = self
            .buckets
            .iter()
            .rposition(|&c| c != 0)
            .map_or(0, |i| i + 1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().take(highest).enumerate() {
            cum += c;
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                merge(&bucket_upper_bound(i).to_string())
            );
        }
        let _ = writeln!(out, "{name}_bucket{} {}", merge("+Inf"), self.count);
        let _ = writeln!(out, "{name}_sum{plain} {}", self.sum);
        let _ = writeln!(out, "{name}_count{plain} {}", self.count);
        let _ = writeln!(out, "{name}_max{plain} {}", self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(4096), 13);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(13), 8191);
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100); // bucket 7, upper 127
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14, upper 16383
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(s.p99(), 16383);
        assert_eq!(s.max, 10_000, "max is exact, not a bucket bound");
        assert!((s.mean() - 1090.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshots_are_monotonic() {
        let h = Histogram::new();
        h.record(5);
        let a = h.snapshot();
        h.record(500);
        h.record(0);
        let b = h.snapshot();
        assert!(a.monotonic_le(&b));
        assert!(!b.monotonic_le(&a));
        assert_eq!(b.buckets[0], 1, "zero lands in bucket 0");
    }

    #[test]
    fn json_lists_nonempty_buckets() {
        let h = Histogram::new();
        h.record(4096);
        let j = h.snapshot().to_json();
        assert!(j.contains("\"count\":1"), "{j}");
        assert!(j.contains("[13,1]"), "{j}");
        assert!(j.contains("\"p50\":8191"), "{j}");
        assert!(j.contains("\"max\":4096"), "{j}");
    }

    #[test]
    fn max_is_exact_and_monotonic() {
        let h = Histogram::new();
        h.record(700);
        h.record(300);
        let a = h.snapshot();
        assert_eq!(a.max, 700);
        assert_eq!(a.p99(), 1023, "quantile rounds up; max must not");
        h.record(5);
        let b = h.snapshot();
        assert_eq!(b.max, 700, "smaller observations leave max alone");
        assert!(a.monotonic_le(&b));
        h.record(9_999);
        assert_eq!(h.snapshot().max, 9_999);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let h = Histogram::new();
        h.record(1);
        h.record(3);
        let mut out = String::new();
        h.snapshot().write_prometheus(&mut out, "x_ns", "");
        assert!(out.contains("# TYPE x_ns histogram"), "{out}");
        assert!(out.contains("x_ns_bucket{le=\"1\"} 1"), "{out}");
        assert!(out.contains("x_ns_bucket{le=\"3\"} 2"), "{out}");
        assert!(out.contains("x_ns_bucket{le=\"+Inf\"} 2"), "{out}");
        assert!(out.contains("x_ns_sum 4"), "{out}");
        assert!(out.contains("x_ns_count 2"), "{out}");
        assert!(out.contains("x_ns_max 3"), "{out}");
        let mut lab = String::new();
        h.snapshot()
            .write_prometheus(&mut lab, "x_ns", "backend=\"cpu\"");
        assert!(
            lab.contains("x_ns_bucket{backend=\"cpu\",le=\"+Inf\"} 2"),
            "{lab}"
        );
        assert!(lab.contains("x_ns_count{backend=\"cpu\"} 2"), "{lab}");
        assert!(lab.contains("x_ns_max{backend=\"cpu\"} 3"), "{lab}");
    }
}
