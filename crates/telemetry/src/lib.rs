//! # genasm-telemetry
//!
//! The live observability layer shared by the pipeline, the resident
//! service, and the server: a lock-free registry of named counters,
//! gauges, and log-bucketed latency histograms, plus a structured
//! trace recorder that emits Chrome trace-event JSON (loadable in
//! Perfetto or `chrome://tracing`).
//!
//! Design constraints, in order:
//!
//! * **Recording is wait-free.** Every metric handle is an
//!   `Arc`-shared atomic; the registry's mutex is taken only at
//!   *registration* (get-or-create by name), never on the hot path.
//!   Stages clone their handles once and record with relaxed atomic
//!   ops thereafter.
//! * **Snapshot-on-demand.** [`Registry::snapshot`] (and every
//!   individual handle's getter) can be called at any instant of a
//!   live run. Counters and histogram buckets are individually
//!   monotonic, so two snapshots taken in order are comparable
//!   field-by-field ([`Snapshot::monotonic_le`]). Cross-field
//!   invariants are *eventual*: a snapshot races in-flight `record()`
//!   calls, so a histogram's `sum` may lag its buckets by values
//!   being recorded right now — but no field ever moves backwards and
//!   nothing is double-counted.
//! * **Telemetry is passive.** Nothing in this crate feeds back into
//!   scheduling or alignment; enabling or disabling it must never
//!   change a consumer's output bytes.
//!
//! The crate is dependency-free (std only) so every layer of the
//! workspace can use it, including benches.

pub mod hist;
pub mod json;
pub mod registry;
pub mod slow;
pub mod trace;

pub use hist::{bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricValue, Registry, Snapshot, SnapshotEntry};
pub use slow::{SlowRead, SlowReads};
pub use trace::{TraceArg, TraceRecorder};
