//! Minimal JSON string helpers (the workspace is offline — no serde).

/// Escape a string for embedding in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON-safe number (non-finite becomes 0).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn numbers_are_finite() {
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(1.5), "1.500");
    }
}
