//! # baselines
//!
//! Reimplementations of the two state-of-the-art CPU aligners the paper
//! compares against:
//!
//! * [`MyersAligner`] — Edlib-style bit-parallel edit distance
//!   (Myers 1999; Šošić & Šikić 2017): multi-block words, Ukkonen
//!   banding, band doubling, full traceback.
//! * [`Ksw2Aligner`] — KSW2-style banded global alignment with affine
//!   gap penalties (Gotoh 1982; Suzuki & Kasahara 2018; Li 2018).
//!
//! Both implement [`align_core::GlobalAligner`], produce validated
//! CIGARs, and are tested against the quadratic NW oracle.

pub mod ksw2;
pub mod myers;

pub use ksw2::{Ksw2Aligner, Scoring};
pub use myers::{ModeDistance, MyersAligner, MyersMode};
