//! KSW2-style aligner: banded global alignment with affine gap costs
//! (Gotoh 1982), the scoring model and role of minimap2's KSW2 kernel
//! (`ksw2_gg`/`ksw2_extz`; Suzuki & Kasahara 2018, Li 2018).
//!
//! This is the paper's "exact scoring" CPU baseline. Like KSW2 it is
//! quadratic in the band area — which is exactly why GenASM beats it by
//! an order of magnitude on 10 kbp reads (experiments E1/E5).
//!
//! The implementation is a cache-friendly banded Gotoh with one rolling
//! row of `(H, E, F)` scores and one packed traceback byte per banded
//! cell (2 bits H-source + 1 bit E-extend + 1 bit F-extend), mirroring
//! KSW2's `p` matrix.

use align_core::{AlignError, Alignment, Cigar, CigarOp, GlobalAligner, Seq};

const NEG_INF: i32 = i32::MIN / 2;

/// Affine-gap scoring parameters (penalties are positive numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scoring {
    /// Score added per matching base (positive).
    pub match_score: i32,
    /// Penalty subtracted per mismatching base (positive).
    pub mismatch: i32,
    /// Gap-open penalty (positive); a gap of length `L` costs
    /// `gap_open + L * gap_ext`.
    pub gap_open: i32,
    /// Gap-extension penalty (positive).
    pub gap_ext: i32,
}

impl Scoring {
    /// minimap2's PacBio preset (`-x map-pb`): a=2, b=5, q=4, e=2.
    pub fn map_pb() -> Scoring {
        Scoring {
            match_score: 2,
            mismatch: 5,
            gap_open: 4,
            gap_ext: 2,
        }
    }

    /// Unit-cost edit distance encoded as scores (match 0, everything
    /// else -1): the optimal score is then `-edit_distance`. Used by
    /// tests to cross-check against the NW oracle.
    pub fn unit() -> Scoring {
        Scoring {
            match_score: 0,
            mismatch: 1,
            gap_open: 0,
            gap_ext: 1,
        }
    }

    #[inline]
    fn substitution(&self, eq: bool) -> i32 {
        if eq {
            self.match_score
        } else {
            -self.mismatch
        }
    }
}

// Traceback byte layout.
const SRC_MASK: u8 = 0b11;
const SRC_DIAG: u8 = 0;
const SRC_E: u8 = 1; // H came from E (gap in query, consumes target)
const SRC_F: u8 = 2; // H came from F (gap in target, consumes query)
const E_EXT: u8 = 0b0100;
const F_EXT: u8 = 0b1000;

/// Banded affine-gap global aligner.
#[derive(Debug, Clone)]
pub struct Ksw2Aligner {
    /// Scoring parameters.
    pub scoring: Scoring,
    /// Band half-width around the length-difference-adjusted diagonal.
    /// The result is optimal when the optimal path stays within the
    /// band (KSW2's `-w`); a too-narrow band yields a valid but
    /// possibly suboptimal alignment, exactly like KSW2.
    pub band: usize,
}

impl Ksw2Aligner {
    /// KSW2 with minimap2's PacBio scoring and a 751-wide band
    /// (minimap2's long-read default bandwidth is 500; we widen it a
    /// little because our evaluation uses raw candidate windows).
    pub fn new() -> Ksw2Aligner {
        Ksw2Aligner {
            scoring: Scoring::map_pb(),
            band: 751,
        }
    }

    /// Unbanded (full DP) variant — exact but O(nm); used by tests.
    pub fn exact(scoring: Scoring) -> Ksw2Aligner {
        Ksw2Aligner {
            scoring,
            band: usize::MAX,
        }
    }

    /// Align and also return the affine-gap score.
    pub fn align_scored(&self, query: &Seq, target: &Seq) -> align_core::Result<(Alignment, i32)> {
        let m = query.len();
        let n = target.len();
        if m == 0 || n == 0 {
            let mut c = Cigar::new();
            c.push_run(m as u32, CigarOp::Ins);
            c.push_run(n as u32, CigarOp::Del);
            let score = if m + n == 0 {
                0
            } else {
                -(self.scoring.gap_open + self.scoring.gap_ext * (m + n) as i32)
            };
            return Ok((Alignment::from_cigar(c), score));
        }

        // The banded window on row i spans diagonals
        // j - i in [dlo, dhi].
        let diff = n as i64 - m as i64;
        let band = self.band.min(m + n) as i64;
        let dlo = diff.min(0) - band;
        let dhi = diff.max(0) + band;
        let width = (dhi - dlo + 1) as usize;

        let col_lo = |i: usize| -> usize { (i as i64 + dlo).max(0) as usize };
        let col_hi = |i: usize| -> usize { ((i as i64 + dhi).min(n as i64)) as usize };

        // Rolling row of H; F is carried per column in `f_row`; E is a
        // running value within each row.
        let mut h_prev = vec![NEG_INF; n + 1];
        let mut h_cur = vec![NEG_INF; n + 1];
        let mut f_row = vec![NEG_INF; n + 1];

        // Traceback bytes, one per banded cell.
        let mut tb = vec![0u8; (m + 1) * width];
        let tb_idx = |i: usize, j: usize| -> usize {
            let off = (j as i64 - i as i64 - dlo) as usize;
            debug_assert!(off < width);
            i * width + off
        };

        let sc = self.scoring;
        // Row 0: leading deletions.
        for j in 0..=col_hi(0) {
            h_prev[j] = if j == 0 {
                0
            } else {
                -(sc.gap_open + sc.gap_ext * j as i32)
            };
            if j > 0 {
                tb[tb_idx(0, j)] = SRC_E | if j > 1 { E_EXT } else { 0 };
            }
        }

        for i in 1..=m {
            let lo = col_lo(i);
            let hi = col_hi(i);
            let qb = query.get_code(i - 1);
            // Left boundary of the band on this row.
            let mut e_here = NEG_INF; // E[i][lo-1 .. ] running value
            let mut h_left = NEG_INF;
            if lo == 0 {
                h_left = -(sc.gap_open + sc.gap_ext * i as i32);
                h_cur[0] = h_left;
                tb[tb_idx(i, 0)] = SRC_F | if i > 1 { F_EXT } else { 0 };
            }
            for j in lo.max(1)..=hi {
                // F[i][j]: gap in target (consume query), from row i-1.
                let f_open = h_prev[j].saturating_add(-(sc.gap_open + sc.gap_ext));
                let f_ext = f_row[j].saturating_add(-sc.gap_ext);
                let (f, f_from_ext) = if f_ext > f_open {
                    (f_ext, true)
                } else {
                    (f_open, false)
                };
                f_row[j] = f;

                // E[i][j]: gap in query (consume target), from the left.
                let e_open = h_left.saturating_add(-(sc.gap_open + sc.gap_ext));
                let e_ext = e_here.saturating_add(-sc.gap_ext);
                let (e, e_from_ext) = if e_ext > e_open {
                    (e_ext, true)
                } else {
                    (e_open, false)
                };
                e_here = e;

                // H[i][j].
                let eq = qb == target.get_code(j - 1);
                let diag = h_prev[j - 1].saturating_add(sc.substitution(eq));
                let (h, src) = if diag >= e && diag >= f {
                    (diag, SRC_DIAG)
                } else if e >= f {
                    (e, SRC_E)
                } else {
                    (f, SRC_F)
                };
                let mut byte = src;
                if e_from_ext {
                    byte |= E_EXT;
                }
                if f_from_ext {
                    byte |= F_EXT;
                }
                tb[tb_idx(i, j)] = byte;
                h_cur[j] = h;
                h_left = h;
            }
            // Guard cells just outside the band.
            if lo > 0 {
                h_cur[lo - 1] = NEG_INF;
            }
            if hi < n {
                h_cur[hi + 1] = NEG_INF;
                f_row[hi + 1] = NEG_INF;
            }
            std::mem::swap(&mut h_prev, &mut h_cur);
        }

        let score = h_prev[n];
        if score <= NEG_INF / 2 {
            return Err(AlignError::NoAlignment);
        }

        // Traceback.
        let mut rev: Vec<CigarOp> = Vec::with_capacity(m.max(n));
        let (mut i, mut j) = (m, n);
        #[derive(PartialEq)]
        enum St {
            H,
            E,
            F,
        }
        let mut st = St::H;
        while i > 0 || j > 0 {
            let byte = tb[tb_idx(i, j)];
            match st {
                St::H => {
                    if i == 0 {
                        st = St::E;
                        continue;
                    }
                    if j == 0 {
                        st = St::F;
                        continue;
                    }
                    match byte & SRC_MASK {
                        SRC_DIAG => {
                            let eq = query.get_code(i - 1) == target.get_code(j - 1);
                            rev.push(if eq {
                                CigarOp::Match
                            } else {
                                CigarOp::Mismatch
                            });
                            i -= 1;
                            j -= 1;
                        }
                        SRC_E => st = St::E,
                        _ => st = St::F,
                    }
                }
                St::E => {
                    debug_assert!(j > 0, "E state with no target left");
                    rev.push(CigarOp::Del);
                    let ext = byte & E_EXT != 0;
                    j -= 1;
                    if !ext {
                        st = St::H;
                    }
                }
                St::F => {
                    debug_assert!(i > 0, "F state with no query left");
                    rev.push(CigarOp::Ins);
                    let ext = byte & F_EXT != 0;
                    i -= 1;
                    if !ext {
                        st = St::H;
                    }
                }
            }
        }
        rev.reverse();
        let aln = Alignment::from_cigar(Cigar::from_ops(rev));
        Ok((aln, score))
    }
}

impl Default for Ksw2Aligner {
    fn default() -> Ksw2Aligner {
        Ksw2Aligner::new()
    }
}

impl align_core::ReusableAligner for Ksw2Aligner {
    // The quadratic DP allocates per (m, n) shape; a unit workspace
    // keeps KSW2 drivable by the reuse-aware batch harness.
    type Workspace = ();

    fn align_reusing(
        &self,
        _ws: &mut (),
        query: &Seq,
        target: &Seq,
    ) -> align_core::Result<Alignment> {
        self.align(query, target)
    }
}

impl GlobalAligner for Ksw2Aligner {
    fn align(&self, query: &Seq, target: &Seq) -> align_core::Result<Alignment> {
        self.align_scored(query, target).map(|(a, _)| a)
    }

    fn name(&self) -> &'static str {
        "ksw2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::nw_distance;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn perfect_match_scores_match_points() {
        let a = Ksw2Aligner::exact(Scoring::map_pb());
        let q = seq("ACGTACGT");
        let (aln, score) = a.align_scored(&q, &q).unwrap();
        aln.check(&q, &q).unwrap();
        assert_eq!(aln.edit_distance, 0);
        assert_eq!(score, 16);
    }

    #[test]
    fn unit_scoring_equals_edit_distance() {
        let a = Ksw2Aligner::exact(Scoring::unit());
        let cases = [
            ("ACGT", "ACGT"),
            ("ACGT", "ACCT"),
            ("ACGT", "AGT"),
            ("AGT", "ACGT"),
            ("AAAA", "TTTT"),
            ("ACGTACGTAC", "CGTACGGTACA"),
        ];
        for (q, t) in cases {
            let (q, t) = (seq(q), seq(t));
            let (aln, score) = a.align_scored(&q, &t).unwrap();
            aln.check(&q, &t).unwrap();
            assert_eq!(-score as usize, nw_distance(&q, &t), "{q:?} vs {t:?}");
        }
    }

    #[test]
    fn affine_gap_prefers_single_long_gap() {
        // With affine costs one 3-gap beats three 1-gaps.
        let a = Ksw2Aligner::exact(Scoring::map_pb());
        let q = seq("AAACCCGGGTTT");
        let t = seq("AAAGGGTTT"); // CCC deleted from query
        let (aln, _) = a.align_scored(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
        let (_, _, ins, _) = aln.cigar.op_counts();
        assert_eq!(ins, 3);
        // All three insertions must be in one run.
        let ins_runs = aln
            .cigar
            .runs()
            .iter()
            .filter(|(_, op)| *op == CigarOp::Ins)
            .count();
        assert_eq!(ins_runs, 1);
    }

    #[test]
    fn empty_inputs() {
        let a = Ksw2Aligner::new();
        let (aln, score) = a.align_scored(&Seq::new(), &seq("ACG")).unwrap();
        aln.check(&Seq::new(), &seq("ACG")).unwrap();
        assert_eq!(score, -(4 + 2 * 3));
        let (aln, _) = a.align_scored(&seq("AC"), &Seq::new()).unwrap();
        aln.check(&seq("AC"), &Seq::new()).unwrap();
        let (_, score) = a.align_scored(&Seq::new(), &Seq::new()).unwrap();
        assert_eq!(score, 0);
    }

    #[test]
    fn banded_equals_exact_when_band_sufficient() {
        let exact = Ksw2Aligner::exact(Scoring::map_pb());
        let banded = Ksw2Aligner {
            scoring: Scoring::map_pb(),
            band: 8,
        };
        let q = seq(&"ACGTTGCA".repeat(10));
        let mut tb = q.to_ascii();
        tb[20] = b'T';
        tb.remove(50);
        let t = seq(std::str::from_utf8(&tb).unwrap());
        let (a1, s1) = exact.align_scored(&q, &t).unwrap();
        let (a2, s2) = banded.align_scored(&q, &t).unwrap();
        a1.check(&q, &t).unwrap();
        a2.check(&q, &t).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(a1.edit_distance, a2.edit_distance);
    }

    #[test]
    fn narrow_band_still_valid() {
        // A band of 0 around the shifted diagonal: valid CIGAR, maybe
        // suboptimal score — KSW2's contract with small -w.
        let a = Ksw2Aligner {
            scoring: Scoring::map_pb(),
            band: 0,
        };
        let q = seq("ACGTACGTACGT");
        let t = seq("ACGTACGAACGT");
        let (aln, _) = a.align_scored(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
    }

    #[test]
    fn length_difference_is_respected_by_band() {
        let a = Ksw2Aligner {
            scoring: Scoring::map_pb(),
            band: 2,
        };
        let q = seq("ACGT");
        let t = seq(&"ACGT".repeat(6)); // big length difference
        let (aln, _) = a.align_scored(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
    }
}
