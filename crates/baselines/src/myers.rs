//! Edlib-style aligner: Myers' bit-parallel edit-distance algorithm
//! (Myers, JACM 1999) with multi-block words, Ukkonen banding, and
//! iterative band doubling — the same algorithm family as Edlib
//! (Šošić & Šikić, Bioinformatics 2017), which the paper uses as its
//! strongest CPU baseline.
//!
//! Layout: the query runs vertically (one bit per row, 64 rows per
//! block), the text horizontally (one column per character). Per column
//! we keep, for every *active* block, the vertical-delta bitvectors
//! `Pv`/`Mv` and the running score at the block's bottom row. A block is
//! active when it intersects the Ukkonen band `|i - j| <= k`; blocks
//! activated late start from the exact-or-overestimating "phony" state
//! (`Pv = !0`, score above +height), which cannot disturb in-band values
//! (they only ever overestimate out-of-band cells, and min-cost paths of
//! cost ≤ k never leave the band).
//!
//! The traceback stores the per-column block states and reconstructs
//! arbitrary cell values with O(1) popcount queries from block-bottom
//! scores.

use align_core::{AlignError, Alignment, Cigar, CigarOp, GlobalAligner, Seq};

const INF: i64 = i64::MAX / 4;

/// Per-block pattern-match bitmasks: `peq[b][c]` bit `r` = 1 iff
/// `query[64*b + r] == c` (note: 1 = match here, the Myers convention,
/// opposite to GenASM's 0-active).
struct PatternBlocks {
    m: usize,
    nblocks: usize,
    w_last: usize,
    peq: Vec<[u64; 4]>,
}

impl PatternBlocks {
    fn new(query: &Seq) -> PatternBlocks {
        let m = query.len();
        let nblocks = m.div_ceil(64);
        let mut peq = vec![[0u64; 4]; nblocks];
        for i in 0..m {
            peq[i / 64][query.get_code(i) as usize] |= 1u64 << (i % 64);
        }
        let w_last = if m.is_multiple_of(64) { 64 } else { m % 64 };
        PatternBlocks {
            m,
            nblocks,
            w_last,
            peq,
        }
    }

    /// Bit index used for `hout` extraction / score tracking of block `b`.
    #[inline]
    fn out_bit(&self, b: usize) -> u32 {
        if b + 1 == self.nblocks {
            (self.w_last - 1) as u32
        } else {
            63
        }
    }

    /// 1-indexed bottom row of block `b`.
    #[inline]
    fn bottom_row(&self, b: usize) -> usize {
        (64 * (b + 1)).min(self.m)
    }
}

/// One Myers block step (Edlib's `calculateBlock`).
///
/// `hin` is the horizontal delta entering at the block's top row,
/// returns `(Pv', Mv', hout)` where `hout` is the horizontal delta
/// leaving at `out_bit`.
#[inline(always)]
fn advance_block(pv: u64, mv: u64, eq: u64, hin: i32, out_bit: u32) -> (u64, u64, i32) {
    let eq_in = eq | u64::from(hin < 0);
    let xv = eq | mv;
    let xh = (((eq_in & pv).wrapping_add(pv)) ^ pv) | eq_in;
    let ph = mv | !(xh | pv);
    let mh = pv & xh;
    let hout = if ph >> out_bit & 1 != 0 {
        1
    } else if mh >> out_bit & 1 != 0 {
        -1
    } else {
        0
    };
    let ph = (ph << 1) | u64::from(hin > 0);
    let mh = (mh << 1) | u64::from(hin < 0);
    let pv_out = mh | !(xv | ph);
    let mv_out = ph & xv;
    (pv_out, mv_out, hout)
}

/// Stored state of one active block in one column.
#[derive(Clone, Copy)]
struct BlockState {
    pv: u64,
    mv: u64,
    /// Score (edit distance) at the block's bottom row.
    score: i64,
}

/// Per-column snapshot kept for the traceback.
struct ColumnStore {
    b_lo: usize,
    blocks: Vec<BlockState>,
}

struct Store {
    columns: Vec<ColumnStore>,
}

/// Banded multi-block distance computation. Returns `Some(d)` iff the
/// band `k` certifies the result (`d <= k`). When `store` is provided,
/// per-column block states are recorded for the traceback.
fn compute(
    pb: &PatternBlocks,
    text: &Seq,
    k: usize,
    mut store: Option<&mut Store>,
) -> Option<usize> {
    let m = pb.m;
    let n = text.len();
    if m.abs_diff(n) > k {
        return None;
    }
    let mut pv = vec![!0u64; pb.nblocks];
    let mut mv = vec![0u64; pb.nblocks];
    let mut score: Vec<i64> = (0..pb.nblocks).map(|b| pb.bottom_row(b) as i64).collect();

    // Initially active blocks: rows 1 ..= min(m, 1 + k).
    let mut b_hi = (1 + k).min(m).div_ceil(64) - 1;
    if let Some(s) = store.as_deref_mut() {
        s.columns.clear();
        s.columns.reserve(n);
    }

    for j in 1..=n {
        let c = text.get_code(j - 1) as usize;
        let lo_row = j.saturating_sub(k).max(1);
        let hi_row = (j + k).min(m);
        debug_assert!(lo_row <= m, "band left the pattern, |m-n|>k was checked");
        let b_lo = (lo_row - 1) / 64;
        let nb_hi = (hi_row - 1) / 64;
        // Activate at most one new block per column (the band grows by
        // one row per column).
        while b_hi < nb_hi {
            b_hi += 1;
            pv[b_hi] = !0;
            mv[b_hi] = 0;
            score[b_hi] = score[b_hi - 1] + (pb.bottom_row(b_hi) - pb.bottom_row(b_hi - 1)) as i64;
        }
        // Top boundary: exact +1 for b_lo == 0 (NW first row), an
        // overestimate otherwise (sound within the band).
        let mut hin: i32 = 1;
        for b in b_lo..=b_hi {
            let (npv, nmv, hout) = advance_block(pv[b], mv[b], pb.peq[b][c], hin, pb.out_bit(b));
            pv[b] = npv;
            mv[b] = nmv;
            score[b] += i64::from(hout);
            hin = hout;
        }
        if let Some(s) = store.as_deref_mut() {
            s.columns.push(ColumnStore {
                b_lo,
                blocks: (b_lo..=b_hi)
                    .map(|b| BlockState {
                        pv: pv[b],
                        mv: mv[b],
                        score: score[b],
                    })
                    .collect(),
            });
        }
    }
    if b_hi + 1 != pb.nblocks {
        return None; // the last block never entered the band
    }
    let d = score[pb.nblocks - 1];
    if d >= 0 && (d as usize) <= k {
        Some(d as usize)
    } else {
        None
    }
}

/// Cell value `D[i][j]` (1-indexed) from the stored column states;
/// `INF` when the cell was outside the stored band.
fn value(pb: &PatternBlocks, store: &Store, i: usize, j: usize) -> i64 {
    if j == 0 {
        return i as i64;
    }
    if i == 0 {
        return j as i64;
    }
    let col = &store.columns[j - 1];
    let b = (i - 1) / 64;
    if b < col.b_lo || b >= col.b_lo + col.blocks.len() {
        return INF;
    }
    let st = &col.blocks[b - col.b_lo];
    let bottom = pb.bottom_row(b);
    // Sum of vertical deltas for rows i+1 ..= bottom of this block.
    let lo_bit = (i - 1) % 64 + 1; // bit of row i+1
    let hi_bit = (bottom - 1) % 64; // bit of the bottom row
    if lo_bit > hi_bit {
        return st.score; // i is the bottom row
    }
    let mask = (!0u64 << lo_bit) & (!0u64 >> (63 - hi_bit));
    let delta = (st.pv & mask).count_ones() as i64 - (st.mv & mask).count_ones() as i64;
    st.score - delta
}

/// Alignment modes, mirroring Edlib's `NW` / `SHW` / `HW`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MyersMode {
    /// Global: both sequences end-to-end (Edlib `NW`).
    Global,
    /// Prefix: the whole query against a *prefix* of the target
    /// (Edlib `SHW`, "semi-global with free target end").
    Prefix,
    /// Infix: the whole query against any *substring* of the target
    /// (Edlib `HW`, the mapping mode).
    Infix,
}

/// Result of a mode-aware distance computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeDistance {
    /// The edit distance under the mode's boundary conditions.
    pub distance: usize,
    /// Target position (exclusive) where the best alignment ends.
    pub end: usize,
}

/// The public Edlib-style aligner.
///
/// ```
/// use baselines::MyersAligner;
/// use align_core::{Seq, GlobalAligner};
/// let a = MyersAligner::new();
/// let q = Seq::from_ascii(b"ACGTACGT").unwrap();
/// let t = Seq::from_ascii(b"ACCTACGT").unwrap();
/// assert_eq!(a.align(&q, &t).unwrap().edit_distance, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MyersAligner {
    /// Initial band half-width for the doubling search (default 64).
    pub initial_k: usize,
}

impl MyersAligner {
    /// Aligner with the default doubling schedule.
    pub fn new() -> MyersAligner {
        MyersAligner { initial_k: 64 }
    }

    /// Distance under an Edlib-style mode (unbanded, distance-only).
    ///
    /// `Global` delegates to the banded [`MyersAligner::distance`];
    /// `Prefix` and `Infix` run a full multi-block pass per column and
    /// track the best bottom-row score, like Edlib's SHW/HW modes.
    pub fn distance_mode(&self, query: &Seq, target: &Seq, mode: MyersMode) -> ModeDistance {
        match mode {
            MyersMode::Global => ModeDistance {
                distance: self.distance(query, target),
                end: target.len(),
            },
            MyersMode::Prefix | MyersMode::Infix => {
                let m = query.len();
                let n = target.len();
                if m == 0 {
                    // Empty query: prefix mode may end anywhere at the
                    // cost of the consumed prefix; best is the empty one.
                    return ModeDistance {
                        distance: 0,
                        end: 0,
                    };
                }
                let pb = PatternBlocks::new(query);
                let mut pv = vec![!0u64; pb.nblocks];
                let mut mv = vec![0u64; pb.nblocks];
                let mut score = pb.m as i64;
                let mut best = ModeDistance {
                    distance: m, // align to the empty prefix/substring
                    end: 0,
                };
                let top_hin: i32 = match mode {
                    MyersMode::Prefix => 1, // D[0][j] = j (anchored start)
                    MyersMode::Infix => 0,  // D[0][j] = 0 (free start)
                    MyersMode::Global => unreachable!(),
                };
                for j in 1..=n {
                    let c = target.get_code(j - 1) as usize;
                    let mut hin = top_hin;
                    for b in 0..pb.nblocks {
                        let (npv, nmv, hout) =
                            advance_block(pv[b], mv[b], pb.peq[b][c], hin, pb.out_bit(b));
                        pv[b] = npv;
                        mv[b] = nmv;
                        if b + 1 == pb.nblocks {
                            score += i64::from(hout);
                        }
                        hin = hout;
                    }
                    if score >= 0 && (score as usize) < best.distance {
                        best = ModeDistance {
                            distance: score as usize,
                            end: j,
                        };
                    }
                }
                best
            }
        }
    }

    /// Edit distance only (no traceback storage).
    pub fn distance(&self, query: &Seq, target: &Seq) -> usize {
        if query.is_empty() {
            return target.len();
        }
        if target.is_empty() {
            return query.len();
        }
        let pb = PatternBlocks::new(query);
        let mut k = self
            .initial_k
            .max(1)
            .max(query.len().abs_diff(target.len()));
        loop {
            if let Some(d) = compute(&pb, target, k, None) {
                return d;
            }
            k = (k * 2).min(query.len() + target.len());
        }
    }
}

impl align_core::ReusableAligner for MyersAligner {
    // No cross-alignment scratch yet: the doubling search re-sizes its
    // block columns per (k, n) anyway. The unit workspace still lets the
    // batch harness drive Myers through the same reuse code path as
    // GenASM.
    type Workspace = ();

    fn align_reusing(
        &self,
        _ws: &mut (),
        query: &Seq,
        target: &Seq,
    ) -> align_core::Result<Alignment> {
        self.align(query, target)
    }
}

impl GlobalAligner for MyersAligner {
    fn align(&self, query: &Seq, target: &Seq) -> align_core::Result<Alignment> {
        let m = query.len();
        let n = target.len();
        if m == 0 || n == 0 {
            let mut c = Cigar::new();
            c.push_run(m as u32, CigarOp::Ins);
            c.push_run(n as u32, CigarOp::Del);
            return Ok(Alignment::from_cigar(c));
        }
        let d = self.distance(query, target);
        // Re-run with the smallest certifying band and store the states.
        let k_tb = d.max(m.abs_diff(n)).max(1);
        let pb = PatternBlocks::new(query);
        let mut store = Store {
            columns: Vec::new(),
        };
        let d2 = compute(&pb, target, k_tb, Some(&mut store)).ok_or(AlignError::NoAlignment)?;
        debug_assert_eq!(d, d2, "store pass must reproduce the distance");

        // Standard NW walk over value() queries.
        let mut rev: Vec<CigarOp> = Vec::with_capacity(m.max(n));
        let (mut i, mut j) = (m, n);
        let mut cur = d2 as i64;
        while i > 0 && j > 0 {
            let eq = query.get_code(i - 1) == target.get_code(j - 1);
            let diag = value(&pb, &store, i - 1, j - 1);
            if diag + i64::from(!eq) == cur {
                rev.push(if eq {
                    CigarOp::Match
                } else {
                    CigarOp::Mismatch
                });
                i -= 1;
                j -= 1;
                cur = diag;
                continue;
            }
            let left = value(&pb, &store, i, j - 1);
            if left + 1 == cur {
                rev.push(CigarOp::Del);
                j -= 1;
                cur = left;
                continue;
            }
            let up = value(&pb, &store, i - 1, j);
            assert_eq!(
                up + 1,
                cur,
                "Myers traceback stuck at ({i},{j}): diag={diag} left={left} up={up} cur={cur}"
            );
            rev.push(CigarOp::Ins);
            i -= 1;
            cur = up;
        }
        rev.extend(std::iter::repeat_n(CigarOp::Ins, i));
        rev.extend(std::iter::repeat_n(CigarOp::Del, j));
        rev.reverse();
        let aln = Alignment::from_cigar(Cigar::from_ops(rev));
        debug_assert_eq!(aln.edit_distance, d2);
        Ok(aln)
    }

    fn name(&self) -> &'static str {
        "edlib"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use align_core::nw_distance;

    fn seq(s: &str) -> Seq {
        Seq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn single_block_distances() {
        let a = MyersAligner::new();
        assert_eq!(a.distance(&seq("ACGT"), &seq("ACGT")), 0);
        assert_eq!(a.distance(&seq("ACGT"), &seq("ACCT")), 1);
        assert_eq!(a.distance(&seq("ACGT"), &seq("AGT")), 1);
        assert_eq!(a.distance(&seq("AGT"), &seq("ACGT")), 1);
        assert_eq!(a.distance(&seq("AAAA"), &seq("TTTT")), 4);
    }

    #[test]
    fn empty_inputs() {
        let a = MyersAligner::new();
        assert_eq!(a.distance(&Seq::new(), &seq("ACG")), 3);
        assert_eq!(a.distance(&seq("ACG"), &Seq::new()), 3);
        assert_eq!(a.distance(&Seq::new(), &Seq::new()), 0);
        let aln = a.align(&seq("ACG"), &Seq::new()).unwrap();
        aln.check(&seq("ACG"), &Seq::new()).unwrap();
    }

    #[test]
    fn multi_block_exact() {
        let a = MyersAligner::new();
        let q = seq(&"ACGTTGCA".repeat(40)); // 320 chars, 5 blocks
        assert_eq!(a.distance(&q, &q), 0);
    }

    #[test]
    fn multi_block_against_oracle() {
        let a = MyersAligner::new();
        let q = seq(&"ACGTTGCAGGATCCAT".repeat(12)); // 192
        let mut t_bases = q.to_ascii();
        t_bases[10] = b'T';
        t_bases.remove(77);
        t_bases.insert(150, b'G');
        let t = seq(std::str::from_utf8(&t_bases).unwrap());
        assert_eq!(a.distance(&q, &t), nw_distance(&q, &t));
    }

    #[test]
    fn partial_last_block_boundary() {
        let a = MyersAligner::new();
        // Lengths straddling the 64-bit block boundary.
        for len in [63, 64, 65, 127, 128, 129] {
            let q: Seq = (0..len)
                .map(|i| align_core::Base::from_code((i % 4) as u8))
                .collect();
            let mut t = q.to_ascii();
            t[len / 2] = if t[len / 2] == b'A' { b'C' } else { b'A' };
            let t = seq(std::str::from_utf8(&t).unwrap());
            assert_eq!(a.distance(&q, &t), 1, "len {len}");
            let aln = a.align(&q, &t).unwrap();
            aln.check(&q, &t).unwrap();
            assert_eq!(aln.edit_distance, 1, "len {len}");
        }
    }

    #[test]
    fn very_different_lengths() {
        let a = MyersAligner::new();
        let q = seq("ACGT");
        let t = seq(&"ACGT".repeat(50));
        assert_eq!(a.distance(&q, &t), 196);
        let aln = a.align(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
        assert_eq!(aln.edit_distance, 196);
    }

    #[test]
    fn alignment_matches_oracle_cost() {
        let a = MyersAligner::new();
        let cases = [
            ("ACGTACGTAC", "ACGAACGTAC"),
            ("ACACACACAC", "CACACACACA"),
            ("AAAATTTTGGGGCCCC", "AAATTTTGGGCCCCAA"),
        ];
        for (q, t) in cases {
            let (q, t) = (seq(q), seq(t));
            let aln = a.align(&q, &t).unwrap();
            aln.check(&q, &t).unwrap();
            assert_eq!(aln.edit_distance, nw_distance(&q, &t), "{q:?} vs {t:?}");
        }
    }

    /// Oracle for the prefix (SHW) mode: min over prefixes of the
    /// target of the global distance.
    fn oracle_prefix(q: &Seq, t: &Seq) -> usize {
        (0..=t.len())
            .map(|j| nw_distance(q, &t.slice(0, j)))
            .min()
            .unwrap()
    }

    /// Oracle for the infix (HW) mode: min over substrings.
    fn oracle_infix(q: &Seq, t: &Seq) -> usize {
        let mut best = q.len();
        for i in 0..=t.len() {
            for j in i..=t.len() {
                best = best.min(nw_distance(q, &t.slice(i, j - i)));
            }
        }
        best
    }

    #[test]
    fn prefix_mode_matches_oracle() {
        let a = MyersAligner::new();
        let cases = [
            ("ACGT", "ACGTTTTT"),
            ("ACGT", "ACCTGGGG"),
            ("ACGTACGT", "ACGT"),
            ("AAAA", "TTTT"),
        ];
        for (q, t) in cases {
            let (q, t) = (seq(q), seq(t));
            let r = a.distance_mode(&q, &t, MyersMode::Prefix);
            assert_eq!(r.distance, oracle_prefix(&q, &t), "{q:?} vs {t:?}");
            // The reported end must achieve the distance.
            assert_eq!(nw_distance(&q, &t.slice(0, r.end)), r.distance);
        }
    }

    #[test]
    fn infix_mode_matches_oracle() {
        let a = MyersAligner::new();
        let cases = [
            ("ACGT", "TTTTACGTTTTT"),
            ("ACGT", "TTTTAGGTTTTT"),
            ("GATTACA", "CCGATTTACAGG"),
            ("AAAA", "TTTT"),
            ("ACGT", ""),
        ];
        for (q, t) in cases {
            let (q, t) = (seq(q), seq(t));
            let r = a.distance_mode(&q, &t, MyersMode::Infix);
            assert_eq!(r.distance, oracle_infix(&q, &t), "{q:?} in {t:?}");
        }
    }

    #[test]
    fn infix_of_exact_occurrence_is_zero() {
        let a = MyersAligner::new();
        let q = seq(&"ACGTTGCA".repeat(10)); // 80 chars: 2 blocks
        let mut t = seq("TTTT").to_ascii();
        t.extend(q.to_ascii());
        t.extend(b"GGGG");
        let t = seq(std::str::from_utf8(&t).unwrap());
        let r = a.distance_mode(&q, &t, MyersMode::Infix);
        assert_eq!(r.distance, 0);
        assert_eq!(r.end, 84); // occurrence ends after the 4-char pad + 80
    }

    #[test]
    fn global_mode_consistent_with_distance() {
        let a = MyersAligner::new();
        let q = seq("ACGTACGT");
        let t = seq("ACCTACGG");
        let r = a.distance_mode(&q, &t, MyersMode::Global);
        assert_eq!(r.distance, a.distance(&q, &t));
        assert_eq!(r.end, t.len());
    }

    #[test]
    fn empty_query_mode_distances() {
        let a = MyersAligner::new();
        let t = seq("ACGT");
        assert_eq!(
            a.distance_mode(&Seq::new(), &t, MyersMode::Infix).distance,
            0
        );
        assert_eq!(
            a.distance_mode(&Seq::new(), &t, MyersMode::Prefix).distance,
            0
        );
    }

    #[test]
    fn doubling_handles_high_distance() {
        let a = MyersAligner { initial_k: 1 };
        let q = seq(&"A".repeat(100));
        let t = seq(&"T".repeat(100));
        assert_eq!(a.distance(&q, &t), 100);
    }
}
