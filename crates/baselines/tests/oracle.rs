//! Property tests: both baselines against the quadratic NW oracle.

use align_core::{nw_distance, Base, GlobalAligner, Seq};
use baselines::{Ksw2Aligner, MyersAligner, Scoring};
use proptest::prelude::*;

fn arb_seq(max_len: usize) -> impl Strategy<Value = Seq> {
    prop::collection::vec(0u8..4, 0..=max_len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

fn arb_mutated_pair(max_len: usize, max_edits: usize) -> impl Strategy<Value = (Seq, Seq)> {
    (
        arb_seq(max_len),
        prop::collection::vec((any::<u8>(), any::<u16>(), 0u8..4), 0..=max_edits),
    )
        .prop_map(|(q, edits)| {
            let mut t: Vec<Base> = q.iter().collect();
            for (kind, pos, code) in edits {
                if t.is_empty() {
                    break;
                }
                let pos = pos as usize % t.len();
                match kind % 3 {
                    0 => t[pos] = Base::from_code(code),
                    1 => t.insert(pos, Base::from_code(code)),
                    _ => {
                        t.remove(pos);
                    }
                }
            }
            (q, t.into_iter().collect())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn myers_distance_equals_oracle(q in arb_seq(200), t in arb_seq(200)) {
        let a = MyersAligner::new();
        prop_assert_eq!(a.distance(&q, &t), nw_distance(&q, &t));
    }

    #[test]
    fn myers_distance_equals_oracle_small_initial_k(q in arb_seq(150), t in arb_seq(150)) {
        // Force the doubling path to run several times.
        let a = MyersAligner { initial_k: 1 };
        prop_assert_eq!(a.distance(&q, &t), nw_distance(&q, &t));
    }

    #[test]
    fn myers_alignment_valid_and_optimal((q, t) in arb_mutated_pair(220, 16)) {
        let a = MyersAligner::new();
        let aln = a.align(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
        prop_assert_eq!(aln.edit_distance, nw_distance(&q, &t));
    }

    #[test]
    fn myers_alignment_valid_on_unrelated(q in arb_seq(130), t in arb_seq(130)) {
        let a = MyersAligner::new();
        let aln = a.align(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
        prop_assert_eq!(aln.edit_distance, nw_distance(&q, &t));
    }

    #[test]
    fn ksw2_unit_scoring_matches_oracle((q, t) in arb_mutated_pair(120, 10)) {
        let a = Ksw2Aligner::exact(Scoring::unit());
        let (aln, score) = a.align_scored(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
        prop_assert_eq!((-score) as usize, nw_distance(&q, &t));
        // With unit scoring the produced CIGAR is itself optimal.
        prop_assert_eq!(aln.edit_distance, nw_distance(&q, &t));
    }

    #[test]
    fn ksw2_affine_alignment_always_valid(q in arb_seq(120), t in arb_seq(120)) {
        let a = Ksw2Aligner::exact(Scoring::map_pb());
        let aln = a.align(&q, &t).unwrap();
        aln.check(&q, &t).unwrap();
    }

    #[test]
    fn ksw2_banded_matches_exact_for_wide_band((q, t) in arb_mutated_pair(150, 8)) {
        let exact = Ksw2Aligner::exact(Scoring::map_pb());
        let banded = Ksw2Aligner { scoring: Scoring::map_pb(), band: 32 };
        let (_, s1) = exact.align_scored(&q, &t).unwrap();
        let (a2, s2) = banded.align_scored(&q, &t).unwrap();
        a2.check(&q, &t).unwrap();
        // 8 edits cannot push the optimal path more than 8+|len diff|
        // off the adjusted diagonal, so a band of 32 is sufficient.
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn ksw2_score_consistent_with_cigar((q, t) in arb_mutated_pair(100, 8)) {
        let sc = Scoring::map_pb();
        let a = Ksw2Aligner::exact(sc);
        let (aln, score) = a.align_scored(&q, &t).unwrap();
        // Recompute the score from the CIGAR runs.
        let mut expect = 0i32;
        let (m, x, ins, del) = aln.cigar.op_counts();
        expect += sc.match_score * m as i32;
        expect -= sc.mismatch * x as i32;
        let gap_runs = aln.cigar.runs().iter()
            .filter(|(_, op)| matches!(op, align_core::CigarOp::Ins | align_core::CigarOp::Del))
            .count() as i32;
        expect -= sc.gap_open * gap_runs + sc.gap_ext * (ins + del) as i32;
        prop_assert_eq!(score, expect);
    }
}
